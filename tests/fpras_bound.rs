//! Theorem 5.6 as an integration test: for unit-size jobs, RAND's realized
//! utility vector stays within the Hoeffding ε·‖ψ*‖ bound of the exact
//! fair schedule, and the error shrinks as the sample count grows.

use fairsched::coopgame::sampling::{hoeffding_epsilon, hoeffding_permutations};
use fairsched::core::scheduler::{RandScheduler, RefScheduler};
use fairsched::sim::simulate;
use fairsched::workloads::{generate, to_trace, MachineSplit, SynthConfig};

fn relative_error(k: usize, n_perms: usize, seed: u64, horizon: u64) -> f64 {
    let config = SynthConfig {
        n_users: k * 3,
        horizon,
        n_machines: k * 2,
        load: 1.0,
        ..SynthConfig::default()
    }
    .unit_jobs();
    let jobs = generate(&config, seed);
    let trace = to_trace(&jobs, k, k * 2, MachineSplit::Equal, seed).unwrap();
    let mut reference = RefScheduler::new(&trace);
    let fair = simulate(&trace, &mut reference, horizon).expect("valid run");
    let mut rand = RandScheduler::new(&trace, n_perms, seed ^ 0xf00d);
    let result = simulate(&trace, &mut rand, horizon).expect("valid run");
    let norm: i128 = fair.psi.iter().sum();
    if norm == 0 {
        return 0.0;
    }
    let delta: i128 = result.psi.iter().zip(&fair.psi).map(|(a, b)| (a - b).abs()).sum();
    delta as f64 / norm as f64
}

#[test]
fn rand_error_is_within_the_hoeffding_guarantee() {
    let k = 4;
    let lambda = 0.9;
    for n_perms in [5usize, 15, 75] {
        let eps = hoeffding_epsilon(k, n_perms, lambda);
        for seed in 0..6 {
            let err = relative_error(k, n_perms, seed, 600);
            assert!(
                err <= eps,
                "seed {seed}, N={n_perms}: error {err:.4} above guarantee {eps:.4}"
            );
        }
    }
}

#[test]
fn rand_error_shrinks_with_more_permutations() {
    let k = 4;
    let mean = |n_perms: usize| -> f64 {
        (0..8).map(|s| relative_error(k, n_perms, s, 500)).sum::<f64>() / 8.0
    };
    let coarse = mean(1);
    let fine = mean(75);
    eprintln!("mean relative error: N=1 → {coarse:.5}, N=75 → {fine:.5}");
    assert!(
        fine <= coarse + 1e-9,
        "error must not grow with sample count ({coarse:.5} → {fine:.5})"
    );
}

#[test]
fn hoeffding_sizes_match_the_theorem() {
    // N = ceil(k²/ε² ln(k/(1−λ))).
    let n = hoeffding_permutations(5, 0.5, 0.9);
    let expected = ((25.0 / 0.25) * (5.0f64 / 0.1).ln()).ceil() as usize;
    assert_eq!(n, expected);
    // And the paper's N=15/75 heuristic settings correspond to loose ε for
    // k=5 — document the actual guarantee they carry.
    let eps15 = hoeffding_epsilon(5, 15, 0.9);
    let eps75 = hoeffding_epsilon(5, 75, 0.9);
    assert!(eps75 < eps15);
}
