//! Durable-runner robustness: the kill-point sweep and the byte-identity
//! guarantees behind `fairsched experiment run --resume`.
//!
//! The central claim: for *every* registered fail point, a run crashed at
//! that point and then resumed emits final `report.{json,csv,txt}` files
//! byte-for-byte identical to an uninterrupted run. The sweep below
//! enumerates [`SITES`] (so a fail point added to the runner is swept
//! automatically), crashes at each, and diffs the artifacts. Alongside
//! it: journal-corruption recovery, cell-corruption recompute, typed
//! degradation of failing cells, zero-recompute on completed resumes,
//! decoupled seed-stride semantics, and equivalence with the session
//! API's `run_grid_reports`.

use fairsched::experiment::{
    aggregate, cell_keys, compute_cell, decode_cell, encode_cell, ExperimentSpec,
    FaultMode, FaultPlan, Runner, RunnerError, RunnerOptions, SeedPlan, StoredCell,
    SITES,
};
use fairsched::sim::report::Report;
use fairsched::sim::Simulation;
use std::path::{Path, PathBuf};

/// A small but non-trivial grid: two workloads × three schedulers × two
/// instances, with a reference-based metric (`delay` runs REF) and `psi`.
fn sweep_spec(name: &str) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        name,
        vec![
            "fpt:horizon=300,k=2".parse().unwrap(),
            "fpt:horizon=300,k=3".parse().unwrap(),
        ],
        vec![
            "fifo".parse().unwrap(),
            "roundrobin".parse().unwrap(),
            "fairshare".parse().unwrap(),
        ],
    );
    spec.metrics = vec!["delay".parse().unwrap(), "psi".parse().unwrap()];
    spec.horizon = Some(300);
    spec.seeds = SeedPlan { base: 3, count: 2, workload_stride: 1, scheduler_stride: 1 };
    spec
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fairsched-exp-resume-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn artifacts(dir: &Path) -> (String, String, String) {
    let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
    (read("report.json"), read("report.csv"), read("report.txt"))
}

fn run(
    spec: &ExperimentSpec,
    dir: &Path,
    resume: bool,
    faults: FaultPlan,
) -> Result<u64, RunnerError> {
    Runner::new(spec.clone(), dir, RunnerOptions { resume, faults })
        .run()
        .map(|s| s.computed)
}

#[test]
fn kill_point_sweep_every_site_resumes_byte_identical() {
    let spec = sweep_spec("kill-sweep");
    let clean_dir = fresh_dir("kill-sweep-clean");
    run(&spec, &clean_dir, false, FaultPlan::none()).unwrap();
    let clean = artifacts(&clean_dir);

    // Crash at hit 1 of every registered site, plus a mid-run crash at a
    // later hit for the per-cell sites (so both "nothing yet" and
    // "partial progress" states are swept).
    let mut arms: Vec<(&str, u64)> = SITES.iter().map(|s| (*s, 1)).collect();
    arms.extend([("cell.tmp", 7), ("cell.commit", 7), ("journal.append", 13)]);
    for (site, hit) in arms {
        let tag = format!("kill-{}-{hit}", site.replace('.', "-"));
        let dir = fresh_dir(&tag);
        let plan = FaultPlan::none().arm(site, hit, FaultMode::Crash);
        match run(&spec, &dir, false, plan) {
            Err(RunnerError::Crash { site: fired }) => {
                assert_eq!(fired, site, "wrong site fired for {tag}")
            }
            other => panic!("{tag}: expected a crash, got {other:?}"),
        }
        run(&spec, &dir, true, FaultPlan::none())
            .unwrap_or_else(|e| panic!("{tag}: resume failed: {e}"));
        assert_eq!(artifacts(&dir), clean, "{tag}: resumed artifacts differ from clean");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn completed_run_resumes_with_zero_recompute_and_survives_journal_loss() {
    let spec = sweep_spec("journal-loss");
    let dir = fresh_dir("journal-loss");
    run(&spec, &dir, false, FaultPlan::none()).unwrap();
    let clean = artifacts(&dir);

    // Re-running a completed experiment recomputes zero cells.
    assert_eq!(run(&spec, &dir, true, FaultPlan::none()).unwrap(), 0);

    // Truncate the journal mid-line (crash-mid-append signature): the
    // status view flags it, and resume still recomputes nothing because
    // cells — not the journal — are the source of truth.
    let journal = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::write(&journal, &text[..text.len() / 2 + 3]).unwrap();
    let status = Runner::status(&spec, &dir).unwrap();
    assert!(status.journal_truncated);
    assert_eq!(status.pending, 0);
    assert_eq!(run(&spec, &dir, true, FaultPlan::none()).unwrap(), 0);

    // Deleting it entirely loses nothing either.
    std::fs::remove_file(&journal).unwrap();
    assert_eq!(run(&spec, &dir, true, FaultPlan::none()).unwrap(), 0);
    assert_eq!(artifacts(&dir), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_mismatched_cells_are_recomputed_on_resume() {
    let spec = sweep_spec("cell-corrupt");
    let dir = fresh_dir("cell-corrupt");
    run(&spec, &dir, false, FaultPlan::none()).unwrap();
    let clean = artifacts(&dir);

    let keys = cell_keys(&spec);
    let path = |i: usize| dir.join("cells").join(keys[i].file_name());
    // Torn write, garbage JSON, and a valid cell file whose embedded key
    // answers a different computation.
    std::fs::write(path(0), "{\"schema\": \"fairsched-exper").unwrap();
    std::fs::write(path(1), "not json at all").unwrap();
    let mut moved_key = keys[2].clone();
    moved_key.scheduler_seed ^= 1;
    let outcome = compute_cell(&moved_key);
    std::fs::write(path(2), encode_cell(&moved_key, &outcome).to_json_pretty()).unwrap();

    let status = Runner::status(&spec, &dir).unwrap();
    assert_eq!(status.pending, 3, "{status:?}");
    assert_eq!(run(&spec, &dir, true, FaultPlan::none()).unwrap(), 3);
    assert_eq!(artifacts(&dir), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_cells_degrade_into_the_report_and_injected_io_faults_retry() {
    // An unknown scheduler fails its cells with a typed error; the sweep
    // still completes and the final report carries both outcomes.
    let mut spec = sweep_spec("degrade");
    spec.schedulers.push("no-such-policy".parse().unwrap());
    let dir = fresh_dir("degrade");
    let summary = Runner::new(
        spec.clone(),
        &dir,
        RunnerOptions {
            resume: false,
            // Transient io faults on cell writes must be absorbed by the
            // retry policy without changing any outcome.
            faults: FaultPlan::none().arm("cell.tmp", 2, FaultMode::Io).arm(
                "journal.append",
                3,
                FaultMode::Io,
            ),
        },
    )
    .run()
    .unwrap();
    assert_eq!(summary.total, 16); // 2 instances × 2 workloads × 4 schedulers
    assert_eq!(summary.failed, 4);
    assert_eq!(summary.retried, 2);
    let (json, csv, _) = artifacts(&dir);
    assert!(json.contains("\"failed\": 4"), "counts missing from report.json");
    assert!(json.contains("no-such-policy"));
    assert!(csv.contains("status=failed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coupled_seed_runner_matches_run_grid_reports_byte_for_byte() {
    // The durable runner's aggregation over its committed cells must be
    // byte-identical to aggregating the same grid computed directly by
    // the session API — i.e. durability adds nothing to the numbers.
    let spec = sweep_spec("grid-equiv");
    let dir = fresh_dir("grid-equiv");
    run(&spec, &dir, false, FaultPlan::none()).unwrap();

    let keys = cell_keys(&spec);
    let mut direct: Vec<(_, StoredCell)> = Vec::new();
    for instance in 0..spec.seeds.count {
        let session = Simulation::session()
            .metric_specs(spec.metrics.clone())
            .horizon(spec.horizon.unwrap())
            .validate(spec.validate)
            .seed(spec.seeds.workload_seed(instance));
        let cells = session.run_grid_reports(&spec.workloads, &spec.schedulers);
        for cell in cells {
            let key = keys
                .iter()
                .find(|k| {
                    k.instance == instance
                        && k.workload == cell.workload
                        && k.scheduler == cell.scheduler
                })
                .unwrap()
                .clone();
            let stored = decode_cell(&encode_cell(&key, &cell.report)).unwrap();
            direct.push((key, stored));
        }
    }
    // Reorder to the runner's instance-major grid order.
    direct.sort_by_key(|(key, _)| {
        keys.iter().position(|k| k.canonical() == key.canonical()).unwrap()
    });
    let expected = aggregate(&spec, &direct);
    let (json, csv, table) = artifacts(&dir);
    assert_eq!(json, expected.json);
    assert_eq!(csv, expected.csv);
    assert_eq!(table, expected.table);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decoupled_seed_strides_pin_each_axis_independently() {
    // With workload_stride=0 both instances build the *same* trace while
    // the scheduler seed moves; a seed-sensitive scheduler (rand) must
    // then produce different reports on identical workloads, and a
    // seed-insensitive one (fifo) identical ones.
    // k=3 gives 3! = 6 permutations, and `perms=1` samples exactly one —
    // so the rand scheduler's outcome is visibly seed-dependent.
    let mut spec = ExperimentSpec::new(
        "stride",
        vec!["fpt:horizon=300,k=3".parse().unwrap()],
        vec!["fifo".parse().unwrap(), "rand:perms=1".parse().unwrap()],
    );
    spec.metrics = vec!["psi".parse().unwrap()];
    spec.horizon = Some(300);
    spec.seeds = SeedPlan { base: 3, count: 2, workload_stride: 0, scheduler_stride: 17 };
    assert!(spec.seeds.decoupled());

    let keys = cell_keys(&spec);
    // Compare the CSV sink: pure metric values, no seed provenance (the
    // scheduler seeds differ by construction).
    let report = |k| {
        let r: Report = compute_cell(k).unwrap();
        r.to_csv()
    };
    let by = |scheduler: &str, instance: u64| {
        keys.iter()
            .find(|k| k.scheduler.to_string() == scheduler && k.instance == instance)
            .unwrap()
    };
    assert_eq!(report(by("fifo", 0)), report(by("fifo", 1)));
    assert_ne!(report(by("rand:perms=1", 0)), report(by("rand:perms=1", 1)));

    // And the full spec (strides included) survives the JSON round trip.
    let reparsed = ExperimentSpec::from_json_str(&spec.to_json()).unwrap();
    assert_eq!(reparsed, spec);
}

#[test]
fn committed_fixture_loads_runs_and_round_trips() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/tiny_grid.experiment.json"
    ))
    .unwrap();
    let spec = ExperimentSpec::from_json_str(&text).unwrap();
    assert_eq!(spec.name, "tiny-grid");
    assert_eq!(spec.n_cells(), 12);
    let reparsed = ExperimentSpec::from_json_str(&spec.to_json()).unwrap();
    assert_eq!(reparsed, spec);

    // Report JSON round-trips exactly through the cell codec for a
    // fixture cell with a series metric in the mix (the decode path the
    // resume machinery depends on).
    let mut key = cell_keys(&spec)[0].clone();
    key.metrics.push("timeline:samples=8".parse().unwrap());
    let outcome = compute_cell(&key);
    assert!(outcome.is_ok(), "{outcome:?}");
    let encoded = encode_cell(&key, &outcome);
    let stored = decode_cell(&encoded).unwrap();
    let report = stored.report.unwrap();
    assert_eq!(report.to_json(), outcome.unwrap().to_json());
    assert!(!report.series.is_empty());
}
