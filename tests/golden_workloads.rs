//! Golden fixtures for the synthetic workload generator.
//!
//! The experiment inputs must be **bit-for-bit deterministic**: for a
//! fixed workload spec and seed, the generated trace (every organization's
//! machine count and every job's `(org, release, proc)` tuple) is fully
//! determined. The fixtures under `tests/golden/workloads/` pin one tiny
//! trace per Section 7.2 preset (plus the fpt lattice-bench family), built
//! through the workload registry — so a refactor of the synth generator,
//! the preset tables, or the user→organization assignment cannot silently
//! shift every experiment's inputs.
//!
//! Regenerate with `REGEN_GOLDEN=1 cargo test --test golden_workloads` —
//! but only when a *deliberate* generator change is being made, in which
//! case the diff documents it (and invalidates comparisons against
//! previously published numbers).

use fairsched::core::Trace;
use fairsched::workloads::spec::{WorkloadContext, WorkloadRegistry, WorkloadSpec};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Canonical, diff-friendly rendering: the spec + seed provenance, each
/// organization's machine count, and one line per job.
fn render(spec: &WorkloadSpec, seed: u64, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "spec={spec}");
    let _ = writeln!(out, "seed={seed}");
    for org in trace.orgs() {
        let _ = writeln!(out, "org={} machines={}", org.name, org.n_machines);
    }
    for job in trace.jobs() {
        let _ = writeln!(
            out,
            "job={} org={} release={} proc={}",
            job.id.index(),
            job.org.index(),
            job.release,
            job.proc_time
        );
    }
    out
}

struct Case {
    name: &'static str,
    spec: &'static str,
    seed: u64,
}

/// One tiny case per preset (same shapes the conformance suite builds,
/// small enough to diff by eye) plus the fpt bench family.
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "lpc_egee_tiny",
            spec: "synth:horizon=1500,orgs=3,preset=lpc,scale=0.08",
            seed: 42,
        },
        Case {
            name: "pik_iplex_tiny",
            spec: "synth:horizon=1200,orgs=2,preset=pik,scale=0.01,split=equal",
            seed: 42,
        },
        Case {
            name: "ricc_tiny",
            spec: "synth:horizon=1000,orgs=3,preset=ricc,scale=0.004,split=uniform",
            seed: 42,
        },
        Case {
            name: "sharcnet_whale_tiny",
            spec: "synth:horizon=1200,orgs=4,preset=sharcnet,scale=0.008,split=zipf,zipf=1.5",
            seed: 42,
        },
        Case { name: "fpt_k3", spec: "fpt:horizon=800,k=3,maxdur=120", seed: 5 },
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/workloads")
        .join(format!("{name}.txt"))
}

#[test]
fn preset_workloads_match_golden_fixtures() {
    let regen = std::env::var_os("REGEN_GOLDEN").is_some();
    let registry = WorkloadRegistry::shared();
    let mut mismatches = Vec::new();
    for case in cases() {
        let spec: WorkloadSpec = case.spec.parse().expect("golden specs parse");
        let ctx = WorkloadContext { seed: case.seed };
        let trace = registry.build(&spec, &ctx).expect("golden specs build");
        // Bit-identical across two runs in this process, by construction —
        // the fixture additionally pins the bits across *code changes*.
        assert_eq!(
            trace,
            registry.build(&spec, &ctx).unwrap(),
            "{} not deterministic within one process",
            case.name
        );
        let rendered = render(&spec, case.seed, &trace);
        let path = golden_path(case.name);
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        if rendered != expected {
            mismatches.push(case.name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "generated workloads diverged from the golden fixtures for: {mismatches:?} \
         (REGEN_GOLDEN=1 only for deliberate generator changes)"
    );
}
