//! The cross-crate metric conformance suite.
//!
//! Every factory registered in a [`MetricRegistry`] — built-in or
//! downstream — must uphold the same contract, checked here for each of
//! the representative specs it declares via
//! [`MetricFactory::conformance_specs`]:
//!
//! 1. **coverage** — the factory declares at least one conformance spec
//!    (one assert over registry iteration, so registering a metric
//!    without conformance coverage fails CI);
//! 2. **round-trip** — `parse(display(spec)) == spec`, and `display` is
//!    canonical (re-rendering the reparsed spec is a fixpoint);
//! 3. **determinism** — the same spec over the same context evaluates to
//!    the identical column, bit for bit, across repeated evaluations;
//! 4. **shape** — one value per organization, aggregate present;
//! 5. **reference coherence** — a factory claiming
//!    [`MetricFactory::needs_reference`] fails typedly without a
//!    reference and succeeds with one; a factory not claiming it must
//!    evaluate without one;
//! 6. **horizon invariance where claimed** — factories claiming
//!    [`MetricFactory::horizon_invariant`] must evaluate to the same
//!    values at any horizon past the schedule's completion.
//!
//! Downstream crates get the same guarantees for free: the suite is a
//! plain function over any registry, demonstrated below on a registry
//! extended with a custom fairness index.

use fairsched::core::utility::sp_vector;
use fairsched::core::Trace;
use fairsched::sim::report::{
    MetricColumn, MetricContext, MetricError, MetricFactory, MetricOutput,
    MetricRegistry, MetricSpec, MetricValue, ReferenceData,
};
use fairsched::sim::{SimResult, Simulation};
use fairsched::workloads::spec::{WorkloadContext, WorkloadRegistry};

/// The fixed scenario every factory is probed on: a small registry-built
/// workload, one practical scheduler, and the exact REF reference, run to
/// completion (so horizon-invariance claims are checkable past it).
struct Scenario {
    trace: Trace,
    eval: SimResult,
    reference: SimResult,
}

fn scenario() -> Scenario {
    let trace = WorkloadRegistry::shared()
        .build_str("fpt:horizon=600,k=2", &WorkloadContext { seed: 11 })
        .unwrap();
    let run = |spec: &str| {
        Simulation::new(&trace).scheduler(spec).unwrap().seed(11).run().unwrap()
    };
    let eval = run("fairshare");
    let reference = run("ref");
    Scenario { trace, eval, reference }
}

/// A context over the scenario's schedules at an explicit horizon (the
/// ψ vectors are recomputed for that horizon, exactly as a run evaluated
/// there would see them).
fn context_at<'a>(
    s: &'a Scenario,
    horizon: u64,
    psi: &'a [i128],
    psi_ref: &'a [i128],
) -> MetricContext<'a> {
    MetricContext {
        trace: &s.trace,
        schedule: &s.eval.schedule,
        psi,
        horizon,
        reference: Some(ReferenceData { schedule: &s.reference.schedule, psi: psi_ref }),
    }
}

/// Canonical, bit-faithful rendering of an output for equality checks
/// (scalar columns and time-series columns alike).
fn render_output(o: &MetricOutput) -> String {
    match o {
        MetricOutput::Column(c) => {
            let mut out = format!("{}|", c.spec);
            for v in &c.per_org {
                out.push_str(&v.render());
                out.push(';');
            }
            out.push_str(&c.aggregate.render());
            out
        }
        MetricOutput::Series(s) => {
            let mut out = format!("{}|t:", s.spec);
            for t in &s.times {
                out.push_str(&t.to_string());
                out.push(';');
            }
            for vs in &s.per_org {
                out.push('|');
                for v in vs {
                    out.push_str(&v.render());
                    out.push(';');
                }
            }
            out.push('|');
            for v in &s.aggregate {
                out.push_str(&v.render());
                out.push(';');
            }
            out
        }
    }
}

/// Runs the full conformance contract over every factory in `registry`,
/// returning human-readable violations (empty = conformant).
fn conformance_violations(registry: &MetricRegistry) -> Vec<String> {
    let s = scenario();
    let h1 = s.eval.horizon;
    let h2 = h1 * 2 + 17;
    let psi_h1 = sp_vector(&s.trace, &s.eval.schedule, h1);
    let psi_h2 = sp_vector(&s.trace, &s.eval.schedule, h2);
    let ref_h1 = sp_vector(&s.trace, &s.reference.schedule, h1);
    let ref_h2 = sp_vector(&s.trace, &s.reference.schedule, h2);

    let mut violations = Vec::new();
    let mut fail = |name: &str, spec: &str, what: String| {
        violations.push(format!("[{name}] {spec}: {what}"));
    };

    for (name, specs) in registry.conformance_specs() {
        // 1. Coverage: registry iteration makes this a one-assert check.
        if specs.is_empty() {
            fail(&name, "<none>", "factory declares no conformance specs".into());
            continue;
        }
        let factory = registry.get(&name).expect("iterated name is registered");

        for spec in &specs {
            let label = spec.to_string();

            if spec.name() != name {
                fail(
                    &name,
                    &label,
                    "conformance spec selects a different factory".into(),
                );
                continue;
            }

            // 2. Round-trip: parse ∘ display is the identity, display is
            //    canonical (a fixpoint under reparsing).
            match label.parse::<MetricSpec>() {
                Err(e) => {
                    fail(&name, &label, format!("display does not reparse: {e}"));
                    continue;
                }
                Ok(reparsed) => {
                    if &reparsed != spec {
                        fail(&name, &label, "parse(display(spec)) != spec".into());
                    }
                    if reparsed.to_string() != label {
                        fail(&name, &label, "display is not canonical".into());
                    }
                }
            }

            // 5a. Reference coherence: reference-based factories must
            //     fail typedly when the context has no reference.
            let bare = MetricContext {
                trace: &s.trace,
                schedule: &s.eval.schedule,
                psi: &psi_h1,
                horizon: h1,
                reference: None,
            };
            match (factory.needs_reference(), registry.evaluate(spec, &bare)) {
                (true, Err(MetricError::NeedsReference { .. })) => {}
                (true, other) => fail(
                    &name,
                    &label,
                    format!(
                        "claims needs_reference but evaluating without one gave {other:?}"
                    ),
                ),
                (false, Err(e)) => {
                    fail(&name, &label, format!("failed without a reference: {e}"))
                }
                (false, Ok(_)) => {}
            }

            // 3 + 4. Determinism and shape, over the full context.
            let ctx = context_at(&s, h1, &psi_h1, &ref_h1);
            let a = match registry.evaluate(spec, &ctx) {
                Ok(c) => c,
                Err(e) => {
                    fail(&name, &label, format!("evaluation failed: {e}"));
                    continue;
                }
            };
            match registry.evaluate(spec, &ctx) {
                Ok(b) if render_output(&a) == render_output(&b) => {}
                Ok(_) => fail(
                    &name,
                    &label,
                    "two evaluations differ (non-deterministic)".into(),
                ),
                Err(e) => fail(&name, &label, format!("re-evaluation failed: {e}")),
            }
            match &a {
                MetricOutput::Column(c) => {
                    if c.per_org.len() != s.trace.n_orgs() {
                        fail(
                            &name,
                            &label,
                            format!(
                                "column has {} values for {} organizations",
                                c.per_org.len(),
                                s.trace.n_orgs()
                            ),
                        );
                    }
                }
                MetricOutput::Series(sr) => {
                    if sr.per_org.len() != s.trace.n_orgs() {
                        fail(
                            &name,
                            &label,
                            format!(
                                "series has {} organization rows for {} organizations",
                                sr.per_org.len(),
                                s.trace.n_orgs()
                            ),
                        );
                    }
                    if sr.per_org.iter().any(|vs| vs.len() != sr.times.len())
                        || sr.aggregate.len() != sr.times.len()
                    {
                        fail(&name, &label, "series rows disagree with the grid".into());
                    }
                    if !sr.times.windows(2).all(|w| w[0] < w[1])
                        || sr.times.iter().any(|&t| t == 0 || t > h1)
                    {
                        fail(
                            &name,
                            &label,
                            "series grid is not strictly increasing within (0, horizon]"
                                .into(),
                        );
                    }
                }
            }
            if a.spec() != spec {
                fail(&name, &label, "output spec differs from the request".into());
            }

            // 6. Horizon invariance where claimed: the schedule is fully
            //    complete at h1, so any later horizon must agree.
            if factory.horizon_invariant() {
                let ctx2 = context_at(&s, h2, &psi_h2, &ref_h2);
                match registry.evaluate(spec, &ctx2) {
                    Ok(b) => {
                        if render_output(&a) != render_output(&b) {
                            fail(
                                &name,
                                &label,
                                format!(
                                    "claims horizon invariance but values differ at h={h1} vs h={h2}"
                                ),
                            );
                        }
                    }
                    Err(e) => fail(
                        &name,
                        &label,
                        format!("evaluation at horizon {h2} failed: {e}"),
                    ),
                }
            }
        }
    }
    violations
}

#[test]
fn every_registered_factory_conforms() {
    let violations = conformance_violations(MetricRegistry::shared());
    assert!(
        violations.is_empty(),
        "metric conformance violations:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn every_registered_factory_has_conformance_coverage() {
    // The one-assert CI gate: registering a metric family without
    // conformance specs fails the build.
    let registry = MetricRegistry::shared();
    let covered: Vec<(String, usize)> = registry
        .conformance_specs()
        .into_iter()
        .map(|(name, specs)| (name, specs.len()))
        .collect();
    assert!(
        covered.iter().all(|(_, n)| *n > 0) && covered.len() >= 10,
        "factories without conformance specs: {covered:?}"
    );
}

#[test]
fn conformance_specs_cover_every_builtin_family() {
    let names: Vec<String> =
        MetricRegistry::shared().names().map(str::to_string).collect();
    assert_eq!(
        names,
        [
            "completed",
            "delay",
            "flow",
            "machines",
            "psi",
            "ranking",
            "stretch",
            "timeline",
            "units",
            "utility",
            "utilization",
            "waiting",
        ]
    );
}

/// A downstream fairness index registered into an extended registry
/// inherits the whole contract from the same harness function — no extra
/// test code — and a factory registered *without* coverage is caught by
/// the coverage gate.
#[test]
fn downstream_factories_get_conformance_for_free() {
    /// Largest-minus-smallest ψ (a max-min fairness gap index).
    struct PsiGap;
    impl MetricFactory for PsiGap {
        fn name(&self) -> &str {
            "psigap"
        }
        fn summary(&self) -> &str {
            "test-only max-min psi gap"
        }
        fn conformance_specs(&self) -> Vec<MetricSpec> {
            vec![MetricSpec::bare("psigap")]
        }
        fn evaluate(
            &self,
            spec: &MetricSpec,
            ctx: &MetricContext<'_>,
        ) -> Result<MetricOutput, MetricError> {
            spec.deny_unknown_params(&[])?;
            let max = ctx.psi.iter().max().copied().unwrap_or(0);
            Ok(MetricColumn {
                spec: spec.clone(),
                per_org: ctx.psi.iter().map(|p| MetricValue::Int(max - p)).collect(),
                aggregate: MetricValue::Int(
                    max - ctx.psi.iter().min().copied().unwrap_or(0),
                ),
            }
            .into())
        }
    }

    let mut registry = MetricRegistry::default();
    registry.register(Box::new(PsiGap));
    let violations = conformance_violations(&registry);
    assert!(
        violations.is_empty(),
        "downstream factory failed inherited conformance:\n  {}",
        violations.join("\n  ")
    );

    struct NoCoverage;
    impl MetricFactory for NoCoverage {
        fn name(&self) -> &str {
            "nocoverage"
        }
        fn summary(&self) -> &str {
            "registers without conformance specs"
        }
        fn conformance_specs(&self) -> Vec<MetricSpec> {
            Vec::new()
        }
        fn evaluate(
            &self,
            spec: &MetricSpec,
            ctx: &MetricContext<'_>,
        ) -> Result<MetricOutput, MetricError> {
            Ok(MetricColumn {
                spec: spec.clone(),
                per_org: vec![MetricValue::Int(0); ctx.trace.n_orgs()],
                aggregate: MetricValue::Int(0),
            }
            .into())
        }
    }
    registry.register(Box::new(NoCoverage));
    let violations = conformance_violations(&registry);
    assert!(
        violations.iter().any(|v| v.contains("no conformance specs")),
        "missing coverage must be reported, got: {violations:?}"
    );
}

/// Spec strings are the experiment-matrix data format; the error surface
/// must stay typed end to end (no panics) for matrix tooling to collect.
#[test]
fn registry_errors_are_typed_not_panics() {
    let registry = MetricRegistry::shared();
    let s = scenario();
    let ctx = MetricContext::from_result(&s.trace, &s.eval);
    assert!(matches!("".parse::<MetricSpec>(), Err(MetricError::Empty)));
    assert!(matches!("delay:".parse::<MetricSpec>(), Err(MetricError::BadSyntax { .. })));
    assert!(matches!(
        registry.evaluate(&"atlantis".parse().unwrap(), &ctx),
        Err(MetricError::UnknownMetric { .. })
    ));
    assert!(matches!(
        // lint:allow(spec-literal) deliberately rejected parameter.
        registry.evaluate(&"psi:warp=9".parse().unwrap(), &ctx),
        Err(MetricError::UnknownParam { .. })
    ));
    assert!(matches!(
        registry.evaluate(&"utility:kind=vibes".parse().unwrap(), &ctx),
        Err(MetricError::BadParam { .. })
    ));
    assert!(matches!(
        registry.evaluate(&"delay".parse().unwrap(), &ctx),
        Err(MetricError::NeedsReference { .. })
    ));
}
