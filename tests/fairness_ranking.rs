//! The paper's headline experimental claim (Section 7.3), as a statistical
//! integration test: Shapley-aware schedulers are fairer than distributive
//! fair share, which is fairer than round robin.

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, RandScheduler,
    RefScheduler, RoundRobinScheduler, Scheduler,
};
use fairsched::sim::simulate;
use fairsched::workloads::{generate, preset, to_trace, MachineSplit, PresetName};

fn mean_unfairness(
    build: impl Fn(&fairsched::core::Trace, u64) -> Box<dyn Scheduler>,
) -> f64 {
    // The paper's Table 1 configuration: full LPC-EGEE scale, 5 orgs,
    // horizon 5·10⁴ (DirectContr vs FairShare ordering is sensitive to
    // this regime; see Section 7.3).
    let horizon = 50_000;
    let n = 12;
    let mut total = 0.0;
    for seed in 0..n {
        let p = preset(PresetName::LpcEgee, 1.0, horizon);
        let jobs = generate(&p.synth, seed);
        let trace = to_trace(&jobs, 5, p.synth.n_machines, MachineSplit::Zipf(1.0), seed)
            .unwrap();
        let mut reference = RefScheduler::new(&trace);
        let fair = simulate(&trace, &mut reference, horizon).expect("valid run");
        let mut s = build(&trace, seed);
        let r = simulate(&trace, s.as_mut(), horizon).expect("valid run");
        let report =
            FairnessReport::from_schedules(&trace, &r.schedule, &fair.schedule, horizon);
        total += report.unfairness();
    }
    total / n as f64
}

#[test]
fn shapley_heuristics_beat_fair_share_beats_round_robin() {
    let round_robin = mean_unfairness(|_, _| Box::new(RoundRobinScheduler::new()));
    let curr_fs = mean_unfairness(|_, _| Box::new(CurrFairShareScheduler::new()));
    let fair_share = mean_unfairness(|_, _| Box::new(FairShareScheduler::new()));
    let direct = mean_unfairness(|_, s| Box::new(DirectContrScheduler::new(s)));
    let rand15 = mean_unfairness(|t, s| Box::new(RandScheduler::new(t, 15, s)));

    eprintln!(
        "mean Δψ/p_tot — RR: {round_robin:.3}, CurrFS: {curr_fs:.3}, FS: {fair_share:.3}, \
         DirectContr: {direct:.3}, Rand15: {rand15:.3}"
    );

    // The paper's ordering, with slack for sampling noise: round robin is
    // materially worse than fair share; the Shapley-based schedulers are
    // no worse than fair share (and usually better).
    assert!(
        round_robin > fair_share * 1.5,
        "round robin ({round_robin:.3}) should be clearly less fair than fair share ({fair_share:.3})"
    );
    assert!(
        direct <= fair_share * 1.5 + 0.05,
        "DirectContr ({direct:.3}) should not be materially less fair than FairShare ({fair_share:.3})"
    );
    assert!(
        rand15 <= fair_share * 1.5 + 0.05,
        "Rand ({rand15:.3}) should not be materially less fair than FairShare ({fair_share:.3})"
    );
    assert!(
        round_robin > direct,
        "round robin must be less fair than the Shapley heuristic"
    );
}

#[test]
fn unfairness_grows_with_horizon() {
    // The Table 1 → Table 2 effect: longer traces accumulate more
    // unfairness for non-exact schedulers.
    let run = |horizon: u64| -> f64 {
        let mut total = 0.0;
        let n = 8;
        for seed in 100..100 + n {
            let p = preset(PresetName::LpcEgee, 0.25, horizon);
            let jobs = generate(&p.synth, seed);
            let trace =
                to_trace(&jobs, 4, p.synth.n_machines, MachineSplit::Zipf(1.0), seed)
                    .unwrap();
            let mut reference = RefScheduler::new(&trace);
            let fair = simulate(&trace, &mut reference, horizon).expect("valid run");
            let mut s = RoundRobinScheduler::new();
            let r = simulate(&trace, &mut s, horizon).expect("valid run");
            total += FairnessReport::from_schedules(
                &trace,
                &r.schedule,
                &fair.schedule,
                horizon,
            )
            .unfairness();
        }
        total / n as f64
    };
    let short = run(2_000);
    let long = run(16_000);
    eprintln!("round-robin unfairness: horizon 2k → {short:.3}, 16k → {long:.3}");
    assert!(
        long > short,
        "unfairness should accumulate with horizon ({short:.3} vs {long:.3})"
    );
}
