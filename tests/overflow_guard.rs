//! Regression guards for the `Time`-overflow bug class.
//!
//! PR 5 fixed a sample grid that computed `horizon·i` in `u64`: correct
//! in dev builds only by panicking, and *silently wrong* in release-style
//! builds (overflow-checks off), where the product wraps. These tests pin
//! (a) that the workspace now computes those shapes through widening
//! helpers, and (b) that the dev/test profile traps overflow
//! (`overflow-checks = true` in the workspace `Cargo.toml`), so a
//! reintroduced raw multiply fails loudly instead of wrapping.

use fairsched::core::checked_time;
use fairsched::core::fairness::timeline_sample_times;
use fairsched::core::Time;

/// The pre-PR-5 grid shape: `(horizon * i) / samples` in `u64`. With a
/// horizon in the upper half of the `Time` range the product wraps for
/// every `i ≥ 2` — this is exactly the multiply that used to ship.
fn pre_pr5_grid_point_wrapping(horizon: Time, i: u64, samples: u64) -> Time {
    horizon.wrapping_mul(i) / samples
}

#[test]
fn pre_pr5_style_multiply_would_have_wrapped_silently() {
    let horizon = Time::MAX / 2 + 1;
    let samples = 4u64;
    // The raw u64 product overflows for i >= 2 …
    assert_eq!(horizon.checked_mul(2), None);
    // … and in a release-style build (no overflow checks) it wraps to a
    // grid point *before* the previous one: a silently corrupted,
    // non-monotone sample grid.
    let wrapped = pre_pr5_grid_point_wrapping(horizon, 2, samples);
    let correct = checked_time::scale_floor(horizon, 2, samples);
    assert!(wrapped < correct, "wrapped {wrapped} vs correct {correct}");
    assert_eq!(wrapped, 0); // 2·(MAX/2+1) wraps to exactly 0.
    assert_eq!(correct, horizon / 2);
}

#[test]
fn dev_profile_traps_the_wrap_instead_of_wrapping() {
    // With `overflow-checks = true` (workspace dev/test profile) the raw
    // multiply panics, so a reintroduction of the pre-PR-5 arithmetic
    // cannot silently pass the test suite. `catch_unwind` keeps this
    // observable as a plain assertion.
    let horizon = Time::MAX / 2 + 1;
    let result = std::panic::catch_unwind(|| std::hint::black_box(horizon) * 2);
    assert!(
        result.is_err(),
        "dev/test builds must trap u64 overflow (overflow-checks = true)"
    );
}

#[test]
fn widened_sample_grid_is_exact_at_huge_horizons() {
    let horizon = Time::MAX - 7;
    let times = timeline_sample_times(horizon, 8);
    // Strictly increasing, within (0, horizon], ending exactly at the
    // horizon — the invariants a wrapped grid violated.
    assert!(times.windows(2).all(|w| w[0] < w[1]));
    assert!(times.iter().all(|&t| t > 0 && t <= horizon));
    assert_eq!(*times.last().unwrap(), horizon);
    // Each point is the exact widened quotient.
    for (idx, &t) in times.iter().enumerate() {
        let i = (idx + 1) as u64;
        assert_eq!(t, ((horizon as u128 * i as u128) / 8) as Time);
    }
}

#[test]
fn scale_floor_agrees_with_narrow_math_when_in_range() {
    // The helper is a drop-in for the raw expression wherever that was
    // correct: same values on the whole in-range grid.
    for horizon in [1u64, 10, 1_000, 123_456] {
        for samples in [1u64, 2, 7, 64] {
            for i in 1..=samples {
                assert_eq!(
                    checked_time::scale_floor(horizon, i, samples),
                    horizon * i / samples
                );
            }
        }
    }
}
