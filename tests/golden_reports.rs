//! Golden snapshots of the CLI's `--json` report.
//!
//! The JSON report is the machine-readable contract of the `fairsched`
//! binary: downstream tooling parses it, so its *schema* (field names,
//! nesting, canonical `metric_specs`) and its *values* (deterministic
//! given workload spec + seed) are pinned here byte for byte. The
//! fixtures live under `tests/golden/reports/`.
//!
//! Regenerate with `REGEN_GOLDEN=1 cargo test --test golden_reports` —
//! but only when a *deliberate* schema or pipeline change is being made,
//! in which case the diff documents it.

use std::path::PathBuf;
use std::process::Command;

struct Case {
    name: &'static str,
    args: &'static [&'static str],
}

fn cases() -> Vec<Case> {
    vec![
        // The spec-addressed run from the issue: explicit metrics,
        // delay runs the exact REF reference automatically.
        Case {
            name: "fpt_k3_delay_psi",
            args: &["--json", "--workload", "fpt:k=3", "--metrics", "delay,psi"],
        },
        // Default metric set (machines/completed/flow/waiting/psi), a
        // parameterized metric spec surviving the comma list, and a
        // non-default horizon/seed.
        Case {
            name: "fpt_k3_default_metrics",
            args: &[
                "--json",
                "--workload",
                "fpt:k=3",
                "--horizon",
                "2000",
                "--seed",
                "7",
            ],
        },
        Case {
            name: "fpt_k2_norm_ideal_ranking",
            args: &[
                "--json",
                "--workload",
                "fpt:horizon=500,k=2",
                "--horizon",
                "500",
                "--seed",
                "3",
                "--scheduler",
                "fairshare",
                "--metrics",
                // lint:allow(spec-literal) comma-joined metric *list*, split by parse_list
                "delay:norm=ideal,ranking,utilization",
            ],
        },
        // The time-series axis: a timeline spec next to a scalar one pins
        // the `series` schema (spec/times/orgs/values/aggregate) and its
        // coexistence with the scalar columns.
        Case {
            name: "fpt_k2_timeline",
            args: &[
                "--json",
                "--workload",
                "fpt:horizon=500,k=2",
                "--horizon",
                "500",
                "--seed",
                "3",
                "--scheduler",
                "fifo",
                "--metrics",
                "delay,timeline:samples=8",
            ],
        },
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/reports")
        .join(format!("{name}.json"))
}

fn run_cli(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_fairsched"))
        .args(args)
        .output()
        .expect("fairsched binary runs");
    assert!(
        output.status.success(),
        "fairsched {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("report is UTF-8")
}

#[test]
fn cli_json_reports_match_golden_fixtures() {
    let regen = std::env::var_os("REGEN_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for case in cases() {
        let rendered = run_cli(case.args);
        // The report must be parseable JSON carrying the canonical specs.
        let value = serde_json::parse_value(&rendered)
            .unwrap_or_else(|e| panic!("{}: output is not JSON: {e}", case.name));
        assert!(
            value.get("metric_specs").is_some(),
            "{}: report lost its metric_specs provenance",
            case.name
        );
        let path = golden_path(case.name);
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        if rendered != expected {
            mismatches.push(case.name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "CLI reports diverged from the golden fixtures for: {mismatches:?} \
         (REGEN_GOLDEN=1 only for deliberate schema/pipeline changes)"
    );
}

/// Reference-based metrics with `--no-reference` fail with the typed
/// error, not a panic or a silent omission.
#[test]
fn no_reference_with_delay_metric_is_a_typed_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_fairsched"))
        .args(["--json", "--workload", "fpt:k=2", "--metrics", "delay", "--no-reference"])
        .output()
        .expect("fairsched binary runs");
    assert!(!output.status.success(), "--no-reference with delay must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("needs the REF reference"),
        "unexpected error output: {stderr}"
    );
}

/// The timeline family compares against REF too: `--no-reference` +
/// `timeline` is the same typed NeedsReference error.
#[test]
fn no_reference_with_timeline_metric_is_a_typed_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_fairsched"))
        .args([
            "--json",
            "--workload",
            "fpt:k=2",
            "--metrics",
            "timeline:samples=8",
            "--no-reference",
        ])
        .output()
        .expect("fairsched binary runs");
    assert!(!output.status.success(), "--no-reference with timeline must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("timeline") && stderr.contains("needs the REF reference"),
        "unexpected error output: {stderr}"
    );
}

/// A malformed timeline sample count fails with the typed parameter
/// error (the historical core path panicked on zero samples).
#[test]
fn zero_timeline_samples_is_a_typed_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_fairsched"))
        .args(["--json", "--workload", "fpt:k=2", "--metrics", "timeline:samples=0"])
        .output()
        .expect("fairsched binary runs");
    assert!(!output.status.success(), "samples=0 must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("timeline:samples") && stderr.contains("at least 1"),
        "unexpected error output: {stderr}"
    );
}
