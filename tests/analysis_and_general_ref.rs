//! Integration tests for the analysis API and the general-utility REF.

use fairsched::core::analysis::{
    induced_game, induced_values, order_reverse_gap, shapley_contributions,
};
use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::{GeneralRefScheduler, RefScheduler};
use fairsched::core::utility::SpUtility;
use fairsched::core::Trace;
use fairsched::sim::{simulate_with_options, SimOptions};
use fairsched::workloads::{generate, to_trace, MachineSplit, SynthConfig};

fn small_trace(seed: u64) -> Trace {
    let config = SynthConfig {
        n_users: 6,
        horizon: 100,
        n_machines: 3,
        load: 1.0,
        duration_median: 5.0,
        duration_sigma: 0.8,
        max_duration: 30,
        ..SynthConfig::default()
    };
    let jobs = generate(&config, seed);
    to_trace(&jobs, 3, 3, MachineSplit::Equal, seed).unwrap()
}

#[test]
fn induced_game_shapley_is_efficient_on_random_traces() {
    for seed in 0..6 {
        let trace = small_trace(seed);
        let t = 120;
        let values = induced_values(&trace, t);
        let phi = shapley_contributions(&trace, t);
        let grand = *values.last().unwrap() as f64;
        let total: f64 = phi.iter().sum();
        assert!(
            (total - grand).abs() < 1e-6,
            "seed {seed}: Σφ = {total} but v(grand) = {grand}"
        );
    }
}

#[test]
fn induced_game_values_monotone_in_time() {
    let trace = small_trace(9);
    let early = induced_values(&trace, 40);
    let late = induced_values(&trace, 120);
    for (e, l) in early.iter().zip(&late) {
        assert!(l >= e, "coalition values must grow with time");
    }
}

#[test]
fn induced_game_monotone_in_coalitions_for_unit_jobs() {
    // For unit jobs, adding an organization (its machine and its jobs)
    // never decreases the value at any t: more capacity and more unit
    // work both help.
    let config = SynthConfig {
        n_users: 6,
        horizon: 60,
        n_machines: 3,
        load: 1.2,
        ..SynthConfig::default()
    }
    .unit_jobs();
    let jobs = generate(&config, 4);
    let trace = to_trace(&jobs, 3, 3, MachineSplit::Equal, 4).unwrap();
    let game = induced_game(&trace, 80);
    assert!(fairsched::coopgame::properties::is_monotone(&game));
}

#[test]
fn theorem_5_3_gap_series() {
    // The σ_ord / σ_rev relative gap approaches 1 — the quantity behind
    // the (1/2 − ε)-inapproximability argument.
    let mut prev = 0.0;
    for m in [2usize, 5, 10, 20, 50] {
        let gap = order_reverse_gap(m, 3);
        assert!(gap > prev, "gap must increase with m");
        prev = gap;
    }
    assert!(prev > 0.8, "gap at m=50 should be close to 1, got {prev}");
}

#[test]
fn general_ref_with_sp_is_close_to_exact_ref() {
    // The general-utility REF instantiated with ψ_sp follows the same
    // fairness gradient as the specialized integer REF; their schedules
    // may differ in tie resolution, but the resulting unfairness against
    // the exact reference must stay small on loaded workloads.
    for seed in [1u64, 5, 11] {
        let trace = small_trace(seed);
        let horizon = 120;
        let mut exact = RefScheduler::new(&trace);
        let fair = simulate_with_options(
            &trace,
            &mut exact,
            SimOptions { horizon, validate: true },
        )
        .expect("valid run");
        let mut general = GeneralRefScheduler::new(&trace, SpUtility);
        let run = simulate_with_options(
            &trace,
            &mut general,
            SimOptions { horizon, validate: true },
        )
        .expect("valid run");
        let report = FairnessReport::from_schedules(
            &trace,
            &run.schedule,
            &fair.schedule,
            horizon,
        );
        // Bound: far tighter than RoundRobin-level unfairness on the same
        // workloads (tens); tie-resolution noise only. Sized for the
        // vendored offline RNG's workload stream (crates/compat/rand).
        assert!(
            report.unfairness() < 4.0,
            "seed {seed}: GeneralRef(ψ_sp) unfairness {} too large",
            report.unfairness()
        );
    }
}
