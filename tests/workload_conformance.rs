//! The cross-crate workload conformance suite.
//!
//! Every factory registered in a [`WorkloadRegistry`] — built-in or
//! downstream — must uphold the same contract, checked here for each of
//! the representative specs it declares via
//! [`WorkloadFactory::conformance_specs`]:
//!
//! 1. **coverage** — the factory declares at least one conformance spec
//!    (one assert over registry iteration, so registering a workload
//!    without conformance coverage fails CI);
//! 2. **round-trip** — `parse(display(spec)) == spec`, and `display` is
//!    canonical (re-rendering the reparsed spec is a fixpoint);
//! 3. **determinism** — the same spec + seed builds the identical
//!    [`Trace`], byte for byte, across repeated builds;
//! 4. **seed sensitivity** — different seeds produce different traces
//!    (unless the factory opts out via
//!    [`WorkloadFactory::seed_sensitive`]);
//! 5. **trace validity** — the built trace passes every model invariant
//!    (sorted releases, contiguous ids, machines present), is non-empty,
//!    and honors the spec's own structural parameters (`orgs`/`k` counts,
//!    `split=equal` balance, the one-machine-per-organization floor).
//!
//! Downstream crates get the same guarantees for free: the suite is a
//! plain function over any registry, demonstrated below on a registry
//! extended with a custom factory.

use fairsched::core::Trace;
use fairsched::workloads::spec::{
    WorkloadContext, WorkloadError, WorkloadFactory, WorkloadRegistry, WorkloadSpec,
};

/// Seeds used for determinism/sensitivity probing (fixed, so the suite is
/// itself deterministic).
const SEEDS: [u64; 3] = [0, 1, 9];

fn build(
    registry: &WorkloadRegistry,
    spec: &WorkloadSpec,
    seed: u64,
) -> Result<Trace, WorkloadError> {
    registry.build(spec, &WorkloadContext { seed })
}

/// Runs the full conformance contract over every factory in `registry`,
/// returning human-readable violations (empty = conformant).
fn conformance_violations(registry: &WorkloadRegistry) -> Vec<String> {
    let mut violations = Vec::new();
    let mut fail = |name: &str, spec: &str, what: String| {
        violations.push(format!("[{name}] {spec}: {what}"));
    };

    for (name, specs) in registry.conformance_specs() {
        // 1. Coverage: registry iteration makes this a one-assert check.
        if specs.is_empty() {
            fail(&name, "<none>", "factory declares no conformance specs".into());
            continue;
        }
        let factory = registry.get(&name).expect("iterated name is registered");

        for spec in &specs {
            let label = spec.to_string();

            if spec.name() != name {
                fail(
                    &name,
                    &label,
                    "conformance spec selects a different factory".into(),
                );
                continue;
            }

            // 2. Round-trip: parse ∘ display is the identity, display is
            //    canonical (a fixpoint under reparsing).
            match label.parse::<WorkloadSpec>() {
                Err(e) => {
                    fail(&name, &label, format!("display does not reparse: {e}"));
                    continue;
                }
                Ok(reparsed) => {
                    if &reparsed != spec {
                        fail(&name, &label, "parse(display(spec)) != spec".into());
                    }
                    if reparsed.to_string() != label {
                        fail(&name, &label, "display is not canonical".into());
                    }
                }
            }

            // 3. Determinism: same spec + seed ⇒ identical trace.
            let mut traces = Vec::new();
            for &seed in &SEEDS {
                match (build(registry, spec, seed), build(registry, spec, seed)) {
                    (Ok(a), Ok(b)) => {
                        if a != b {
                            fail(
                                &name,
                                &label,
                                format!(
                                    "seed {seed}: two builds differ (non-deterministic)"
                                ),
                            );
                        }
                        traces.push((seed, a));
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        fail(&name, &label, format!("seed {seed}: build failed: {e}"));
                    }
                }
            }
            if traces.len() != SEEDS.len() {
                continue;
            }

            // 4. Seed sensitivity (opt-out via `seed_sensitive`).
            if factory.seed_sensitive() {
                let base = &traces[0].1;
                if traces[1..].iter().all(|(_, t)| t == base) {
                    fail(
                        &name,
                        &label,
                        format!("seeds {SEEDS:?} all produced the identical trace"),
                    );
                }
            }

            // 5. Trace validity + structural agreement with the spec.
            for (seed, trace) in &traces {
                if let Err(e) = trace.validate() {
                    fail(&name, &label, format!("seed {seed}: invalid trace: {e}"));
                }
                if trace.n_jobs() == 0 {
                    fail(&name, &label, format!("seed {seed}: empty trace"));
                }
                for w in trace.releases().windows(2) {
                    if w[0] > w[1] {
                        fail(&name, &label, format!("seed {seed}: unsorted releases"));
                        break;
                    }
                }
                let info = trace.cluster_info();
                if trace.n_orgs() == 0 || info.n_machines() == 0 {
                    fail(
                        &name,
                        &label,
                        format!("seed {seed}: no organizations/machines"),
                    );
                }
                // The machine-split floor: every organization contributes.
                let counts: Vec<usize> =
                    trace.orgs().iter().map(|o| o.n_machines).collect();
                if counts.contains(&0) {
                    fail(
                        &name,
                        &label,
                        format!(
                            "seed {seed}: an organization has no machines: {counts:?}"
                        ),
                    );
                }
                // Org-count parameters must be honored exactly (the synth
                // and swf families call it `orgs`, fpt calls it `k`).
                for key in ["orgs", "k"] {
                    if let Some(raw) = spec.get(key) {
                        if let Ok(want) = raw.parse::<usize>() {
                            if trace.n_orgs() != want {
                                fail(
                                    &name,
                                    &label,
                                    format!(
                                        "seed {seed}: {key}={want} but trace has {} organizations",
                                        trace.n_orgs()
                                    ),
                                );
                            }
                        }
                    }
                }
                // An equal split must be balanced to within one machine.
                if spec.get("split") == Some("equal") || spec.name() == "fpt" {
                    let (min, max) = (
                        counts.iter().copied().min().unwrap_or(0),
                        counts.iter().copied().max().unwrap_or(0),
                    );
                    if max - min > 1 {
                        fail(
                            &name,
                            &label,
                            format!("seed {seed}: equal split is unbalanced: {counts:?}"),
                        );
                    }
                }
            }
        }
    }
    violations
}

#[test]
fn every_registered_factory_conforms() {
    let violations = conformance_violations(WorkloadRegistry::shared());
    assert!(
        violations.is_empty(),
        "workload conformance violations:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn every_registered_factory_has_conformance_coverage() {
    // The one-assert CI gate: registering a workload family without
    // conformance specs fails the build.
    let registry = WorkloadRegistry::shared();
    let covered: Vec<(String, usize)> = registry
        .conformance_specs()
        .into_iter()
        .map(|(name, specs)| (name, specs.len()))
        .collect();
    assert!(
        covered.iter().all(|(_, n)| *n > 0) && covered.len() >= 3,
        "factories without conformance specs: {covered:?}"
    );
}

#[test]
fn conformance_specs_cover_every_builtin_family() {
    let names: Vec<String> =
        WorkloadRegistry::shared().names().map(str::to_string).collect();
    assert_eq!(names, ["fpt", "swf", "synth", "trace"]);
}

/// A downstream factory registered into an extended registry inherits the
/// whole contract from the same harness function — no extra test code.
#[test]
fn downstream_factories_get_conformance_for_free() {
    struct Sawtooth;
    impl WorkloadFactory for Sawtooth {
        fn name(&self) -> &str {
            "sawtooth"
        }
        fn summary(&self) -> &str {
            "test-only deterministic burst pattern with a seeded phase"
        }
        fn accepted_params(&self) -> &[&str] {
            &["orgs", "jobs"]
        }
        fn conformance_specs(&self) -> Vec<WorkloadSpec> {
            vec![
                WorkloadSpec::bare("sawtooth").with("orgs", 3).with("jobs", 20),
                // lint:allow(spec-literal) test-local family, not in the shared registry
                "sawtooth:jobs=7,orgs=2".parse().unwrap(),
            ]
        }
        fn build(
            &self,
            spec: &WorkloadSpec,
            ctx: &WorkloadContext,
        ) -> Result<Trace, WorkloadError> {
            spec.deny_unknown_params(self.accepted_params())?;
            let orgs = spec.parsed("orgs", 2usize)?;
            let jobs = spec.parsed("jobs", 10usize)?;
            if orgs == 0 || jobs == 0 {
                return Err(spec.bad_param("orgs", "orgs and jobs must be positive"));
            }
            let mut b = Trace::builder();
            let ids: Vec<_> =
                (0..orgs).map(|i| b.org(format!("saw{i}"), 1 + i % 2)).collect();
            for j in 0..jobs {
                let phase = ctx.seed % 7;
                b.job(ids[j % orgs], (j as u64) * 3 + phase, 1 + (j as u64 + phase) % 5);
            }
            Ok(b.build()?)
        }
    }

    let mut registry = WorkloadRegistry::default();
    registry.register(Box::new(Sawtooth));
    let violations = conformance_violations(&registry);
    assert!(
        violations.is_empty(),
        "downstream factory failed inherited conformance:\n  {}",
        violations.join("\n  ")
    );
    // And a *broken* downstream factory is caught by the same harness.
    struct NoCoverage;
    impl WorkloadFactory for NoCoverage {
        fn name(&self) -> &str {
            "nocoverage"
        }
        fn summary(&self) -> &str {
            "registers without conformance specs"
        }
        fn conformance_specs(&self) -> Vec<WorkloadSpec> {
            Vec::new()
        }
        fn build(
            &self,
            _spec: &WorkloadSpec,
            _ctx: &WorkloadContext,
        ) -> Result<Trace, WorkloadError> {
            let mut b = Trace::builder();
            let o = b.org("x", 1);
            b.job(o, 0, 1);
            Ok(b.build()?)
        }
    }
    registry.register(Box::new(NoCoverage));
    let violations = conformance_violations(&registry);
    assert!(
        violations.iter().any(|v| v.contains("no conformance specs")),
        "missing coverage must be reported, got: {violations:?}"
    );
}

/// Spec strings are the experiment-matrix data format; the error surface
/// must stay typed end to end (no panics) for matrix tooling to collect.
#[test]
fn registry_errors_are_typed_not_panics() {
    let registry = WorkloadRegistry::shared();
    let ctx = WorkloadContext { seed: 0 };
    assert!(matches!(registry.build_str("", &ctx), Err(WorkloadError::Empty)));
    assert!(matches!(
        registry.build_str("synth:", &ctx),
        Err(WorkloadError::BadSyntax { .. })
    ));
    assert!(matches!(
        registry.build_str("atlantis", &ctx),
        Err(WorkloadError::UnknownWorkload { .. })
    ));
    assert!(matches!(
        // lint:allow(spec-literal) deliberately rejected parameter.
        registry.build_str("synth:warp=9", &ctx),
        Err(WorkloadError::UnknownParam { .. })
    ));
    assert!(matches!(
        registry.build_str("fpt:k=-3", &ctx),
        Err(WorkloadError::BadParam { .. })
    ));
    assert!(matches!(
        registry.build_str("swf:path=/definitely/not/here.swf", &ctx),
        Err(WorkloadError::Io { .. })
    ));
}
