//! End-to-end equivalence of the typed `Report` pipeline with the
//! pre-refactor measurement paths, pinned on the `fpt:k=8` bench family
//! (the workload behind `BENCH_lattice.json`, which must stay
//! comparable).
//!
//! The historical paths being matched bit for bit:
//!
//! * the bench runner's per-instance `Δψ/p_tot` (previously
//!   `FairnessReport::from_schedules(..).unfairness()` inlined in
//!   `runner.rs`);
//! * the CLI's per-organization numbers (previously ad-hoc
//!   `OrgMetrics` fields).

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::registry::SchedulerSpec;
use fairsched::core::Trace;
use fairsched::sim::metrics::org_metrics;
use fairsched::sim::report::{MetricRegistry, MetricValue, Report};
use fairsched::sim::Simulation;
use fairsched::workloads::spec::{WorkloadContext, WorkloadRegistry};
use fairsched_bench::runner::{run_instance, Algo, DelayExperiment};

const HORIZON: u64 = 2_000;
const SEED: u64 = 42;

fn bench_family_trace(seed: u64) -> Trace {
    WorkloadRegistry::shared().build_str("fpt:k=8", &WorkloadContext { seed }).unwrap()
}

/// The pre-refactor bench computation, reproduced verbatim: REF and every
/// algorithm through `run_matrix`, then `FairnessReport` per algorithm.
fn old_style_unfairness(trace: &Trace, specs: &[SchedulerSpec], seed: u64) -> Vec<f64> {
    let session = Simulation::new(trace).horizon(HORIZON).seed(seed ^ 0x5eed);
    let ref_result = session.run_matrix(&[SchedulerSpec::bare("ref")]).unwrap().remove(0);
    let results = session.run_matrix(specs).unwrap();
    results
        .iter()
        .map(|result| {
            FairnessReport::from_schedules(
                trace,
                &result.schedule,
                &ref_result.schedule,
                HORIZON,
            )
            .unfairness()
        })
        .collect()
}

/// The acceptance gate: bench-runner delay values through the metric
/// registry are bit-identical to the pre-refactor `FairnessReport` path
/// for the `fpt:k=8` bench family.
#[test]
fn bench_runner_delay_is_bit_identical_to_the_old_path() {
    let exp = DelayExperiment {
        workload: "fpt:k=8".parse().unwrap(),
        horizon: HORIZON,
        n_instances: 1,
        base_seed: SEED,
        algos: vec![Algo::RoundRobin, Algo::FairShare, Algo::Rand(5), Algo::Fifo],
        metric: DelayExperiment::delay_metric(),
    };
    let new = run_instance(&exp, SEED).unwrap();

    let trace = bench_family_trace(SEED);
    let specs: Vec<SchedulerSpec> = exp.algos.iter().map(Algo::spec).collect();
    let old = old_style_unfairness(&trace, &specs, SEED);

    assert_eq!(new.len(), old.len());
    for ((label, new_value), old_value) in new.iter().zip(&old) {
        assert_eq!(
            new_value.to_bits(),
            old_value.to_bits(),
            "delay for {label} drifted: new {new_value} vs old {old_value}"
        );
    }
}

/// Session reports carry the same per-organization numbers the CLI's
/// bespoke `OrgMetrics`-based JSON used to: completed / flow / waiting /
/// ψ, bit for bit, plus the `Δψ/p_tot` aggregate.
#[test]
fn grid_and_session_reports_match_org_metrics_bit_for_bit() {
    let trace = bench_family_trace(SEED);
    let report = Simulation::new(&trace)
        .scheduler("fairshare")
        .unwrap()
        .horizon(HORIZON)
        .seed(SEED)
        .metrics(&["completed", "flow", "waiting", "psi", "delay", "stretch"])
        .unwrap()
        .run_report()
        .unwrap();

    let result = Simulation::new(&trace)
        .scheduler("fairshare")
        .unwrap()
        .horizon(HORIZON)
        .seed(SEED)
        .run()
        .unwrap();
    let fair = Simulation::new(&trace)
        .scheduler("ref")
        .unwrap()
        .horizon(HORIZON)
        .seed(SEED)
        .run()
        .unwrap();
    let old_metrics = org_metrics(&trace, &result.schedule, HORIZON);
    let old_fairness =
        FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, HORIZON);

    for (u, om) in old_metrics.iter().enumerate() {
        assert_eq!(
            report.column("completed").unwrap().per_org[u],
            MetricValue::Int(om.completed as i128)
        );
        assert_eq!(
            report.column("flow").unwrap().per_org[u],
            MetricValue::Int(om.flow_time as i128)
        );
        assert_eq!(
            report.column("waiting").unwrap().per_org[u],
            MetricValue::Int(om.waiting_time as i128)
        );
        assert_eq!(
            report.column("psi").unwrap().per_org[u],
            MetricValue::Int(result.psi[u])
        );
        match report.column("stretch").unwrap().per_org[u] {
            MetricValue::Float(v) => assert_eq!(v.to_bits(), om.mean_stretch.to_bits()),
            ref other => panic!("stretch must be a float, got {other:?}"),
        }
    }
    match report.column("delay").unwrap().aggregate {
        MetricValue::Float(v) => {
            assert_eq!(v.to_bits(), old_fairness.unfairness().to_bits())
        }
        ref other => panic!("delay aggregate must be a float, got {other:?}"),
    }

    // The grid pipeline reports the same cells.
    let cells = Simulation::session()
        .horizon(HORIZON)
        .seed(SEED)
        .metrics(&["psi", "delay"])
        .unwrap()
        .run_grid_reports(&["fpt:k=8".parse().unwrap()], &["fairshare".parse().unwrap()]);
    assert_eq!(cells.len(), 1);
    let grid_report = cells[0].report.as_ref().unwrap();
    assert_eq!(
        grid_report.column("psi").unwrap().per_org,
        report.column("psi").unwrap().per_org
    );
    assert_eq!(
        grid_report.column("delay").unwrap().aggregate,
        report.column("delay").unwrap().aggregate
    );
}

/// The timeline metric through the full session pipeline is bit-identical
/// to evaluating `FairnessReport::from_schedules` at every sample time —
/// the streamed time axis reports exactly the per-moment numbers the
/// historical endpoint path would, on the `fpt:k=8` bench family.
#[test]
fn timeline_metric_matches_per_sample_fairness_reports() {
    let trace = bench_family_trace(SEED);
    let report = Simulation::new(&trace)
        .scheduler("fifo")
        .unwrap()
        .horizon(HORIZON)
        .seed(SEED)
        .metrics(&["timeline:samples=10", "timeline:samples=10,stat=delta_psi"])
        .unwrap()
        .run_report()
        .unwrap();
    let unfairness = report.time_series("timeline:samples=10").unwrap();
    let delta = report.time_series("timeline:samples=10,stat=delta_psi").unwrap();
    assert_eq!(*unfairness.times.last().unwrap(), HORIZON);
    assert_eq!(unfairness.times, delta.times);

    let result = Simulation::new(&trace)
        .scheduler("fifo")
        .unwrap()
        .horizon(HORIZON)
        .run()
        .unwrap();
    let fair =
        Simulation::new(&trace).scheduler("ref").unwrap().horizon(HORIZON).run().unwrap();
    let mut nonzero = false;
    for (i, &t) in unfairness.times.iter().enumerate() {
        let old =
            FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, t);
        match unfairness.aggregate[i] {
            MetricValue::Float(v) => {
                assert_eq!(
                    v.to_bits(),
                    old.unfairness().to_bits(),
                    "unfairness drifted at t={t}"
                );
                nonzero |= v != 0.0;
            }
            ref other => panic!("unfairness must be a float, got {other:?}"),
        }
        assert_eq!(
            delta.aggregate[i],
            MetricValue::Int(old.delta_psi),
            "delta_psi drifted at t={t}"
        );
    }
    assert!(nonzero, "the pinned trajectory should not be all zeros");
}

/// The same report drives every sink without re-running anything, and all
/// three sinks agree on the canonical metric specs.
#[test]
fn report_sinks_agree_on_provenance() {
    let report = Simulation::session()
        .workload("fpt:k=3")
        .unwrap()
        .scheduler("roundrobin")
        .unwrap()
        .horizon(HORIZON)
        .seed(SEED)
        .metrics(&["delay", "delay:norm=ideal", "ranking", "utilization"])
        .unwrap()
        .run_report()
        .unwrap();
    let specs = report.metric_specs();
    assert_eq!(specs, ["delay", "delay:norm=ideal", "ranking", "utilization"]);

    let json = report.to_json();
    let csv = report.to_csv();
    let table = report.render_table();
    for spec in &specs {
        assert!(json.contains(spec), "JSON sink is missing {spec}");
        assert!(csv.contains(spec), "CSV sink is missing {spec}");
        assert!(table.contains(spec), "table sink is missing {spec}");
    }
    // Bench's SummaryTable aggregation and the registry agree: the mean
    // of a single instance is the instance value itself.
    let exp = DelayExperiment {
        workload: "fpt:k=3".parse().unwrap(),
        horizon: HORIZON,
        n_instances: 1,
        base_seed: SEED,
        algos: vec![Algo::RoundRobin],
        metric: DelayExperiment::delay_metric(),
    };
    let stats = fairsched_bench::run_delay_experiment(&exp);
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].values.len(), 1);
    assert!(stats[0].values[0] >= 0.0);
    assert!(MetricRegistry::shared().names().count() >= 10);
    let _: &Report = &report;
}
