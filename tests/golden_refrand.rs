//! Golden before/after tests for the coalition-lattice fast path.
//!
//! REF and RAND must be **bit-for-bit deterministic**: for a fixed trace,
//! seed, and horizon, the schedule (every `(job, org, machine, start,
//! proc)` tuple) and the `ψ_sp` vector are fully determined. The fixtures
//! under `tests/golden/` were generated with the pre-fast-path lattice
//! (`HashMap` index, from-scratch Shapley at every event time); any
//! optimization of the lattice, the Shapley computation, or the engine
//! must reproduce them exactly.
//!
//! Regenerate with `REGEN_GOLDEN=1 cargo test --test golden_refrand` —
//! but only when a *deliberate* behavior change is being made, in which
//! case the diff documents it.

use fairsched::core::Trace;
use fairsched::sim::{SimResult, Simulation};
use fairsched::workloads::{generate, to_trace, MachineSplit, SynthConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The synthetic workload family the lattice benches use (small enough
/// for REF to stay fast at k ≤ 6, busy enough to exercise every path).
fn workload(k: usize, seed: u64) -> Trace {
    let config = SynthConfig {
        n_users: 2 * k,
        horizon: 1_000,
        n_machines: 2 * k,
        load: 0.8,
        duration_median: 30.0,
        duration_sigma: 1.0,
        max_duration: 200,
        ..SynthConfig::default()
    };
    let jobs = generate(&config, seed);
    to_trace(&jobs, k, 2 * k, MachineSplit::Equal, seed).unwrap()
}

/// A tiny hand-built trace with bursts, idle gaps, and a jobless donor
/// org — the structural corner cases of the fair rule.
fn corner_trace() -> Trace {
    let mut b = Trace::builder();
    let a = b.org("busy", 2);
    let c = b.org("donor", 1);
    let d = b.org("late", 1);
    b.jobs(a, 0, 3, 4);
    b.job(c, 7, 5).job(c, 7, 1);
    b.job(d, 12, 2).job(d, 20, 4);
    b.build().unwrap()
}

/// Canonical, diff-friendly rendering of a run: one line per scheduled
/// job plus the ψ vector.
fn render(result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scheduler={}", result.scheduler);
    let _ = writeln!(out, "horizon={}", result.horizon);
    for e in result.schedule.entries() {
        let _ = writeln!(
            out,
            "job={} org={} machine={} start={} proc={}",
            e.job.index(),
            e.org.index(),
            e.machine.index(),
            e.start,
            e.proc_time
        );
    }
    let psi: Vec<String> = result.psi.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(out, "psi={}", psi.join(","));
    out
}

struct Case {
    name: &'static str,
    trace: Trace,
    spec: &'static str,
    seed: u64,
    horizon: u64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "ref_corner",
            trace: corner_trace(),
            spec: "ref",
            seed: 0,
            horizon: 40,
        },
        Case {
            name: "rand15_corner",
            trace: corner_trace(),
            spec: "rand:perms=15",
            seed: 9,
            horizon: 40,
        },
        Case {
            name: "ref_k4_s5",
            trace: workload(4, 5),
            spec: "ref",
            seed: 0,
            horizon: 1_000,
        },
        Case {
            name: "ref_k5_s11",
            trace: workload(5, 11),
            spec: "ref",
            seed: 0,
            horizon: 800,
        },
        Case {
            name: "ref_k6_s5",
            trace: workload(6, 5),
            spec: "ref",
            seed: 0,
            horizon: 600,
        },
        Case {
            name: "rand15_k4_s5",
            trace: workload(4, 5),
            spec: "rand:perms=15",
            seed: 9,
            horizon: 1_000,
        },
        Case {
            name: "rand75_k6_s7",
            trace: workload(6, 7),
            spec: "rand:perms=75",
            seed: 3,
            horizon: 800,
        },
        Case {
            name: "rand5_k8_s2",
            trace: workload(8, 2),
            spec: "rand:perms=5",
            seed: 17,
            horizon: 600,
        },
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn ref_and_rand_match_pre_fastpath_golden_outputs() {
    let regen = std::env::var_os("REGEN_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for case in cases() {
        let result = Simulation::new(&case.trace)
            .scheduler(case.spec)
            .unwrap()
            .horizon(case.horizon)
            .validate(true)
            .seed(case.seed)
            .run()
            .unwrap();
        let rendered = render(&result);
        let path = golden_path(case.name);
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        if rendered != expected {
            mismatches.push(case.name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "schedules/ψ diverged from the golden fixtures for: {mismatches:?} \
         (REGEN_GOLDEN=1 only for deliberate behavior changes)"
    );
}
