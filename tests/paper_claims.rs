//! Executable versions of the paper's propositions and worked examples,
//! checked across crates (the single-module versions live in unit tests;
//! these go through the full trace → engine pipeline).

use fairsched::coopgame::{Coalition, Player, TabularGame};
use fairsched::core::scheduler::{
    FifoScheduler, RandomScheduler, RoundRobinScheduler, Scheduler,
};
use fairsched::core::utility::{sp_vector, FlowTime, Utility};
use fairsched::core::{OrgId, Trace};
use fairsched::sim::exhaustive::{figure7_family, greedy_envelope};
use fairsched::sim::simulate;
use fairsched::workloads::{generate, to_trace, MachineSplit, SynthConfig};

/// Proposition 4.2: for equal-size jobs all completed before `t`,
/// maximizing `ψ_sp` is equivalent to minimizing flow time — so across
/// different schedules of the same trace, the two metrics rank schedules
/// in exactly opposite order.
#[test]
fn proposition_4_2_flow_time_equivalence() {
    let mut b = Trace::builder();
    let o1 = b.org("a", 1);
    let o2 = b.org("b", 1);
    // Equal processing times, staggered releases; 2 machines, 8 jobs.
    for i in 0..4 {
        b.job(o1, i, 4);
        b.job(o2, i + 1, 4);
    }
    let trace = b.build().unwrap();
    let horizon = 200; // everything completes well before this

    let mut outcomes: Vec<(i128, f64)> = Vec::new();
    for seed in 0..6 {
        let mut s = RandomScheduler::new(seed);
        let r = simulate(&trace, &mut s, horizon).expect("valid run");
        assert_eq!(r.completed_jobs, 8);
        let psi_total: i128 = r.psi.iter().sum();
        let flow: f64 = (0..trace.n_orgs())
            .map(|u| FlowTime.value(&trace, &r.schedule, OrgId(u as u32), horizon))
            .sum();
        outcomes.push((psi_total, flow));
    }
    // p = 4: psi = const − 4·flow exactly (from the proof), for every pair.
    let (psi0, flow0) = outcomes[0];
    for &(psi, flow) in &outcomes[1..] {
        assert_eq!(
            psi - psi0,
            (-4.0 * (flow - flow0)) as i128,
            "ψ_sp and flow time must be affinely related with slope −p"
        );
    }
}

/// Proposition 5.5 through the full machinery: build the 3-org game from
/// simulated coalition values and verify non-supermodularity.
#[test]
fn proposition_5_5_game_is_not_supermodular() {
    // Orgs a, b: one machine + two unit jobs each; org c: one machine only.
    let game = TabularGame::from_fn(3, |coal| {
        if coal.is_empty() {
            return 0.0;
        }
        let mut b = Trace::builder();
        let mut org_ids = Vec::new();
        for i in 0..3 {
            let has_machine = coal.contains(Player(i));
            org_ids.push(b.org(format!("o{i}"), if has_machine { 1 } else { 0 }));
        }
        for (i, &org) in org_ids.iter().enumerate().take(2) {
            if coal.contains(Player(i)) {
                b.jobs(org, 0, 1, 2);
            }
        }
        match b.build() {
            Ok(trace) => {
                let r =
                    simulate(&trace, &mut FifoScheduler::new(), 2).expect("valid run");
                r.coalition_value() as f64
            }
            Err(_) => 0.0, // no machines in this coalition
        }
    });
    assert_eq!(
        game.value([Player(0), Player(2)].into_iter().collect::<Coalition>()),
        4.0
    );
    assert_eq!(game.value(Coalition::grand(3)), 7.0);
    assert!(!fairsched::coopgame::properties::is_supermodular(&game));
    assert!(fairsched::coopgame::properties::supermodularity_violation(&game).is_some());
}

/// Theorem 6.2 via the pipeline: real schedulers on the Figure 7 family
/// and random instances never fall below 3/4 of the best greedy schedule.
#[test]
fn theorem_6_2_real_schedulers_within_bound() {
    let (trace, t) = figure7_family(2, 4);
    let env = greedy_envelope(&trace, t);
    assert_eq!(env.min_units * 4, env.max_units * 3); // tight family

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FifoScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(RandomScheduler::new(3)),
    ];
    for mut s in schedulers {
        let r = simulate(&trace, s.as_mut(), t).expect("valid run");
        assert!(
            r.busy_time * 4 >= env.max_units * 3,
            "{} below the greedy bound",
            r.scheduler
        );
    }
}

/// Figure 2 through the engine: reconstruct the example's schedule with an
/// actual trace (3 machines, FIFO produces exactly the figure's layout)
/// and check the utilities.
#[test]
fn figure_2_schedule_through_the_engine() {
    let mut b = Trace::builder();
    let o1 = b.org("O1", 3);
    let o2 = b.org("O2", 0);
    // Release in the figure's machine layout order. FIFO on 3 machines
    // reproduces the starts: machines free at (0,0,0) -> J1,J2,J3;
    // J4 at 3, J5 at 3, J6 at 4, J7 at 6, o2's job at 9, J8 at 9, J9 at 10.
    b.job(o1, 0, 3) // J1
        .job(o1, 0, 4) // J2
        .job(o1, 0, 3) // J3
        .job(o1, 0, 6) // J4
        .job(o1, 0, 3) // J5
        .job(o1, 0, 6) // J6
        .job(o1, 0, 3) // J7
        .job(o2, 9, 5) // J(2)1 — released so it grabs the machine at 9
        .job(o1, 9, 3) // J8
        .job(o1, 9, 4); // J9
    let trace = b.build().unwrap();
    let r = simulate(&trace, &mut FifoScheduler::new(), 14).expect("valid run");
    let psi13 = sp_vector(&trace, &r.schedule, 13);
    let psi14 = sp_vector(&trace, &r.schedule, 14);
    assert_eq!(psi13[0], 262, "O1 utility at t=13 (paper: 262)");
    assert_eq!(psi14[0], 297, "O1 utility at t=14 (paper: 297)");
}

/// Unit jobs: any two greedy policies give the same number of completed
/// units at every time (the stronger statement inside Prop 5.4's proof).
#[test]
fn unit_jobs_completed_counts_policy_independent() {
    let config = SynthConfig {
        n_users: 6,
        horizon: 200,
        n_machines: 2,
        load: 1.5,
        ..SynthConfig::default()
    }
    .unit_jobs();
    let jobs = generate(&config, 9);
    let trace = to_trace(&jobs, 2, 2, MachineSplit::Equal, 9).unwrap();
    for t in [10u64, 50, 100, 200] {
        let a =
            simulate(&trace, &mut FifoScheduler::new(), t).expect("valid run").busy_time;
        let b = simulate(&trace, &mut RandomScheduler::new(4), t)
            .expect("valid run")
            .busy_time;
        let c = simulate(&trace, &mut RoundRobinScheduler::new(), t)
            .expect("valid run")
            .busy_time;
        assert!(a == b && b == c, "completed units diverged at t={t}: {a} {b} {c}");
    }
}
