//! Property-based integration tests: random traces through every
//! scheduler, checking the model invariants end to end.

use fairsched::core::scheduler::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
    RandScheduler, RandomScheduler, RefScheduler, RoundRobinScheduler, Scheduler,
    UtFairShareScheduler,
};
use fairsched::core::{OrgId, Trace};
use fairsched::sim::{simulate_with_options, SimOptions};
use proptest::prelude::*;

/// Random small trace: 2–4 orgs, 1–3 machines each, up to 14 jobs.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(1usize..4, 2..5),
        proptest::collection::vec((0u64..20, 1u64..10, 0u32..4), 1..15),
    )
        .prop_map(|(machines, jobs)| {
            let mut b = Trace::builder();
            let orgs: Vec<OrgId> = machines
                .iter()
                .enumerate()
                .map(|(i, &m)| b.org(format!("o{i}"), m))
                .collect();
            for (release, proc, org_pick) in jobs {
                let org = orgs[org_pick as usize % orgs.len()];
                b.job(org, release, proc);
            }
            b.build().unwrap()
        })
}

fn zoo(trace: &Trace) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FifoScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(RandomScheduler::new(1)),
        Box::new(FairShareScheduler::new()),
        Box::new(UtFairShareScheduler::new()),
        Box::new(CurrFairShareScheduler::new()),
        Box::new(DirectContrScheduler::new(2)),
        Box::new(RefScheduler::new(trace)),
        Box::new(RandScheduler::new(trace, 8, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler yields a schedule satisfying every invariant
    /// (release respect, FIFO, no overlap, greediness) on random traces.
    #[test]
    fn prop_all_schedulers_valid_on_random_traces(trace in arb_trace()) {
        let horizon = trace.completion_horizon();
        for mut s in zoo(&trace) {
            let r = simulate_with_options(
                &trace,
                s.as_mut(),
                SimOptions { horizon, validate: true },
            ).expect("valid run");
            // With the horizon covering everything, all jobs run.
            prop_assert_eq!(r.started_jobs, trace.n_jobs());
            prop_assert_eq!(r.completed_jobs, trace.n_jobs());
            prop_assert_eq!(r.busy_time, trace.total_work());
        }
    }

    /// Schedules are reproducible: same trace, same seed, same schedule.
    #[test]
    fn prop_determinism(trace in arb_trace()) {
        let horizon = trace.completion_horizon();
        let run = || {
            let mut s = RefScheduler::new(&trace);
            simulate_with_options(&trace, &mut s, SimOptions { horizon, validate: false }).expect("valid run")
                .schedule
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.entries(), b.entries());
    }

    /// Total utility is monotone in the horizon for any scheduler.
    #[test]
    fn prop_value_monotone_in_horizon(trace in arb_trace()) {
        let full = trace.completion_horizon();
        let mut s = FairShareScheduler::new();
        let r = simulate_with_options(&trace, &mut s, SimOptions { horizon: full, validate: false }).expect("valid run");
        let mut last = -1i128;
        for t in [0, full / 4, full / 2, full] {
            let v: i128 = fairsched::core::utility::sp_vector(&trace, &r.schedule, t)
                .iter()
                .sum();
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// REF's internal utility trackers agree with the engine's closed-form
    /// evaluation at the horizon — the two independent ψ_sp implementations
    /// cross-check each other.
    #[test]
    fn prop_ref_trackers_match_engine(trace in arb_trace()) {
        let horizon = trace.completion_horizon().min(200);
        let mut s = RefScheduler::new(&trace);
        let r = simulate_with_options(&trace, &mut s, SimOptions { horizon, validate: false }).expect("valid run");
        prop_assert_eq!(s.psi(horizon), r.psi);
    }

    /// Exact Shapley contributions from REF satisfy efficiency against the
    /// realized grand-coalition value at any evaluation time.
    #[test]
    fn prop_ref_contributions_efficient(trace in arb_trace()) {
        let horizon = trace.completion_horizon().min(150);
        let mut s = RefScheduler::new(&trace);
        let r = simulate_with_options(&trace, &mut s, SimOptions { horizon, validate: false }).expect("valid run");
        let phi = s.contributions(horizon);
        let total_phi: f64 = phi.iter().sum();
        let v: i128 = r.psi.iter().sum();
        prop_assert!((total_phi - v as f64).abs() < 1e-6,
            "Σφ = {total_phi} but v = {v}");
    }
}
