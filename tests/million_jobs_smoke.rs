//! The million-job scale smoke test.
//!
//! Builds the bench scale-tier workload (≥ 10⁶ short jobs, 100
//! organizations on 400 machines — `fairsched_bench::baseline`'s
//! `scale/` rows measure the same trace), schedules it end to end with
//! the non-lattice schedulers, and checks the properties the columnar
//! trace refactor must preserve at scale:
//!
//! * every structural schedule invariant holds (release respected, no
//!   machine overlap, per-organization FIFO, no-idle);
//! * the engine's incrementally tracked ψ-vector agrees exactly with a
//!   from-scratch [`sp_vector`] recompute over the final schedule;
//! * the whole build → schedule → evaluate pipeline stays inside a
//!   generous wall-clock ceiling, so an accidental return of an O(n²) or
//!   O(n·k) path fails loudly instead of silently slowing CI.
//!
//! `#[ignore]` by default — a 10⁶-job trace is not unit-test sized; CI's
//! `bench-smoke` job runs it in release (`cargo test --release --
//! --ignored million_jobs`), where the pipeline takes single-digit
//! seconds.

use fairsched::core::scheduler::{FairShareScheduler, FifoScheduler, Scheduler};
use fairsched::core::utility::sp_vector;
use fairsched::sim::simulate;
use fairsched_bench::baseline::{scale_workload, SCALE_K, SCALE_MIN_JOBS, SCALE_SEED};
use std::time::{Duration, Instant};

/// Wall-clock ceiling for build + two full schedule/evaluate runs. The
/// release-build pipeline takes ~3 s on a developer machine; 120 s leaves
/// an order of magnitude for slow CI runners while still catching a
/// quadratic path (which would take hours at n = 10⁶).
const WALL_CEILING: Duration = Duration::from_secs(120);

#[test]
#[ignore = "10^6-job pipeline (~seconds in release); run in CI bench-smoke via --ignored"]
fn million_jobs_smoke() {
    let started = Instant::now();

    let trace = scale_workload(SCALE_SEED);
    assert!(
        trace.n_jobs() >= SCALE_MIN_JOBS,
        "scale workload must stay million-job sized, got {}",
        trace.n_jobs()
    );
    assert_eq!(trace.n_orgs(), SCALE_K);
    trace.validate().expect("scale trace upholds every model invariant");
    // Generous horizon: every job can finish (event-driven engine, so the
    // empty tail costs nothing).
    let horizon = trace.completion_horizon();

    let mut schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(FifoScheduler::new()), Box::new(FairShareScheduler::new())];
    for scheduler in &mut schedulers {
        let result = simulate(&trace, scheduler.as_mut(), horizon)
            .expect("engine contract holds at scale");
        assert_eq!(
            result.completed_jobs,
            trace.n_jobs(),
            "{}: all jobs finish under the completion horizon",
            result.scheduler
        );
        result
            .schedule
            .validate(&trace, horizon)
            .expect("schedule upholds every structural invariant");
        // The engine's incrementally maintained ψ must agree exactly with
        // the from-scratch recompute over the final schedule.
        let recomputed = sp_vector(&trace, &result.schedule, horizon);
        assert_eq!(
            result.psi, recomputed,
            "{}: tracked ψ-vector diverged from sp_vector recompute",
            result.scheduler
        );
    }

    let elapsed = started.elapsed();
    assert!(
        elapsed < WALL_CEILING,
        "million-job pipeline took {elapsed:?} (ceiling {WALL_CEILING:?}) — \
         a quadratic path is back"
    );
}
