//! End-to-end integration: synthetic workload → trace → engine → every
//! scheduler → validated schedule → fairness report.

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
    GeneralRefScheduler, RandScheduler, RandomScheduler, RefScheduler,
    RoundRobinScheduler, Scheduler, UtFairShareScheduler,
};
use fairsched::core::utility::SpUtility;
use fairsched::core::Trace;
use fairsched::sim::{simulate_with_options, SimOptions};
use fairsched::workloads::{
    generate, preset, to_trace, MachineSplit, PresetName, SynthConfig,
};

fn scheduler_zoo(trace: &Trace) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FifoScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(RandomScheduler::new(5)),
        Box::new(FairShareScheduler::new()),
        Box::new(UtFairShareScheduler::new()),
        Box::new(CurrFairShareScheduler::new()),
        Box::new(DirectContrScheduler::new(6)),
        Box::new(RefScheduler::new(trace)),
        Box::new(RandScheduler::new(trace, 15, 7)),
        Box::new(GeneralRefScheduler::new(trace, SpUtility)),
    ]
}

fn preset_trace(seed: u64, horizon: u64, orgs: usize) -> Trace {
    let p = preset(PresetName::LpcEgee, 0.2, horizon);
    let jobs = generate(&p.synth, seed);
    to_trace(&jobs, orgs, p.synth.n_machines, MachineSplit::Zipf(1.0), seed).unwrap()
}

#[test]
fn every_scheduler_produces_a_valid_schedule_on_a_preset_workload() {
    let horizon = 5_000;
    let trace = preset_trace(11, horizon, 4);
    for mut s in scheduler_zoo(&trace) {
        let r = simulate_with_options(
            &trace,
            s.as_mut(),
            SimOptions { horizon, validate: true },
        )
        .expect("valid run");
        assert!(r.started_jobs > 0, "{} started nothing", r.scheduler);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-12);
        // psi must be consistent with the schedule's own closed form.
        let psi2 = fairsched::core::utility::sp_vector(&trace, &r.schedule, horizon);
        assert_eq!(r.psi, psi2, "{} psi mismatch", r.scheduler);
    }
}

#[test]
fn ref_is_perfectly_fair_against_itself_and_others_are_not_generally() {
    let horizon = 4_000;
    let trace = preset_trace(23, horizon, 3);
    let mut reference = RefScheduler::new(&trace);
    let fair = simulate_with_options(
        &trace,
        &mut reference,
        SimOptions { horizon, validate: true },
    )
    .expect("valid run");
    let self_report =
        FairnessReport::from_schedules(&trace, &fair.schedule, &fair.schedule, horizon);
    assert_eq!(self_report.delta_psi, 0);
    assert_eq!(self_report.unfairness(), 0.0);

    // Round robin should show measurable unfairness on a loaded workload.
    let mut rr = RoundRobinScheduler::new();
    let rr_result =
        simulate_with_options(&trace, &mut rr, SimOptions { horizon, validate: true })
            .expect("valid run");
    let rr_report = FairnessReport::from_schedules(
        &trace,
        &rr_result.schedule,
        &fair.schedule,
        horizon,
    );
    assert!(rr_report.p_tot > 0);
    // (Not asserting > 0 strictly — tiny instances can tie — but the
    // deviation vector must be internally consistent.)
    let recomputed: i128 = rr_report.per_org.iter().map(|o| o.deviation().abs()).sum();
    assert_eq!(recomputed, rr_report.delta_psi);
}

#[test]
fn all_greedy_schedulers_complete_the_same_units_on_unit_jobs() {
    // Proposition 5.4: for unit jobs the coalition value is independent of
    // the greedy policy. Check v = Σψ matches across the whole zoo at
    // several horizons.
    let config = SynthConfig {
        n_users: 10,
        horizon: 400,
        n_machines: 3,
        load: 1.2,
        ..SynthConfig::default()
    }
    .unit_jobs();
    let jobs = generate(&config, 3);
    let trace = to_trace(&jobs, 3, 3, MachineSplit::Equal, 3).unwrap();
    for horizon in [50u64, 200, 400] {
        let values: Vec<i128> = scheduler_zoo(&trace)
            .into_iter()
            .map(|mut s| {
                simulate_with_options(
                    &trace,
                    s.as_mut(),
                    SimOptions { horizon, validate: true },
                )
                .expect("valid run")
                .coalition_value()
            })
            .collect();
        for v in &values {
            assert_eq!(
                *v, values[0],
                "coalition value differs across greedy policies at t={horizon}: {values:?}"
            );
        }
    }
}

#[test]
fn horizon_zero_and_tiny_traces_are_handled() {
    let mut b = Trace::builder();
    let a = b.org("a", 1);
    b.job(a, 0, 1);
    let trace = b.build().unwrap();
    for mut s in scheduler_zoo(&trace) {
        let r = simulate_with_options(
            &trace,
            s.as_mut(),
            SimOptions { horizon: 0, validate: true },
        )
        .expect("valid run");
        assert_eq!(r.busy_time, 0, "{}", r.scheduler);
    }
}

#[test]
fn machine_heavy_and_machine_less_orgs_coexist() {
    // One org contributes all machines, the other only jobs: the jobless
    // org's work still runs (greediness) and the donor org accrues all the
    // fair-share priority.
    let mut b = Trace::builder();
    let donor = b.org("donor", 3);
    let guest = b.org("guest", 0);
    b.jobs(guest, 0, 5, 4);
    b.jobs(donor, 10, 5, 2);
    let trace = b.build().unwrap();
    let horizon = 40;
    for mut s in scheduler_zoo(&trace) {
        let r = simulate_with_options(
            &trace,
            s.as_mut(),
            SimOptions { horizon, validate: true },
        )
        .expect("valid run");
        assert_eq!(r.started_jobs, 6, "{} must run the guest's jobs", r.scheduler);
    }
}
