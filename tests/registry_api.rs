//! Integration tests for the scheduler registry and the `Simulation`
//! session API: every registered spec must round-trip through
//! `FromStr`/`Display`, build on a small trace, and run; unknown or
//! malformed specs must yield typed errors, never panics.

use fairsched::core::scheduler::registry::{
    BuildContext, Registry, SchedulerSpec, SpecError,
};
use fairsched::core::Trace;
use fairsched::sim::{SimError, Simulation};
use proptest::prelude::*;

fn small_trace() -> Trace {
    let mut b = Trace::builder();
    let a = b.org("a", 1);
    let c = b.org("b", 2);
    b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
    b.build().unwrap()
}

/// The paper's Table 1/2 algorithm set plus baselines, as spec strings —
/// the acceptance surface: each must be constructible from a string.
const PAPER_SPECS: [&str; 12] = [
    "ref",
    "general-ref:util=sp",
    "general-ref:util=flowtime",
    "rand:perms=15",
    "rand:perms=75",
    "directcontr",
    "fairshare",
    "utfairshare",
    "currfairshare",
    "roundrobin",
    "fifo",
    "random",
];

#[test]
fn every_paper_scheduler_builds_from_its_string() {
    let trace = small_trace();
    let registry = Registry::default();
    for text in PAPER_SPECS {
        let spec: SchedulerSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("paper spec {text:?} failed to parse: {e}"));
        registry
            .build(&spec, &BuildContext { trace: &trace, seed: 1 })
            .unwrap_or_else(|e| panic!("paper spec {text:?} failed to build: {e}"));
    }
}

#[test]
fn every_registered_spec_round_trips_builds_and_runs() {
    let trace = small_trace();
    let registry = Registry::default();
    let specs = registry.default_specs();
    assert!(specs.len() >= 10, "registry lost factories: {specs:?}");
    for spec in &specs {
        // FromStr ∘ Display is the identity.
        let reparsed: SchedulerSpec = spec
            .to_string()
            .parse()
            .unwrap_or_else(|e| panic!("{spec} did not re-parse: {e}"));
        assert_eq!(&reparsed, spec, "round trip changed {spec}");
        // And the spec actually runs end to end through a session.
        let result = Simulation::new(&trace)
            .scheduler_spec(spec.clone())
            .horizon(60)
            .validate(true)
            .seed(5)
            .run()
            .unwrap_or_else(|e| panic!("{spec} failed to run: {e}"));
        assert_eq!(result.completed_jobs, 4, "{spec} must finish all jobs");
    }
}

#[test]
fn matrix_covers_the_whole_registry() {
    let trace = small_trace();
    let registry = Registry::default();
    let results = Simulation::new(&trace)
        .horizon(60)
        .run_matrix(&registry.default_specs())
        .expect("full-registry matrix");
    assert_eq!(results.len(), registry.names().count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parameterized rand specs round-trip and build for any positive
    /// permutation count.
    #[test]
    fn prop_rand_specs_round_trip_and_build(perms in 1usize..200, seed in 0u64..1000) {
        let text = format!("rand:perms={perms}");
        let spec: SchedulerSpec = text.parse().expect("valid spec");
        prop_assert_eq!(spec.to_string(), text);
        let trace = small_trace();
        let built = Registry::default()
            .build(&spec, &BuildContext { trace: &trace, seed });
        prop_assert!(built.is_ok());
    }

    /// Arbitrary junk either parses as a spec or fails with a typed
    /// `SpecError` — and whatever parses never panics when built (it may
    /// be an unknown scheduler, which must also be a typed error).
    #[test]
    fn prop_junk_specs_never_panic(bytes in proptest::collection::vec(32u8..127, 0..24)) {
        let text: String = bytes.iter().map(|&b| b as char).collect();
        let trace = small_trace();
        match text.parse::<SchedulerSpec>() {
            Ok(spec) => {
                // Typed success or typed failure; a panic fails the test.
                let _ = Registry::default()
                    .build(&spec, &BuildContext { trace: &trace, seed: 0 });
            }
            Err(e) => {
                let shown = e.to_string();
                prop_assert!(!shown.is_empty());
            }
        }
    }

    /// The session API turns unknown names into SimError::Spec, never a
    /// panic (lowercase identifiers that happen not to be registered).
    #[test]
    fn prop_unknown_names_are_typed_errors(suffix in 0u32..100_000) {
        let trace = small_trace();
        let name = format!("zz-{suffix}");
        match Simulation::new(&trace).scheduler(&name) {
            Ok(session) => match session.run() {
                Err(SimError::Spec(SpecError::UnknownScheduler { name: n, .. })) => {
                    prop_assert_eq!(n, name);
                }
                other => {
                    prop_assert!(false, "expected UnknownScheduler, got {:?}", other.map(|r| r.scheduler));
                }
            },
            Err(e) => prop_assert!(false, "{} should parse as a spec: {}", name, e),
        }
    }
}
