//! The NP-hardness reduction of Theorem 5.1, executed for real.
//!
//! Computing an organization's Shapley contribution in the fair-scheduling
//! game is NP-hard: the paper encodes SUBSETSUM into a scheduling instance
//! where the contribution `φ(a)` of a jobless one-machine organization `a`
//! satisfies `⌊(k+2)!·φ(a)/L⌋ = n_{<x}(S)` — a count of small-sum subsets.
//! Comparing the counts for `x` and `x+1` answers whether some subset of
//! `S` sums to exactly `x`.
//!
//! This example runs the whole pipeline — build the instance, schedule
//! every coalition with the fair rule, compute the exact integer Shapley
//! value, recover the count, decide SUBSETSUM — and cross-checks against
//! brute force. It also demonstrates a **reproduction finding**: the
//! proof's assumption that organization `b` always wins the scheduling
//! decision at `t = 2x+4` is not robust under the literal REF rule; when
//! it fails, `φ(a)` goes negative, which the extractor detects and
//! reports rather than returning a wrong count.
//!
//! `cargo run --release --example subset_sum_reduction`

use fairsched::core::reduction::{
    build_instance, count_small_subsets, count_via_contribution, subset_sum_brute,
};

fn main() {
    // Cases within the reduction's domain 1 <= x < sum(S).
    let cases: Vec<(Vec<u64>, u64)> = vec![
        (vec![1, 2], 1),
        (vec![1, 2], 2),
        (vec![2, 4], 3), // no subset sums to 3
        (vec![2, 4], 2),
        (vec![1, 2, 3], 3),
        (vec![1, 3, 5], 4), // the proof's priority assumption fails here
    ];

    println!("SUBSETSUM via fair-scheduling contributions (Theorem 5.1)\n");
    println!(
        "{:<12}{:>4}{:>14}{:>14}{:>12}{:>12}",
        "S", "x", "n<x (φ)", "n<x (comb.)", "reduction", "brute force"
    );

    let mut extracted = 0;
    let mut detected = 0;
    for (s, x) in cases {
        let comb_x = count_small_subsets(&s, x);
        let brute = subset_sum_brute(&s, x);
        let via_x = count_via_contribution(&build_instance(&s, x));
        let via_x1 = count_via_contribution(&build_instance(&s, x + 1));
        match (via_x, via_x1) {
            (Some(cx), Some(cx1)) => {
                assert_eq!(cx, comb_x, "extracted count must match combinatorics");
                assert_eq!(cx1, count_small_subsets(&s, x + 1));
                let answer = cx1 > cx;
                assert_eq!(answer, brute, "reduction answer must match brute force");
                println!(
                    "{:<12}{:>4}{:>14}{:>14}{:>12}{:>12}",
                    format!("{s:?}"),
                    x,
                    cx,
                    comb_x,
                    answer,
                    brute
                );
                extracted += 1;
            }
            _ => {
                println!(
                    "{:<12}{:>4}{:>14}{:>14}{:>12}{:>12}",
                    format!("{s:?}"),
                    x,
                    "φ(a) < 0",
                    comb_x,
                    "n/a",
                    brute
                );
                detected += 1;
            }
        }
    }

    println!(
        "\n{extracted} instances: the contribution-derived count matched the combinatorial"
    );
    println!("count exactly and the SUBSETSUM answer matched brute force ✓");
    println!(
        "{detected} instance(s): the proof's idealized 'b is prioritized at 2x+4' schedule"
    );
    println!(
        "did not arise under the literal REF rule — detected (φ(a) < 0) and reported,"
    );
    println!(
        "never silently wrong. See DESIGN.md §2 and EXPERIMENTS.md for the analysis."
    );
}
