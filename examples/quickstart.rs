//! Quickstart: build a two-organization consortium, schedule it fairly,
//! and read the fairness report.
//!
//! `cargo run --example quickstart`

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::{DirectContrScheduler, FairShareScheduler, RefScheduler};
use fairsched::core::Trace;
use fairsched::sim::simulate;

fn main() {
    // alpha brings 1 machine and a burst of work; beta brings 2 machines
    // and arrives later. A fair scheduler should remember that beta's
    // machines carried alpha's burst.
    let mut b = Trace::builder();
    let alpha = b.org("alpha", 1);
    let beta = b.org("beta", 2);
    b.jobs(alpha, 0, 4, 6); // six 4-unit jobs at t=0
    b.jobs(beta, 8, 3, 4); // four 3-unit jobs at t=8
    let trace = b.build().expect("valid trace");
    let horizon = 30;

    // The exact Shapley-fair schedule — the reference.
    let mut reference = RefScheduler::new(&trace);
    let fair = simulate(&trace, &mut reference, horizon);
    println!("reference (REF) utilities: {:?}\n", fair.psi);

    // Two practical schedulers compared against it.
    for (label, result) in [
        ("DirectContr", simulate(&trace, &mut DirectContrScheduler::new(7), horizon)),
        ("FairShare", simulate(&trace, &mut FairShareScheduler::new(), horizon)),
    ] {
        let report =
            FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, horizon);
        println!("--- {label} ---");
        println!("{report}");
    }
}
