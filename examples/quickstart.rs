//! Quickstart: build a two-organization consortium, schedule it fairly,
//! and read the fairness report — all through the `Simulation` session
//! API and the scheduler registry.
//!
//! `cargo run --example quickstart`

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::SchedulerSpec;
use fairsched::core::Trace;
use fairsched::sim::{SimError, Simulation};
use fairsched::workloads::WorkloadSpec;

fn main() -> Result<(), SimError> {
    // alpha brings 1 machine and a burst of work; beta brings 2 machines
    // and arrives later. A fair scheduler should remember that beta's
    // machines carried alpha's burst.
    let mut b = Trace::builder();
    let alpha = b.org("alpha", 1);
    let beta = b.org("beta", 2);
    b.jobs(alpha, 0, 4, 6); // six 4-unit jobs at t=0
    b.jobs(beta, 8, 3, 4); // four 3-unit jobs at t=8
    let trace = b.build().expect("valid trace");
    let horizon = 30;

    // The exact Shapley-fair schedule — the reference.
    let fair = Simulation::new(&trace).scheduler("ref")?.horizon(horizon).run()?;
    println!("reference (REF) utilities: {:?}\n", fair.psi);

    // Two practical schedulers compared against it; any registry spec
    // string works here (`fairsched --help` lists them all).
    let specs: [SchedulerSpec; 2] = ["directcontr".parse()?, "fairshare".parse()?];
    let results = Simulation::new(&trace).horizon(horizon).seed(7).run_matrix(&specs)?;
    for result in results {
        let report = FairnessReport::from_schedules(
            &trace,
            &result.schedule,
            &fair.schedule,
            horizon,
        );
        println!("--- {} ---", result.scheduler);
        println!("{report}");
    }

    // Metrics are registry specs too: ask for the fairness indices you
    // want by string and get a typed Report with JSON/CSV/table sinks.
    // `delay` compares against REF, which runs automatically.
    let report = Simulation::new(&trace)
        .scheduler("fairshare")?
        .horizon(horizon)
        .seed(7)
        .metrics(&["delay", "psi", "stretch"])?
        .run_report()?;
    println!("spec-addressed measurement ({}):", report.metric_specs().join(", "));
    print!("{}", report.render_table());
    println!();

    // Workloads are registry specs too, so a whole experiment matrix —
    // (workload × scheduler × metrics) — is pure data: no construction
    // or measurement code at all.
    let workloads: [WorkloadSpec; 2] = [
        "fpt:k=2".parse().map_err(SimError::Workload)?,
        "synth:horizon=800,orgs=3,preset=lpc,scale=0.05"
            .parse()
            .map_err(SimError::Workload)?,
    ];
    let schedulers: [SchedulerSpec; 2] = ["fairshare".parse()?, "roundrobin".parse()?];
    println!("pure-data experiment grid (Δψ/p_tot per cell):");
    let session = Simulation::session().horizon(800).seed(7).metrics(&["delay"])?;
    for cell in session.run_grid_reports(&workloads, &schedulers) {
        let delay = cell
            .report
            .map(|r| r.column("delay").expect("requested").aggregate.to_string())
            .unwrap_or_else(|e| e.to_string());
        println!(
            "  {:<48} × {:<12} -> {delay}",
            cell.workload.to_string(),
            cell.scheduler.to_string()
        );
    }
    Ok(())
}
