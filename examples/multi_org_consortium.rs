//! A realistic consortium scenario — the paper's motivating setting.
//!
//! Five organizations of very different sizes (a Zipf machine split, as in
//! the paper's experiments) pool their clusters. Workloads are bursty and
//! heavy-tailed (the LPC-EGEE-like synthetic preset). We replay the same
//! trace under every scheduler and rank them by the paper's unfairness
//! metric Δψ/p_tot, and also show the per-organization breakdown for fair
//! share vs the Shapley-based heuristic — making visible *who* static
//! shares shortchange.
//!
//! `cargo run --release --example multi_org_consortium`

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::SchedulerSpec;
use fairsched::sim::{SimError, Simulation};
use fairsched::workloads::{WorkloadContext, WorkloadRegistry};

fn main() -> Result<(), SimError> {
    let horizon = 20_000;
    let seed = 2024;
    // The whole scenario is one workload registry spec: LPC-EGEE shape at
    // half scale, five organizations, the paper's Zipf machine split.
    let trace = WorkloadRegistry::shared().build_str(
        "synth:horizon=20000,orgs=5,preset=lpc,scale=0.5",
        &WorkloadContext { seed },
    )?;

    println!(
        "consortium: 5 organizations, {} machines, {} jobs",
        trace.cluster_info().n_machines(),
        trace.n_jobs()
    );
    for (i, o) in trace.orgs().iter().enumerate() {
        let work: u64 =
            trace.jobs_of(fairsched::core::OrgId(i as u32)).map(|j| j.proc_time).sum();
        println!(
            "  {:<6} {:>3} machines, {:>8} units of work submitted",
            o.name, o.n_machines, work
        );
    }

    // One session carries the shared settings; every scheduler is named
    // by its registry spec string.
    let session = Simulation::new(&trace).horizon(horizon).seed(seed);
    let fair = session.run_matrix(&["ref".parse()?])?.remove(0);

    println!("\nΔψ/p_tot per scheduler (lower = more fair):");
    let specs: Vec<SchedulerSpec> = [
        "rand:perms=15",
        "directcontr",
        "fairshare",
        "utfairshare",
        "currfairshare",
        "roundrobin",
    ]
    .iter()
    .map(|s| s.parse())
    .collect::<Result<_, _>>()?;
    let mut results = Vec::new();
    for r in session.run_matrix(&specs)? {
        let report =
            FairnessReport::from_schedules(&trace, &r.schedule, &fair.schedule, horizon);
        println!(
            "  {:<16} {:>10.3}   (utilization {:>5.1}%)",
            r.scheduler,
            report.unfairness(),
            100.0 * r.utilization
        );
        results.push((r.scheduler.clone(), r, report));
    }

    // Per-organization breakdown for the two philosophies.
    for want in ["FairShare", "DirectContr"] {
        if let Some((name, _, report)) = results.iter().find(|(n, _, _)| n == want) {
            println!("\nper-organization deviation from the fair utilities — {name}:");
            println!("{report}");
        }
    }
    // Responsiveness: Definition 3.1 demands fairness at *every* moment.
    // The timeline shows how unfairness accumulates under each philosophy.
    println!("\nunfairness over time (Δψ(t)/p_tot(t), sampled at 8 points):");
    print!("{:<16}", "t =");
    for i in 1..=8u64 {
        print!("{:>9}", horizon * i / 8);
    }
    println!();
    for (name, r, _) in &results {
        if name == "RoundRobin" || name == "FairShare" || name == "DirectContr" {
            let series = fairsched::core::fairness::fairness_timeline(
                &trace,
                &r.schedule,
                &fair.schedule,
                horizon,
                8,
            );
            print!("{name:<16}");
            for p in &series {
                print!("{:>9.2}", p.unfairness());
            }
            println!();
        }
    }

    println!(
        "\nstatic shares ignore *when* an organization contributed; the Shapley-based"
    );
    println!("heuristic tracks contributions over time, which is why its deviations are smaller.");
    Ok(())
}
