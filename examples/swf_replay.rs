//! Replaying a real-format workload log (Standard Workload Format).
//!
//! The paper's evaluation replays Parallel Workload Archive logs; this
//! example shows the full pipeline on an embedded SWF fragment — parse,
//! summarize, expand parallel jobs to sequential copies, assign users to
//! organizations, schedule, and compare fairness. Point the same code at a
//! downloaded archive log (e.g. `LPC-EGEE-2004-1.2-cln.swf`) to reproduce
//! the paper's setting exactly; the `fairsched` CLI wraps this with
//! `--swf`.
//!
//! `cargo run --example swf_replay`

use fairsched::core::fairness::FairnessReport;
use fairsched::sim::{SimError, Simulation};
use fairsched::workloads::{swf, WorkloadContext, WorkloadRegistry, WorkloadSpec};

/// A hand-made SWF fragment: 18-field records, `;` headers, a cancelled
/// job (runtime −1), parallel jobs (field 5 > 1), four users.
const SAMPLE_LOG: &str = "\
; Version: 2.2
; Computer: example cluster
; Note: job 5 was cancelled and must be skipped
1   0   2  40  2 -1 -1  2 -1 -1 1 101 1 -1 1 -1 -1 -1
2   5   1  25  1 -1 -1  1 -1 -1 1 102 1 -1 1 -1 -1 -1
3  10   4  60  3 -1 -1  3 -1 -1 1 103 1 -1 1 -1 -1 -1
4  12   0  15  1 -1 -1  1 -1 -1 1 104 1 -1 1 -1 -1 -1
5  15   0  -1  2 -1 -1  2 -1 -1 0 101 1 -1 1 -1 -1 -1
6  20   3  35  2 -1 -1  2 -1 -1 1 102 1 -1 1 -1 -1 -1
7  30   2  50  1 -1 -1  1 -1 -1 1 101 1 -1 1 -1 -1 -1
8  45   1  20  4 -1 -1  4 -1 -1 1 103 1 -1 1 -1 -1 -1
";

fn main() -> Result<(), SimError> {
    let records = swf::parse(SAMPLE_LOG).expect("valid SWF");
    let stats = swf::stats(&records);
    println!(
        "log: {} jobs, {} users, span {}s, runtimes p10/p50/p90 = {:?}, max width {}",
        stats.jobs,
        stats.users,
        stats.span,
        stats.runtime_percentiles,
        stats.max_processors
    );

    // The paper's preprocessing: q-processor jobs become q sequential copies.
    let jobs = swf::to_user_jobs(&records, 0, 1_000);
    println!(
        "expanded to {} sequential jobs ({} records, widths summed)",
        jobs.len(),
        stats.jobs
    );

    // Replay through the workload registry: on disk, any archive log is
    // addressable as an `swf:` spec (two organizations, four machines
    // split by Zipf, users dealt uniformly — all parameters of the spec).
    let log_path = std::env::temp_dir().join("fairsched_swf_replay_example.swf");
    std::fs::write(&log_path, SAMPLE_LOG).expect("writable temp dir");
    let spec = WorkloadSpec::bare("swf")
        .with("path", log_path.display())
        .with("machines", 4)
        .with("orgs", 2)
        .with("end", 1_000);
    println!("\nworkload spec: {spec}");
    let trace = WorkloadRegistry::shared().build(&spec, &WorkloadContext { seed: 7 })?;
    let horizon = 300;

    let session = Simulation::new(&trace).horizon(horizon);
    let fair = session.run_matrix(&["ref".parse()?])?.remove(0);
    let result =
        Simulation::new(&trace).scheduler("fairshare")?.horizon(horizon).run()?;

    println!(
        "\nFairShare on this log: {} started, utilization {:.1}%",
        result.started_jobs,
        100.0 * result.utilization
    );
    let report =
        FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, horizon);
    println!("{report}");

    // Round-trip: write and re-parse.
    let rewritten = swf::write(&records);
    assert_eq!(swf::parse(&rewritten).unwrap(), records);
    println!("SWF write→parse round-trip holds ✓");
    Ok(())
}
