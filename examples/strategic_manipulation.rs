//! Strategy resistance in action (Section 4).
//!
//! An organization can present the same computation as many small jobs or
//! a few big ones. Under flow time, splitting pays (smaller jobs finish
//! earlier, and flow time rewards per-job completion); under `ψ_sp` the
//! presentation is irrelevant — which is exactly why Theorem 4.1 singles
//! `ψ_sp` out.
//!
//! This example schedules the *same* workload three ways (merged, split,
//! delayed) and evaluates both utilities.
//!
//! `cargo run --example strategic_manipulation`

use fairsched::core::utility::{FlowTime, SpUtility, Utility};
use fairsched::core::{OrgId, Trace};
use fairsched::sim::Simulation;

fn run(label: &str, trace: &Trace, horizon: u64) -> (i128, f64) {
    let r = Simulation::new(trace)
        .scheduler("fifo")
        .and_then(|s| s.horizon(horizon).run())
        .expect("fifo run");
    let sp = SpUtility.value(trace, &r.schedule, OrgId(0), horizon) as i128;
    let flow = FlowTime.value(trace, &r.schedule, OrgId(0), horizon);
    println!("{label:<34} ψ_sp = {sp:>5}   flow time = {flow:>5}");
    (sp, flow)
}

fn main() {
    let horizon = 100;

    // Honest: one 12-unit job at t=0 (single machine, no competition, so
    // the schedule is the same work laid out identically in every variant).
    let mut b = Trace::builder();
    let org = b.org("strategist", 1);
    b.job(org, 0, 12);
    let merged = b.build().unwrap();

    // Manipulation 1: split into four 3-unit pieces.
    let mut b = Trace::builder();
    let org = b.org("strategist", 1);
    b.jobs(org, 0, 3, 4);
    let split = b.build().unwrap();

    // Manipulation 2: split into twelve unit pieces.
    let mut b = Trace::builder();
    let org = b.org("strategist", 1);
    b.jobs(org, 0, 1, 12);
    let atomized = b.build().unwrap();

    // Manipulation 3: delay the release by 5.
    let mut b = Trace::builder();
    let org = b.org("strategist", 1);
    b.job(org, 5, 12);
    let delayed = b.build().unwrap();

    println!("the same 12 units of work, presented four ways:\n");
    let (sp_m, flow_m) = run("one 12-unit job", &merged, horizon);
    let (sp_s, flow_s) = run("four 3-unit jobs", &split, horizon);
    let (sp_a, flow_a) = run("twelve 1-unit jobs", &atomized, horizon);
    let (sp_d, _) = run("one 12-unit job, delayed by 5", &delayed, horizon);

    println!();
    assert_eq!(sp_m, sp_s);
    assert_eq!(sp_m, sp_a);
    println!("ψ_sp is identical under splitting/merging (strategy resistance) ✓");

    assert!(flow_s > flow_m && flow_a > flow_s);
    println!(
        "flow time accounts the same work differently depending on packaging \
         ({flow_m} → {flow_s} → {flow_a}): an organization can inflate its measured \
         burden 6.5× by atomizing jobs, so any fair division based on flow time is \
         gameable ✗"
    );

    assert!(sp_d < sp_m);
    println!("delaying a job can only lose ψ_sp ({sp_m} → {sp_d}): no timing games ✓");

    // And the pathology the task-count axiom rules out: an empty schedule
    // has flow time 0 — the "optimal" value of a minimization objective.
    let horizonless = Simulation::new(&merged)
        .scheduler("fifo")
        .and_then(|s| s.horizon(0).run())
        .expect("fifo run");
    assert_eq!(FlowTime.value(&merged, &horizonless.schedule, OrgId(0), 0), 0.0);
    println!("scheduling nothing achieves 'optimal' flow time 0 — ψ_sp instead strictly rewards every completed unit ✓");
}
