//! The durable runner: executes a grid spec cell by cell, committing
//! each result atomically and resuming from whatever survived a crash.
//!
//! Durability invariants (the kill-point sweep in the facade tests
//! crashes at every [`SITES`](crate::failpoint::SITES) entry to prove
//! them):
//!
//! 1. **Atomic commits.** Every file the runner produces — the spec
//!    snapshot, each cell, the three final report sinks — is written to a
//!    `*.tmp` scratch file and `rename`d into place, so a crash leaves
//!    either the old state or the new state, never a torn file. The
//!    journal is append-only and its reader tolerates a torn final line.
//! 2. **Cells are the source of truth.** Resume decodes the committed
//!    `cells/*.json` files (checking each one's embedded canonical key
//!    against the expected key) and recomputes exactly the cells that are
//!    missing, torn, or mismatched. The journal is advisory — corrupting
//!    or deleting it loses nothing.
//! 3. **One decode path.** The final report is always aggregated from
//!    *encoded* cells — freshly computed cells are round-tripped through
//!    the same [`encode_cell`]/[`decode_cell`] pair that resume uses — so
//!    an interrupted-and-resumed run emits byte-identical
//!    `report.{json,csv,txt}` to an uninterrupted one by construction.
//!
//! Transient failures (real io errors and injected [`Fault::Io`]) are
//! retried per the spec's [`RetryPolicy`] with bounded exponential
//! backoff; cells whose simulation fails become typed `failed` entries in
//! the final report instead of aborting the sweep.

use crate::cell::{cell_keys, decode_cell, encode_cell, CellKey, StoredCell};
use crate::failpoint::{Fault, FaultPlan};
use crate::journal::{self, Journal, JournalEntry};
use crate::spec::{ExperimentSpec, SpecLoadError};
use fairsched_sim::{Report, SimError, Simulation};
use fairsched_workloads::spec::{WorkloadContext, WorkloadRegistry};
use serde::Value;
use std::path::{Path, PathBuf};

/// The `schema` tag of the final aggregated `report.json`.
pub const REPORT_SCHEMA: &str = "fairsched-experiment-report/v1";

/// How a run executes.
#[derive(Debug, Default)]
pub struct RunnerOptions {
    /// Continue a previous run in the same directory, skipping every
    /// intact committed cell. Without this, a directory that already
    /// holds a run is an error (never silently clobber results).
    pub resume: bool,
    /// The deterministic fault schedule (empty in production).
    pub faults: FaultPlan,
}

/// What a completed run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cells in the grid.
    pub total: u64,
    /// Cells computed by this invocation.
    pub computed: u64,
    /// Cells skipped because an intact committed result existed.
    pub skipped: u64,
    /// Cells whose outcome is a typed failure (stored or fresh).
    pub failed: u64,
    /// Transient-failure retries performed across all writes.
    pub retried: u64,
}

/// A point-in-time view of a run directory (`experiment status`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusSummary {
    /// Total cells in the grid.
    pub total: u64,
    /// Cells with an intact committed successful report.
    pub done: u64,
    /// Cells with an intact committed typed failure.
    pub failed: u64,
    /// Cells not yet committed (missing, torn, or key-mismatched).
    pub pending: u64,
    /// Intact journal entries.
    pub journal_entries: u64,
    /// Whether the journal ends in a torn line (crash signature).
    pub journal_truncated: bool,
}

/// The three aggregated report sinks, as file contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinalReport {
    /// `report.json` — machine-readable, exact values.
    pub json: String,
    /// `report.csv` — one block per cell, exact values.
    pub csv: String,
    /// `report.txt` — human-oriented aligned tables.
    pub table: String,
}

/// Why a run stopped (as opposed to degrading per cell).
#[derive(Clone, Debug)]
pub enum RunnerError {
    /// An armed crash fail point fired (simulated `kill -9`).
    Crash {
        /// The site that fired.
        site: String,
    },
    /// A filesystem operation failed even after retries, on a file the
    /// run cannot proceed without (spec snapshot, journal, final report).
    Io(SimError),
    /// The spec document was rejected.
    Spec(SpecLoadError),
    /// The directory already holds a run and `--resume` was not given.
    DirExists {
        /// The offending directory.
        dir: String,
    },
    /// Resuming against a directory whose spec snapshot differs from the
    /// requested spec — the cells there answer a different experiment.
    SpecMismatch {
        /// The offending directory.
        dir: String,
    },
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Crash { site } => {
                write!(f, "simulated crash at fail point {site}")
            }
            RunnerError::Io(e) => write!(f, "{e}"),
            RunnerError::Spec(e) => write!(f, "{e}"),
            RunnerError::DirExists { dir } => write!(
                f,
                "run directory {dir} already holds an experiment \
                 (pass --resume to continue it)"
            ),
            RunnerError::SpecMismatch { dir } => write!(
                f,
                "run directory {dir} was created by a different spec \
                 (its cells answer a different experiment)"
            ),
        }
    }
}

impl std::error::Error for RunnerError {}

/// A write-path outcome: crash aborts the run, io feeds the retry loop.
enum WriteError {
    Crash { site: String },
    Io(SimError),
}

impl From<WriteError> for RunnerError {
    fn from(e: WriteError) -> Self {
        match e {
            WriteError::Crash { site } => RunnerError::Crash { site },
            WriteError::Io(e) => RunnerError::Io(e),
        }
    }
}

/// The durable experiment runner for one spec × one run directory.
#[derive(Debug)]
pub struct Runner {
    spec: ExperimentSpec,
    dir: PathBuf,
    options: RunnerOptions,
    retried: u64,
}

impl Runner {
    /// Binds `spec` to run directory `dir` under `options`.
    pub fn new(
        spec: ExperimentSpec,
        dir: impl Into<PathBuf>,
        options: RunnerOptions,
    ) -> Self {
        Runner { spec, dir: dir.into(), options, retried: 0 }
    }

    /// The path of a cell's committed file.
    fn cell_path(&self, key: &CellKey) -> PathBuf {
        self.dir.join("cells").join(key.file_name())
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    fn spec_path(&self) -> PathBuf {
        self.dir.join("spec.json")
    }

    /// Registers one pass through a fail point.
    fn check_site(&mut self, site: &str) -> Result<(), WriteError> {
        match self.options.faults.check(site) {
            None => Ok(()),
            Some(Fault::Crash { site }) => Err(WriteError::Crash { site }),
            Some(Fault::Io { site }) => Err(WriteError::Io(SimError::Io {
                op: "inject".into(),
                path: site,
                message: "injected io fault".into(),
            })),
        }
    }

    /// One write-then-rename commit ([`fairsched_core::journal`]'s two
    /// halves), passing through the `{prefix}.tmp` and `{prefix}.commit`
    /// fail points (the two distinct crash windows).
    fn try_atomic_write(
        &mut self,
        prefix: &str,
        path: &Path,
        contents: &str,
    ) -> Result<(), WriteError> {
        self.check_site(&format!("{prefix}.tmp"))?;
        let tmp = fairsched_core::journal::write_scratch(path, contents)
            .map_err(|e| WriteError::Io(SimError::from(e)))?;
        self.check_site(&format!("{prefix}.commit"))?;
        fairsched_core::journal::commit_scratch(&tmp, path)
            .map_err(|e| WriteError::Io(SimError::from(e)))
    }

    /// [`try_atomic_write`](Self::try_atomic_write) under the spec's
    /// retry policy: transient io failures are retried with bounded
    /// backoff; crashes are never retried (a dead process retries
    /// nothing).
    fn atomic_write(
        &mut self,
        prefix: &str,
        path: &Path,
        contents: &str,
    ) -> Result<(), WriteError> {
        let retry = self.spec.retry;
        let mut attempt = 1u32;
        loop {
            match self.try_atomic_write(prefix, path, contents) {
                Ok(()) => return Ok(()),
                Err(WriteError::Crash { site }) => {
                    return Err(WriteError::Crash { site })
                }
                Err(WriteError::Io(e)) => {
                    if attempt >= retry.max_attempts {
                        return Err(WriteError::Io(e));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(
                        retry.backoff_for(attempt),
                    ));
                    attempt += 1;
                    self.retried += 1;
                }
            }
        }
    }

    /// One journal append under the `journal.append` fail point and the
    /// retry policy.
    fn journal_append(&mut self, entry: &JournalEntry) -> Result<(), WriteError> {
        let retry = self.spec.retry;
        let path = self.journal_path();
        let mut attempt = 1u32;
        loop {
            let fired = self.check_site("journal.append");
            let result = match fired {
                Err(e) => Err(e),
                Ok(()) => journal::append(&path, entry).map_err(WriteError::Io),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(WriteError::Crash { site }) => {
                    return Err(WriteError::Crash { site })
                }
                Err(WriteError::Io(e)) => {
                    if attempt >= retry.max_attempts {
                        return Err(WriteError::Io(e));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(
                        retry.backoff_for(attempt),
                    ));
                    attempt += 1;
                    self.retried += 1;
                }
            }
        }
    }

    /// Reads and decodes a committed cell, validating its embedded key;
    /// anything missing, torn, or mismatched is `None` (recompute).
    fn read_stored(&self, key: &CellKey) -> Option<StoredCell> {
        let text = std::fs::read_to_string(self.cell_path(key)).ok()?;
        let value = serde_json::parse_value(&text).ok()?;
        let stored = decode_cell(&value)?;
        (stored.key == key.canonical()).then_some(stored)
    }

    /// Ensures the run directory exists and holds this spec's snapshot.
    fn prepare_dir(&mut self) -> Result<(), RunnerError> {
        let spec_path = self.spec_path();
        let have_snapshot = spec_path.exists();
        if have_snapshot && !self.options.resume {
            return Err(RunnerError::DirExists { dir: self.dir.display().to_string() });
        }
        std::fs::create_dir_all(self.dir.join("cells"))
            .map_err(|e| RunnerError::Io(SimError::io("create-dir", &self.dir, &e)))?;
        let canonical = self.spec.to_json_value();
        if have_snapshot {
            let text = std::fs::read_to_string(&spec_path)
                .map_err(|e| RunnerError::Io(SimError::io("read", &spec_path, &e)))?;
            let stored = serde_json::parse_value(&text)
                .ok()
                .and_then(|v| ExperimentSpec::from_json_value(&v).ok().map(|_| v));
            match stored {
                Some(v) if v == canonical => Ok(()),
                _ => {
                    Err(RunnerError::SpecMismatch { dir: self.dir.display().to_string() })
                }
            }
        } else {
            let mut text = canonical.to_json_pretty();
            text.push('\n');
            self.atomic_write("spec", &spec_path, &text).map_err(RunnerError::from)
        }
    }

    /// Runs the experiment to completion (or to the first crash /
    /// non-degradable io failure), then writes the three aggregated
    /// report sinks.
    pub fn run(&mut self) -> Result<RunSummary, RunnerError> {
        self.prepare_dir()?;
        let keys = cell_keys(&self.spec);
        let mut summary =
            RunSummary { total: keys.len() as u64, ..RunSummary::default() };
        let mut outcomes: Vec<(CellKey, StoredCell)> = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(stored) = self.read_stored(&key) {
                summary.skipped += 1;
                if stored.status == "failed" {
                    summary.failed += 1;
                }
                outcomes.push((key, stored));
                continue;
            }
            let canonical = key.canonical();
            self.journal_append(&JournalEntry {
                cell: canonical.clone(),
                state: "running".into(),
                attempt: 1,
            })?;
            let computed = compute_cell(&key);
            let encoded = encode_cell(&key, &computed);
            let mut text = encoded.to_json_pretty();
            text.push('\n');
            // The single decode path: even a freshly computed cell is
            // consumed through the same decoder resume uses, so the
            // aggregation below cannot depend on how the cell was obtained.
            let Some(mut stored) = decode_cell(&encoded) else {
                // encode/decode are inverses for every SimError and every
                // Report the simulator can produce; reaching this means a
                // bug, which must surface as a typed failure, not a panic.
                return Err(RunnerError::Io(SimError::Io {
                    op: "decode".into(),
                    path: self.cell_path(&key).display().to_string(),
                    message: "freshly encoded cell failed to decode".into(),
                }));
            };
            let cell_path = self.cell_path(&key);
            match self.atomic_write("cell", &cell_path, &text) {
                Ok(()) => {}
                Err(WriteError::Crash { site }) => {
                    return Err(RunnerError::Crash { site })
                }
                Err(WriteError::Io(e)) => {
                    // Degrade: the sweep continues, this cell's outcome is
                    // a typed io failure (and, being uncommitted, resume
                    // will recompute it).
                    stored = match decode_cell(&encode_cell(&key, &Err(e))) {
                        Some(s) => s,
                        None => stored,
                    };
                }
            }
            summary.computed += 1;
            let state = if stored.status == "failed" {
                summary.failed += 1;
                "failed"
            } else {
                "done"
            };
            self.journal_append(&JournalEntry {
                cell: canonical,
                state: state.into(),
                attempt: 1,
            })?;
            outcomes.push((key, stored));
        }
        summary.retried = self.retried;
        let report = aggregate(&self.spec, &outcomes);
        for (name, contents) in [
            ("report.json", &report.json),
            ("report.csv", &report.csv),
            ("report.txt", &report.table),
        ] {
            let path = self.dir.join(name);
            self.atomic_write("report", &path, contents)?;
        }
        Ok(summary)
    }

    /// Inspects a run directory without executing anything.
    pub fn status(spec: &ExperimentSpec, dir: &Path) -> Result<StatusSummary, SimError> {
        let runner = Runner::new(spec.clone(), dir, RunnerOptions::default());
        let mut status = StatusSummary::default();
        for key in cell_keys(spec) {
            status.total += 1;
            match runner.read_stored(&key) {
                Some(stored) if stored.status == "failed" => status.failed += 1,
                Some(_) => status.done += 1,
                None => status.pending += 1,
            }
        }
        let Journal { entries, truncated } =
            journal::read_journal(&runner.journal_path())?;
        status.journal_entries = entries.len() as u64;
        status.journal_truncated = truncated;
        Ok(status)
    }
}

/// Computes one cell, purely: no filesystem side effects, so a crash can
/// never leave a half-computed cell behind. Coupled seed plans (equal
/// strides) go through the exact [`Simulation::run_grid_reports`] code
/// path — session seed drives both workload build and scheduler — so an
/// experiment with default strides reproduces a grid sweep bit for bit.
pub fn compute_cell(key: &CellKey) -> Result<Report, SimError> {
    let mut session =
        Simulation::session().metric_specs(key.metrics.clone()).validate(key.validate);
    if let Some(h) = key.horizon {
        session = session.horizon(h);
    }
    if key.workload_seed == key.scheduler_seed {
        return session
            .seed(key.workload_seed)
            .workload_spec(key.workload.clone())
            .scheduler_spec(key.scheduler.clone())
            .run_report();
    }
    // Decoupled axes: build the trace at the workload seed, run the
    // session at the scheduler seed, and keep workload provenance.
    let trace = WorkloadRegistry::shared()
        .build(&key.workload, &WorkloadContext { seed: key.workload_seed })
        .map_err(SimError::Workload)?;
    let mut session = Simulation::new(&trace)
        .metric_specs(key.metrics.clone())
        .validate(key.validate)
        .seed(key.scheduler_seed)
        .scheduler_spec(key.scheduler.clone());
    if let Some(h) = key.horizon {
        session = session.horizon(h);
    }
    let mut report = session.run_report()?;
    report.workload_spec = Some(key.workload.clone());
    Ok(report)
}

/// Builds the three final report sinks from decoded cells. Pure and
/// deterministic in its inputs — this is the *only* producer of the final
/// artifacts, which is what makes clean and resumed runs byte-identical.
pub fn aggregate(spec: &ExperimentSpec, cells: &[(CellKey, StoredCell)]) -> FinalReport {
    let done = cells.iter().filter(|(_, s)| s.status == "done").count();
    let failed = cells.len() - done;

    // report.json: schema + counts + every cell in grid order.
    let mut cell_values = Vec::with_capacity(cells.len());
    for (key, stored) in cells {
        let mut fields = vec![
            ("workload".into(), Value::String(key.workload.to_string())),
            ("scheduler".into(), Value::String(key.scheduler.to_string())),
            ("instance".into(), Value::Number(key.instance.to_string())),
            ("workload_seed".into(), Value::Number(key.workload_seed.to_string())),
            ("scheduler_seed".into(), Value::Number(key.scheduler_seed.to_string())),
            ("status".into(), Value::String(stored.status.clone())),
        ];
        match (&stored.report, &stored.error) {
            (Some(report), _) => fields.push(("report".into(), report.to_json_value())),
            (None, Some(error)) => {
                fields.push(("error".into(), Value::String(error.clone())))
            }
            (None, None) => {}
        }
        cell_values.push(Value::Object(fields));
    }
    let mut json = Value::Object(vec![
        ("schema".into(), Value::String(REPORT_SCHEMA.into())),
        ("name".into(), Value::String(spec.name.clone())),
        ("total".into(), Value::Number(cells.len().to_string())),
        ("done".into(), Value::Number(done.to_string())),
        ("failed".into(), Value::Number(failed.to_string())),
        ("cells".into(), Value::Array(cell_values)),
    ])
    .to_json_pretty();
    json.push('\n');

    // report.csv / report.txt: one block per cell, using the existing
    // per-report sinks verbatim.
    let mut csv = String::new();
    let mut table = String::new();
    for (i, (key, stored)) in cells.iter().enumerate() {
        let head = format!(
            "cell {i}: workload={} scheduler={} instance={} status={}",
            key.workload, key.scheduler, key.instance, stored.status
        );
        if i > 0 {
            csv.push('\n');
            table.push('\n');
        }
        csv.push_str(&format!("# {head}\n"));
        table.push_str(&format!("== {head} ==\n"));
        match (&stored.report, &stored.error) {
            (Some(report), _) => {
                csv.push_str(&report.to_csv());
                table.push_str(&report.render_table());
            }
            (None, Some(error)) => {
                csv.push_str(&format!("error,{}\n", csv_field(error)));
                table.push_str(&format!("error: {error}\n"));
            }
            (None, None) => {}
        }
    }
    FinalReport { json, csv, table }
}

/// Minimal CSV quoting, matching the report sink's convention.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FaultMode;
    use crate::spec::SeedPlan;

    fn tiny_spec(name: &str) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            name,
            vec!["fpt:horizon=200,k=2".parse().unwrap()],
            vec!["fifo".parse().unwrap(), "roundrobin".parse().unwrap()],
        );
        spec.metrics = vec!["completed".parse().unwrap(), "psi".parse().unwrap()];
        spec.horizon = Some(200);
        spec.seeds =
            SeedPlan { base: 3, count: 1, workload_stride: 1, scheduler_stride: 1 };
        spec
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairsched-runner-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn read(dir: &Path, name: &str) -> String {
        std::fs::read_to_string(dir.join(name)).unwrap()
    }

    #[test]
    fn clean_run_commits_everything_and_resume_recomputes_nothing() {
        let spec = tiny_spec("clean");
        let dir = fresh_dir("clean");
        let summary =
            Runner::new(spec.clone(), &dir, RunnerOptions::default()).run().unwrap();
        assert_eq!((summary.total, summary.computed, summary.skipped), (2, 2, 0));
        assert_eq!(summary.failed, 0);
        let status = Runner::status(&spec, &dir).unwrap();
        assert_eq!((status.done, status.pending, status.failed), (2, 0, 0));
        assert!(!status.journal_truncated);
        assert_eq!(status.journal_entries, 4); // running + done, per cell

        // Re-running without --resume refuses; with it, zero recompute
        // and byte-identical artifacts.
        let before = (
            read(&dir, "report.json"),
            read(&dir, "report.csv"),
            read(&dir, "report.txt"),
        );
        let again = Runner::new(spec.clone(), &dir, RunnerOptions::default()).run();
        assert!(matches!(again, Err(RunnerError::DirExists { .. })));
        let resumed = Runner::new(
            spec,
            &dir,
            RunnerOptions { resume: true, ..RunnerOptions::default() },
        )
        .run()
        .unwrap();
        assert_eq!((resumed.computed, resumed.skipped), (0, 2));
        let after = (
            read(&dir, "report.json"),
            read(&dir, "report.csv"),
            read(&dir, "report.txt"),
        );
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_decodes_with_committed_schema() {
        // The decode test schema_registry.toml points at for
        // "fairsched-experiment-report/v1": a fresh run's report.json
        // must parse and carry the committed schema tag plus the
        // structural fields downstream consumers key on, so a silent
        // format bump breaks here before it breaks an archive reader.
        let spec = tiny_spec("schema");
        let dir = fresh_dir("schema");
        Runner::new(spec, &dir, RunnerOptions::default()).run().unwrap();
        let doc = serde_json::parse_value(&read(&dir, "report.json")).unwrap();
        assert_eq!(doc.get("schema"), Some(&Value::String(REPORT_SCHEMA.into())));
        assert_eq!(doc.get("total"), Some(&Value::Number("2".into())));
        assert_eq!(doc.get("done"), Some(&Value::Number("2".into())));
        assert_eq!(doc.get("failed"), Some(&Value::Number("0".into())));
        let Some(Value::Array(cells)) = doc.get("cells") else {
            panic!("report.json has no cells array: {doc:?}");
        };
        assert_eq!(cells.len(), 2);
        for cell in cells {
            for field in ["workload", "scheduler", "instance", "status", "report"] {
                assert!(cell.get(field).is_some(), "cell missing {field}");
            }
            assert_eq!(cell.get("status"), Some(&Value::String("done".into())));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_faults_are_retried_within_policy() {
        let spec = tiny_spec("retry");
        let dir = fresh_dir("retry");
        let faults = FaultPlan::none().arm("cell.tmp", 1, FaultMode::Io).arm(
            "journal.append",
            2,
            FaultMode::Io,
        );
        let summary =
            Runner::new(spec.clone(), &dir, RunnerOptions { resume: false, faults })
                .run()
                .unwrap();
        assert_eq!(summary.computed, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.retried, 2);
        assert_eq!(Runner::status(&spec, &dir).unwrap().done, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_cell_write_degrades_to_failed_entry() {
        let mut spec = tiny_spec("degrade");
        spec.retry.max_attempts = 1;
        let dir = fresh_dir("degrade");
        // Arm the first cell's scratch write only.
        let faults = FaultPlan::none().arm("cell.tmp", 1, FaultMode::Io);
        let summary =
            Runner::new(spec.clone(), &dir, RunnerOptions { resume: false, faults })
                .run()
                .unwrap();
        assert_eq!((summary.computed, summary.failed), (2, 1));
        assert!(read(&dir, "report.json").contains("injected io fault"));
        // The degraded cell was never committed: resume recomputes it and
        // heals the report.
        let resumed = Runner::new(
            spec.clone(),
            &dir,
            RunnerOptions { resume: true, ..RunnerOptions::default() },
        )
        .run()
        .unwrap();
        assert_eq!((resumed.computed, resumed.skipped, resumed.failed), (1, 1, 0));
        assert!(!read(&dir, "report.json").contains("injected io fault"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_scheduler_is_a_typed_failed_cell_not_an_abort() {
        let mut spec = tiny_spec("badcell");
        spec.schedulers.push("no-such-policy".parse().unwrap());
        let dir = fresh_dir("badcell");
        let summary =
            Runner::new(spec.clone(), &dir, RunnerOptions::default()).run().unwrap();
        assert_eq!((summary.total, summary.failed), (3, 1));
        let status = Runner::status(&spec, &dir).unwrap();
        assert_eq!((status.done, status.failed, status.pending), (2, 1, 0));
        assert!(read(&dir, "report.csv").contains("status=failed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_mismatch_on_resume_is_refused() {
        let spec = tiny_spec("mismatch");
        let dir = fresh_dir("mismatch");
        Runner::new(spec.clone(), &dir, RunnerOptions::default()).run().unwrap();
        let mut other = spec;
        other.seeds.base = 99;
        let err = Runner::new(
            other,
            &dir,
            RunnerOptions { resume: true, ..RunnerOptions::default() },
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, RunnerError::SpecMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_stops_the_run_with_the_site() {
        let spec = tiny_spec("crash");
        let dir = fresh_dir("crash");
        let faults = FaultPlan::none().arm("cell.commit", 1, FaultMode::Crash);
        let err = Runner::new(spec, &dir, RunnerOptions { resume: false, faults })
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, RunnerError::Crash { site } if site == "cell.commit"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
