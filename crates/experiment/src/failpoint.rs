//! Deterministic fault injection for the durable runner.
//!
//! Every filesystem side effect in the [`runner`](crate::runner) passes
//! through a named *fail point* (the [`SITES`] list). A [`FaultPlan`]
//! arms sites by 1-based hit index: `cell.commit@2` fires the second
//! time the runner reaches `cell.commit`. Two modes:
//!
//! * `crash` (the default) — the runner aborts instantly with
//!   [`Fault::Crash`] and performs no further writes, leaving the
//!   filesystem exactly as a `kill -9` at that instruction would. The
//!   CLI maps this to exit status 137 (the SIGKILL status), so CI can
//!   drive simulated and real kills through one code path.
//! * `io` — the hook reports a synthetic transient failure
//!   ([`Fault::Io`]), exercising the bounded-backoff retry path.
//!
//! Plans are plain data — no globals, no threads, `std` only. They parse
//! from `site@N[:crash|io]` atoms joined by `;`, the grammar of the
//! `FAIRSCHED_FAILPOINTS` environment variable the CLI reads. Hit
//! counters live in the plan instance and the runner executes cells
//! serially, so a given plan replays the exact same fault schedule on
//! every run — which is what makes the kill-point sweep test
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Every fail point the runner passes through. The kill-point sweep test
/// enumerates this list, so a new site added here is automatically swept.
///
/// `*.tmp` sites fire before the scratch file is written, `*.commit`
/// sites between the scratch write and the atomic rename — the two
/// distinct crash windows of a write-then-rename commit.
pub const SITES: [&str; 7] = [
    "spec.tmp",
    "spec.commit",
    "journal.append",
    "cell.tmp",
    "cell.commit",
    "report.tmp",
    "report.commit",
];

/// What an armed fail point does when it fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Abort the run with no further writes (a simulated `kill -9`).
    Crash,
    /// Report a synthetic transient io failure (retry-path exercise).
    Io,
}

/// One armed site: fire `mode` on the `hit`-th (1-based) pass through
/// `site`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arm {
    /// The site name (one of [`SITES`] for the built-in runner).
    pub site: String,
    /// The 1-based hit index at which to fire.
    pub hit: u64,
    /// What to do when firing.
    pub mode: FaultMode,
}

/// The injected outcome delivered by [`FaultPlan::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Abort with no further writes.
    Crash {
        /// The site that fired.
        site: String,
    },
    /// A synthetic transient io failure.
    Io {
        /// The site that fired.
        site: String,
    },
}

/// A malformed fault-plan atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending `site@N[:mode]` atom.
    pub atom: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fail-point atom {:?}: {}", self.atom, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

/// A deterministic fault schedule plus its per-site hit counters.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Arm>,
    // BTreeMap, not HashMap: `Debug`-printing a plan (test diagnostics)
    // must render hit counters in a stable order — replay-critical crates
    // keep even incidental iteration deterministic.
    hits: BTreeMap<String, u64>,
}

impl FaultPlan {
    /// The empty plan: every site passes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Arms one site (builder style).
    pub fn arm(mut self, site: &str, hit: u64, mode: FaultMode) -> Self {
        self.arms.push(Arm { site: site.to_string(), hit, mode });
        self
    }

    /// Parses `site@N[:crash|io]` atoms joined by `;` (the
    /// `FAIRSCHED_FAILPOINTS` grammar). Whitespace around atoms is
    /// ignored; empty input is the empty plan.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::default();
        for atom in text.split(';').map(str::trim).filter(|a| !a.is_empty()) {
            let bad = |reason: &str| PlanParseError {
                atom: atom.to_string(),
                reason: reason.to_string(),
            };
            let (site_hit, mode) = match atom.split_once(':') {
                None => (atom, FaultMode::Crash),
                Some((sh, "crash")) => (sh, FaultMode::Crash),
                Some((sh, "io")) => (sh, FaultMode::Io),
                Some((_, other)) => {
                    return Err(PlanParseError {
                        atom: atom.to_string(),
                        reason: format!("unknown mode {other:?} (crash or io)"),
                    })
                }
            };
            let Some((site, hit)) = site_hit.split_once('@') else {
                return Err(bad("missing @N hit index"));
            };
            if site.is_empty() {
                return Err(bad("empty site name"));
            }
            let hit: u64 = hit.parse().map_err(|_| bad("hit index must be a number"))?;
            if hit == 0 {
                return Err(bad("hit indices are 1-based"));
            }
            plan.arms.push(Arm { site: site.to_string(), hit, mode });
        }
        Ok(plan)
    }

    /// Whether any site is armed.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Registers one pass through `site` and returns the fault to
    /// inject, if an arm matches this hit. Counters advance whether or
    /// not a fault fires, so a retried operation passes its site on the
    /// next attempt — exactly how a transient fault behaves.
    pub fn check(&mut self, site: &str) -> Option<Fault> {
        let count = self.hits.entry(site.to_string()).or_insert(0);
        *count += 1;
        let n = *count;
        for arm in &self.arms {
            if arm.site == site && arm.hit == n {
                return Some(match arm.mode {
                    FaultMode::Crash => Fault::Crash { site: site.to_string() },
                    FaultMode::Io => Fault::Io { site: site.to_string() },
                });
            }
        }
        None
    }

    /// How many times `site` has been passed so far.
    pub fn hits(&self, site: &str) -> u64 {
        self.hits.get(site).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_with_modes_and_defaults() {
        let plan = FaultPlan::parse("cell.commit@2; journal.append@1:io").unwrap();
        assert_eq!(plan.arms.len(), 2);
        assert_eq!(plan.arms[0].site, "cell.commit");
        assert_eq!(plan.arms[0].hit, 2);
        assert_eq!(plan.arms[0].mode, FaultMode::Crash);
        assert_eq!(plan.arms[1].mode, FaultMode::Io);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn malformed_atoms_are_typed_errors() {
        for bad in ["cell.commit", "@1", "x@0", "x@y", "x@1:explode"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn fires_on_the_exact_hit_only() {
        let mut plan = FaultPlan::none().arm("s", 2, FaultMode::Crash);
        assert_eq!(plan.check("s"), None);
        assert_eq!(plan.check("other"), None);
        assert_eq!(plan.check("s"), Some(Fault::Crash { site: "s".into() }));
        assert_eq!(plan.check("s"), None);
        assert_eq!(plan.hits("s"), 3);
        assert_eq!(plan.hits("other"), 1);
    }

    #[test]
    fn counters_advance_past_a_fired_io_arm() {
        // An io arm fires once; the retry that follows passes.
        let mut plan = FaultPlan::none().arm("w", 1, FaultMode::Io);
        assert_eq!(plan.check("w"), Some(Fault::Io { site: "w".into() }));
        assert_eq!(plan.check("w"), None);
    }

    #[test]
    fn sites_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for site in SITES {
            assert!(seen.insert(site), "duplicate site {site}");
        }
    }
}
