//! The append-only run journal: one JSON line per cell state transition.
//!
//! The journal (`journal.jsonl` in the run directory) is *advisory*: the
//! content-addressed cell files are the source of truth, and resume
//! re-derives all state from them. The journal exists for humans and for
//! `fairsched experiment status` — it records the order cells were
//! attempted, retries, and failures, and it survives crashes by
//! construction: appends may be torn mid-line by a kill, so the reader
//! tolerates one trailing undecodable line (reported via
//! [`Journal::truncated`]) instead of failing the whole run.
//!
//! The filesystem mechanics — single-`write_all` appends, the tolerant
//! line reader — live in [`fairsched_core::journal`], shared with the
//! serving daemon's submission queue; this module only owns the typed
//! entry format.

use fairsched_core::journal as fs_journal;
use fairsched_sim::SimError;
use serde::Value;
use std::path::Path;

/// One journaled transition: cell `cell` entered `state` on attempt
/// number `attempt` (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// The cell's canonical key string.
    pub cell: String,
    /// The state entered: `running`, `done`, or `failed`.
    pub state: String,
    /// The 1-based attempt number for this cell.
    pub attempt: u64,
}

impl JournalEntry {
    /// The entry as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        Value::Object(vec![
            ("cell".into(), Value::String(self.cell.clone())),
            ("state".into(), Value::String(self.state.clone())),
            ("attempt".into(), Value::Number(self.attempt.to_string())),
        ])
        .to_json()
    }

    /// Decodes one journal line; `None` for anything torn or malformed.
    pub fn from_json_line(line: &str) -> Option<JournalEntry> {
        let v = serde_json::parse_value(line).ok()?;
        let string = |key: &str| match v.get(key) {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        };
        let attempt = match v.get("attempt") {
            Some(Value::Number(n)) => n.parse().ok()?,
            _ => return None,
        };
        Some(JournalEntry { cell: string("cell")?, state: string("state")?, attempt })
    }
}

/// A decoded journal: every intact entry, in append order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    /// The intact entries.
    pub entries: Vec<JournalEntry>,
    /// Whether the file ended in a torn or malformed line (the signature
    /// of a crash mid-append). Entries after the first bad line are not
    /// trusted.
    pub truncated: bool,
}

/// Appends one entry (plus newline) to the journal at `path`, creating
/// the file if needed ([`fairsched_core::journal::append_line`]).
pub fn append(path: &Path, entry: &JournalEntry) -> Result<(), SimError> {
    fs_journal::append_line(path, &entry.to_json_line()).map_err(SimError::from)
}

/// Reads the journal at `path`. A missing file is the empty journal;
/// decoding stops at the first undecodable line, which sets
/// [`Journal::truncated`] rather than erroring — a torn final line is an
/// expected crash artifact, not corruption.
pub fn read_journal(path: &Path) -> Result<Journal, SimError> {
    let (entries, truncated) =
        fs_journal::read_lines_tolerant(path, JournalEntry::from_json_line)?;
    Ok(Journal { entries, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn entry(cell: &str, state: &str, attempt: u64) -> JournalEntry {
        JournalEntry { cell: cell.into(), state: state.into(), attempt }
    }

    #[test]
    fn line_round_trip() {
        let e = entry("fairsched-cell|w=fpt", "running", 2);
        assert_eq!(JournalEntry::from_json_line(&e.to_json_line()), Some(e));
    }

    #[test]
    fn append_then_read_preserves_order() {
        let dir = std::env::temp_dir().join("fairsched-journal-test-order");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let entries = vec![
            entry("a", "running", 1),
            entry("a", "done", 1),
            entry("b", "running", 1),
        ];
        for e in &entries {
            append(&path, e).unwrap();
        }
        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.entries, entries);
        assert!(!journal.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let path = std::env::temp_dir().join("fairsched-journal-test-none.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_journal(&path).unwrap(), Journal::default());
    }

    #[test]
    fn torn_final_line_sets_truncated() {
        let dir = std::env::temp_dir().join("fairsched-journal-test-torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        append(&path, &entry("a", "done", 1)).unwrap();
        // Simulate a kill mid-append: a partial JSON line with no close.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":\"b\",\"sta").unwrap();
        drop(f);
        let journal = read_journal(&path).unwrap();
        assert_eq!(journal.entries, vec![entry("a", "done", 1)]);
        assert!(journal.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
