//! Durable experiment orchestration for fairsched.
//!
//! The paper's results are `(workload × scheduler × metric)` grids —
//! Table 1, Table 2, Figure 2 are all sweeps — and at paper scale a sweep
//! is hours of compute. [`Simulation::run_grid_reports`] is all-or-nothing:
//! a crash at cell 900/1000 loses everything. This crate makes a sweep a
//! durable, resumable artifact:
//!
//! * an [`ExperimentSpec`](spec::ExperimentSpec) names the grid as pure
//!   data (spec strings + seeds + limits), loaded from JSON;
//! * the [`Runner`](runner::Runner) executes cells serially, committing
//!   each one to a content-addressed file (`cells/<fnv128(key)>.json`)
//!   with an atomic write-then-rename, and journaling state transitions
//!   to an append-only `journal.jsonl`;
//! * re-running with *resume* skips every committed cell (zero recompute
//!   on a finished run), recomputes corrupt or missing ones, and degrades
//!   failed cells into typed entries of the final report instead of
//!   aborting the sweep;
//! * the final `report.json` / `report.csv` / `report.txt` are always
//!   rebuilt from the committed cells, so an interrupted-and-resumed run
//!   emits byte-identical artifacts to an uninterrupted one — a property
//!   proven by a kill-point sweep over every
//!   [`failpoint::SITES`] entry, driven by the std-only deterministic
//!   fault-injection layer in [`failpoint`].
//!
//! [`Simulation::run_grid_reports`]: fairsched_sim::Simulation::run_grid_reports

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod failpoint;
pub mod journal;
pub mod runner;
pub mod spec;

pub use cell::{cell_keys, decode_cell, encode_cell, CellKey, StoredCell, CELL_SCHEMA};
pub use failpoint::{Fault, FaultMode, FaultPlan, PlanParseError, SITES};
pub use journal::{Journal, JournalEntry};
pub use runner::{
    aggregate, compute_cell, FinalReport, RunSummary, Runner, RunnerError, RunnerOptions,
    StatusSummary, REPORT_SCHEMA,
};
pub use spec::{ExperimentSpec, RetryPolicy, SeedPlan, SpecLoadError, SPEC_SCHEMA};
