//! The `ExperimentSpec` JSON format: a whole grid sweep as pure data.
//!
//! A spec names the three registry axes by their canonical spec strings
//! (the same `name[:key=value,...]` grammar the CLI, bench, and session
//! API use), plus the run settings:
//!
//! ```json
//! {
//!   "schema": "fairsched-experiment/v1",
//!   "name": "tiny-grid",
//!   "workloads": ["fpt:k=2", "fpt:k=3"],
//!   "schedulers": ["fifo", "roundrobin"],
//!   "metrics": ["delay", "psi"],
//!   "horizon": 400,
//!   "validate": false,
//!   "seeds": { "base": 3, "count": 2, "workload_stride": 1, "scheduler_stride": 1 },
//!   "retry": { "max_attempts": 3, "backoff_ms": 10 }
//! }
//! ```
//!
//! `metrics`, `horizon`, `validate`, `seeds`, and `retry` are optional;
//! their defaults reproduce [`Simulation::run_grid_reports`] behavior
//! (default metric set, run-to-completion horizon, no validation, one
//! instance at seed 0). The [`SeedPlan`] strides decouple the workload
//! and scheduler seed axes: instance `i` builds workloads at `base +
//! i·workload_stride` and seeds schedulers at `base +
//! i·scheduler_stride`, generalizing the historical fixed `base_seed + i`
//! shift (equal strides — the default — keep both axes coupled and match
//! `run_grid_reports` with session seed `base + i·stride` exactly).
//!
//! [`Simulation::run_grid_reports`]: fairsched_sim::Simulation::run_grid_reports

use fairsched_core::model::Time;
use fairsched_core::scheduler::registry::SchedulerSpec;
use fairsched_sim::report::MetricSpec;
use fairsched_sim::DEFAULT_REPORT_METRICS;
use fairsched_workloads::spec::WorkloadSpec;
use serde::Value;
use std::fmt;

/// The `schema` tag every experiment spec document must carry.
pub const SPEC_SCHEMA: &str = "fairsched-experiment/v1";

/// Why an experiment spec document was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecLoadError {
    /// Where in the document (`workloads[1]`, `seeds.count`, …).
    pub at: String,
    /// What was wrong there.
    pub reason: String,
}

impl SpecLoadError {
    fn new(at: impl Into<String>, reason: impl Into<String>) -> Self {
        SpecLoadError { at: at.into(), reason: reason.into() }
    }
}

impl fmt::Display for SpecLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad experiment spec at {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for SpecLoadError {}

/// The seed axes of an experiment: instance `i` builds its workloads at
/// [`SeedPlan::workload_seed`]`(i)` and seeds its schedulers at
/// [`SeedPlan::scheduler_seed`]`(i)`.
///
/// Seeds live on the `u64` ring (strides deliberately wrap), so any
/// base/stride/count combination is valid data rather than a panic.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SeedPlan {
    /// The seed of instance 0 (both axes).
    pub base: u64,
    /// How many instances to run.
    pub count: u64,
    /// Per-instance step of the workload seed axis.
    pub workload_stride: u64,
    /// Per-instance step of the scheduler seed axis.
    pub scheduler_stride: u64,
}

impl Default for SeedPlan {
    fn default() -> Self {
        SeedPlan { base: 0, count: 1, workload_stride: 1, scheduler_stride: 1 }
    }
}

impl SeedPlan {
    /// The workload-build seed of instance `i`.
    pub fn workload_seed(&self, instance: u64) -> u64 {
        self.base.wrapping_add(instance.wrapping_mul(self.workload_stride))
    }

    /// The scheduler/session seed of instance `i`.
    pub fn scheduler_seed(&self, instance: u64) -> u64 {
        self.base.wrapping_add(instance.wrapping_mul(self.scheduler_stride))
    }

    /// Whether the two seed axes ever diverge.
    pub fn decoupled(&self) -> bool {
        self.workload_stride != self.scheduler_stride
    }
}

/// Retry policy for transient (io) failures: at most `max_attempts`
/// tries per operation, sleeping `backoff_ms · 2^(attempt-1)` between
/// them (capped — see [`RetryPolicy::backoff_for`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per filesystem operation (≥ 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds before the second attempt.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff_ms: 10 }
    }
}

/// The longest single backoff sleep, so a misconfigured spec cannot park
/// the runner for minutes between retries.
pub const MAX_BACKOFF_MS: u64 = 250;

impl RetryPolicy {
    /// The bounded sleep after failed attempt number `attempt` (1-based):
    /// exponential in the attempt index, capped at [`MAX_BACKOFF_MS`].
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_ms.saturating_mul(1u64 << shift).min(MAX_BACKOFF_MS)
    }
}

/// A full experiment: the three spec axes plus run settings. See the
/// [module docs](self) for the JSON format.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Display name (also the default run-directory stem).
    pub name: String,
    /// The workload axis, in grid order.
    pub workloads: Vec<WorkloadSpec>,
    /// The scheduler axis, in grid order.
    pub schedulers: Vec<SchedulerSpec>,
    /// The metrics every cell evaluates.
    pub metrics: Vec<MetricSpec>,
    /// Evaluation horizon; `None` runs each trace to completion.
    pub horizon: Option<Time>,
    /// Whether to run post-run schedule validation per cell.
    pub validate: bool,
    /// The seed axes.
    pub seeds: SeedPlan,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl ExperimentSpec {
    /// A minimal spec over the given axes with all-default settings
    /// (default metric set, completion horizon, one instance at seed 0).
    pub fn new(
        name: impl Into<String>,
        workloads: Vec<WorkloadSpec>,
        schedulers: Vec<SchedulerSpec>,
    ) -> Self {
        ExperimentSpec {
            name: name.into(),
            workloads,
            schedulers,
            metrics: default_metrics(),
            horizon: None,
            validate: false,
            seeds: SeedPlan::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Total cell count: `instances × workloads × schedulers`.
    pub fn n_cells(&self) -> u64 {
        self.seeds
            .count
            .saturating_mul(self.workloads.len() as u64)
            .saturating_mul(self.schedulers.len() as u64)
    }

    /// The canonical JSON tree (the inverse of
    /// [`ExperimentSpec::from_json_value`]; all defaults written out, so
    /// two specs are equal iff their trees are).
    pub fn to_json_value(&self) -> Value {
        let specs =
            |it: Vec<String>| Value::Array(it.into_iter().map(Value::String).collect());
        Value::Object(vec![
            ("schema".into(), Value::String(SPEC_SCHEMA.into())),
            ("name".into(), Value::String(self.name.clone())),
            (
                "workloads".into(),
                specs(self.workloads.iter().map(|w| w.to_string()).collect()),
            ),
            (
                "schedulers".into(),
                specs(self.schedulers.iter().map(|s| s.to_string()).collect()),
            ),
            (
                "metrics".into(),
                specs(self.metrics.iter().map(|m| m.to_string()).collect()),
            ),
            (
                "horizon".into(),
                match self.horizon {
                    Some(h) => Value::Number(h.to_string()),
                    None => Value::Null,
                },
            ),
            ("validate".into(), Value::Bool(self.validate)),
            (
                "seeds".into(),
                Value::Object(vec![
                    ("base".into(), Value::Number(self.seeds.base.to_string())),
                    ("count".into(), Value::Number(self.seeds.count.to_string())),
                    (
                        "workload_stride".into(),
                        Value::Number(self.seeds.workload_stride.to_string()),
                    ),
                    (
                        "scheduler_stride".into(),
                        Value::Number(self.seeds.scheduler_stride.to_string()),
                    ),
                ]),
            ),
            (
                "retry".into(),
                Value::Object(vec![
                    (
                        "max_attempts".into(),
                        Value::Number(self.retry.max_attempts.to_string()),
                    ),
                    (
                        "backoff_ms".into(),
                        Value::Number(self.retry.backoff_ms.to_string()),
                    ),
                ]),
            ),
        ])
    }

    /// The canonical pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_pretty()
    }

    /// Parses a spec document from its JSON tree. Spec strings are
    /// validated syntactically (and canonicalized); unknown registry
    /// names surface later as typed per-cell errors, so a spec written
    /// for a downstream registry still loads.
    pub fn from_json_value(v: &Value) -> Result<ExperimentSpec, SpecLoadError> {
        let obj = |v: &Value| -> bool { matches!(v, Value::Object(_)) };
        if !obj(v) {
            return Err(SpecLoadError::new("document", "expected a JSON object"));
        }
        match v.get("schema") {
            Some(Value::String(s)) if s == SPEC_SCHEMA => {}
            Some(Value::String(s)) => {
                return Err(SpecLoadError::new(
                    "schema",
                    format!("expected {SPEC_SCHEMA:?}, found {s:?}"),
                ))
            }
            _ => {
                return Err(SpecLoadError::new(
                    "schema",
                    format!("missing schema tag (expected {SPEC_SCHEMA:?})"),
                ))
            }
        }
        let name = match v.get("name") {
            Some(Value::String(s)) if !s.is_empty() => s.clone(),
            Some(_) => return Err(SpecLoadError::new("name", "expected a string")),
            None => return Err(SpecLoadError::new("name", "missing")),
        };
        let workloads =
            parse_spec_list::<WorkloadSpec>(v, "workloads", /* required: */ true)?;
        let schedulers =
            parse_spec_list::<SchedulerSpec>(v, "schedulers", /* required: */ true)?;
        let mut metrics = parse_spec_list::<MetricSpec>(v, "metrics", false)?;
        if metrics.is_empty() {
            metrics = default_metrics();
        }
        let horizon = match v.get("horizon") {
            None | Some(Value::Null) => None,
            Some(other) => Some(number::<Time>(other, "horizon")?),
        };
        let validate = match v.get("validate") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(SpecLoadError::new("validate", "expected a bool")),
        };
        let defaults = SeedPlan::default();
        let seeds = match v.get("seeds") {
            None => defaults,
            Some(seeds) if obj(seeds) => SeedPlan {
                base: opt_number(seeds, "seeds.base", "base", defaults.base)?,
                count: opt_number(seeds, "seeds.count", "count", defaults.count)?,
                workload_stride: opt_number(
                    seeds,
                    "seeds.workload_stride",
                    "workload_stride",
                    defaults.workload_stride,
                )?,
                scheduler_stride: opt_number(
                    seeds,
                    "seeds.scheduler_stride",
                    "scheduler_stride",
                    defaults.scheduler_stride,
                )?,
            },
            Some(_) => return Err(SpecLoadError::new("seeds", "expected an object")),
        };
        if seeds.count == 0 {
            return Err(SpecLoadError::new("seeds.count", "must be at least 1"));
        }
        let rd = RetryPolicy::default();
        let retry = match v.get("retry") {
            None => rd,
            Some(retry) if obj(retry) => RetryPolicy {
                max_attempts: opt_number(
                    retry,
                    "retry.max_attempts",
                    "max_attempts",
                    rd.max_attempts,
                )?,
                backoff_ms: opt_number(
                    retry,
                    "retry.backoff_ms",
                    "backoff_ms",
                    rd.backoff_ms,
                )?,
            },
            Some(_) => return Err(SpecLoadError::new("retry", "expected an object")),
        };
        if retry.max_attempts == 0 {
            return Err(SpecLoadError::new("retry.max_attempts", "must be at least 1"));
        }
        Ok(ExperimentSpec {
            name,
            workloads,
            schedulers,
            metrics,
            horizon,
            validate,
            seeds,
            retry,
        })
    }

    /// Parses a spec from JSON text (the CLI's `experiment run FILE`
    /// input).
    pub fn from_json_str(text: &str) -> Result<ExperimentSpec, SpecLoadError> {
        let value = serde_json::parse_value(text).map_err(|e| {
            SpecLoadError::new("document", format!("does not parse as JSON: {e:?}"))
        })?;
        ExperimentSpec::from_json_value(&value)
    }
}

/// The default metric axis: the session API's
/// [`DEFAULT_REPORT_METRICS`], as bare specs.
pub fn default_metrics() -> Vec<MetricSpec> {
    DEFAULT_REPORT_METRICS.iter().map(|s| MetricSpec::bare(*s)).collect()
}

fn number<T: std::str::FromStr>(v: &Value, at: &str) -> Result<T, SpecLoadError> {
    match v {
        Value::Number(text) => text
            .parse()
            .map_err(|_| SpecLoadError::new(at, format!("bad number {text:?}"))),
        _ => Err(SpecLoadError::new(at, "expected a number")),
    }
}

fn opt_number<T: std::str::FromStr>(
    parent: &Value,
    at: &str,
    key: &str,
    default: T,
) -> Result<T, SpecLoadError> {
    match parent.get(key) {
        None => Ok(default),
        Some(v) => number(v, at),
    }
}

fn parse_spec_list<T>(
    v: &Value,
    key: &str,
    required: bool,
) -> Result<Vec<T>, SpecLoadError>
where
    T: std::str::FromStr,
    T::Err: fmt::Display,
{
    let items = match v.get(key) {
        Some(Value::Array(items)) => items,
        Some(_) => return Err(SpecLoadError::new(key, "expected an array of strings")),
        None if required => return Err(SpecLoadError::new(key, "missing")),
        None => return Ok(Vec::new()),
    };
    if required && items.is_empty() {
        return Err(SpecLoadError::new(key, "must not be empty"));
    }
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let at = format!("{key}[{i}]");
        match item {
            Value::String(s) => out.push(
                s.parse::<T>().map_err(|e| SpecLoadError::new(&at, e.to_string()))?,
            ),
            _ => return Err(SpecLoadError::new(&at, "expected a spec string")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            "tiny",
            vec!["fpt:k=2".parse().unwrap()],
            vec!["fifo".parse().unwrap(), "roundrobin".parse().unwrap()],
        );
        spec.metrics = vec!["delay".parse().unwrap(), "psi".parse().unwrap()];
        spec.horizon = Some(400);
        spec.seeds =
            SeedPlan { base: 3, count: 2, workload_stride: 1, scheduler_stride: 1 };
        spec
    }

    #[test]
    fn json_round_trip_is_identity() {
        let spec = tiny();
        let reparsed = ExperimentSpec::from_json_str(&spec.to_json()).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.to_json(), reparsed.to_json());
    }

    #[test]
    fn seed_strides_round_trip_and_evaluate() {
        let mut spec = tiny();
        spec.seeds =
            SeedPlan { base: 10, count: 3, workload_stride: 100, scheduler_stride: 7 };
        let reparsed = ExperimentSpec::from_json_str(&spec.to_json()).unwrap();
        assert_eq!(reparsed.seeds, spec.seeds);
        assert!(reparsed.seeds.decoupled());
        assert_eq!(reparsed.seeds.workload_seed(2), 210);
        assert_eq!(reparsed.seeds.scheduler_seed(2), 24);
        // Equal strides (the default) keep the axes coupled.
        assert!(!SeedPlan::default().decoupled());
        assert_eq!(SeedPlan::default().workload_seed(5), 5);
    }

    #[test]
    fn defaults_fill_in_when_fields_are_omitted() {
        let minimal = r#"{
            "schema": "fairsched-experiment/v1",
            "name": "m",
            "workloads": ["fpt:k=2"],
            "schedulers": ["fifo"]
        }"#;
        let spec = ExperimentSpec::from_json_str(minimal).unwrap();
        assert_eq!(spec.metrics, default_metrics());
        assert_eq!(spec.horizon, None);
        assert!(!spec.validate);
        assert_eq!(spec.seeds, SeedPlan::default());
        assert_eq!(spec.retry, RetryPolicy::default());
        assert_eq!(spec.n_cells(), 1);
    }

    #[test]
    fn bad_documents_are_typed_errors() {
        let cases: &[(&str, &str)] = &[
            (r#"{"name": "x"}"#, "schema"),
            (r#"{"schema": "fairsched-experiment/v2", "name": "x"}"#, "schema"),
            (r#"{"schema": "fairsched-experiment/v1"}"#, "name"),
            (
                r#"{"schema": "fairsched-experiment/v1", "name": "x",
                    "workloads": [], "schedulers": ["fifo"]}"#,
                "workloads",
            ),
            (
                r#"{"schema": "fairsched-experiment/v1", "name": "x",
                    "workloads": ["fpt:k"], "schedulers": ["fifo"]}"#,
                "workloads[0]",
            ),
            (
                r#"{"schema": "fairsched-experiment/v1", "name": "x",
                    "workloads": ["fpt:k=2"], "schedulers": ["fifo"],
                    "seeds": {"count": 0}}"#,
                "seeds.count",
            ),
            (
                r#"{"schema": "fairsched-experiment/v1", "name": "x",
                    "workloads": ["fpt:k=2"], "schedulers": ["fifo"],
                    "retry": {"max_attempts": 0}}"#,
                "retry.max_attempts",
            ),
        ];
        for (doc, at) in cases {
            let err = ExperimentSpec::from_json_str(doc).unwrap_err();
            assert_eq!(&err.at, at, "{err}");
        }
    }

    #[test]
    fn spec_strings_are_canonicalized() {
        let doc = r#"{
            "schema": "fairsched-experiment/v1",
            "name": "c",
            "workloads": ["fpt:k=2,horizon=800"],
            "schedulers": ["rand:perms=5"],
            "metrics": ["delay:norm=ideal"]
        }"#;
        let spec = ExperimentSpec::from_json_str(doc).unwrap();
        // Params sort by key in canonical form.
        assert_eq!(spec.workloads[0].to_string(), "fpt:horizon=800,k=2");
        assert_eq!(spec.metrics[0].to_string(), "delay:norm=ideal");
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let retry = RetryPolicy { max_attempts: 10, backoff_ms: 10 };
        assert_eq!(retry.backoff_for(1), 10);
        assert_eq!(retry.backoff_for(2), 20);
        assert_eq!(retry.backoff_for(3), 40);
        assert_eq!(retry.backoff_for(9), MAX_BACKOFF_MS);
        // Huge attempt indices stay bounded instead of overflowing.
        assert_eq!(retry.backoff_for(u32::MAX), MAX_BACKOFF_MS);
    }
}
