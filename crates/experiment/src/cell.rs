//! Content-addressed experiment cells.
//!
//! A *cell* is one `(workload, scheduler, instance)` evaluation of the
//! experiment's metric set. Its identity is the [`CellKey`]: every input
//! that can change the resulting [`Report`], rendered to one canonical
//! string and hashed (FNV-1a, 128-bit) into the cell's file name
//! `cells/<hash>.json`. Content addressing is what makes resume safe
//! without coordination: if the spec changes in any way that could change
//! a cell's output, the cell's address changes too, so a stale file can
//! never be mistaken for a fresh result.

use crate::spec::ExperimentSpec;
use fairsched_core::model::Time;
use fairsched_core::scheduler::registry::SchedulerSpec;
use fairsched_sim::report::MetricSpec;
use fairsched_sim::{Report, SimError};
use fairsched_workloads::spec::WorkloadSpec;
use serde::Value;

/// The `schema` tag of every committed cell file.
pub const CELL_SCHEMA: &str = "fairsched-experiment-cell/v1";

/// Every input that determines one cell's report.
#[derive(Clone, Debug, PartialEq)]
pub struct CellKey {
    /// The workload to build.
    pub workload: WorkloadSpec,
    /// The scheduler to run.
    pub scheduler: SchedulerSpec,
    /// The metrics to evaluate (grid order).
    pub metrics: Vec<MetricSpec>,
    /// Evaluation horizon; `None` runs to completion.
    pub horizon: Option<Time>,
    /// Whether post-run schedule validation is on.
    pub validate: bool,
    /// The instance index within the seed plan.
    pub instance: u64,
    /// The workload-build seed.
    pub workload_seed: u64,
    /// The scheduler/session seed.
    pub scheduler_seed: u64,
}

impl CellKey {
    /// The canonical key string: every field in fixed order, spec axes in
    /// canonical spec-string form. Two keys collide iff the cells are the
    /// same computation.
    pub fn canonical(&self) -> String {
        let metrics: Vec<String> = self.metrics.iter().map(|m| m.to_string()).collect();
        let horizon = match self.horizon {
            Some(h) => h.to_string(),
            None => "none".to_string(),
        };
        format!(
            "fairsched-cell|w={}|s={}|m={}|h={}|v={}|i={}|ws={}|ss={}",
            self.workload,
            self.scheduler,
            metrics.join(";"),
            horizon,
            self.validate,
            self.instance,
            self.workload_seed,
            self.scheduler_seed,
        )
    }

    /// The cell's content address: FNV-1a 128-bit of the canonical key,
    /// as 32 lowercase hex digits.
    pub fn hash(&self) -> String {
        fnv128(self.canonical().as_bytes())
    }

    /// The cell's file name within the run's `cells/` directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.hash())
    }
}

/// FNV-1a with 128-bit state (offset basis and prime from the FNV spec),
/// rendered as 32 hex digits. Plenty for addressing a few thousand cells,
/// and dependency-free.
fn fnv128(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// Enumerates the full grid of `spec` in deterministic order:
/// instance-major, then workloads, then schedulers — the same row-major
/// order `run_grid_reports` walks within one instance.
pub fn cell_keys(spec: &ExperimentSpec) -> Vec<CellKey> {
    let mut keys = Vec::new();
    for instance in 0..spec.seeds.count {
        for workload in &spec.workloads {
            for scheduler in &spec.schedulers {
                keys.push(CellKey {
                    workload: workload.clone(),
                    scheduler: scheduler.clone(),
                    metrics: spec.metrics.clone(),
                    horizon: spec.horizon,
                    validate: spec.validate,
                    instance,
                    workload_seed: spec.seeds.workload_seed(instance),
                    scheduler_seed: spec.seeds.scheduler_seed(instance),
                });
            }
        }
    }
    keys
}

/// A decoded committed cell file.
#[derive(Clone, Debug)]
pub struct StoredCell {
    /// The canonical key string the file claims to answer.
    pub key: String,
    /// `done` or `failed`.
    pub status: String,
    /// The report, when `status == "done"`.
    pub report: Option<Report>,
    /// The rendered error, when `status == "failed"`.
    pub error: Option<String>,
}

/// Encodes one computed cell (success or typed failure) as its committed
/// JSON tree.
pub fn encode_cell(key: &CellKey, outcome: &Result<Report, SimError>) -> Value {
    let mut fields = vec![
        ("schema".into(), Value::String(CELL_SCHEMA.into())),
        ("key".into(), Value::String(key.canonical())),
        ("workload".into(), Value::String(key.workload.to_string())),
        ("scheduler".into(), Value::String(key.scheduler.to_string())),
        ("instance".into(), Value::Number(key.instance.to_string())),
        ("workload_seed".into(), Value::Number(key.workload_seed.to_string())),
        ("scheduler_seed".into(), Value::Number(key.scheduler_seed.to_string())),
    ];
    match outcome {
        Ok(report) => {
            fields.push(("status".into(), Value::String("done".into())));
            fields.push(("report".into(), report.to_json_value()));
        }
        Err(e) => {
            fields.push(("status".into(), Value::String("failed".into())));
            fields.push(("error".into(), Value::String(e.to_string())));
        }
    }
    Value::Object(fields)
}

/// Decodes a committed cell file; `None` for anything that is not an
/// intact cell of the current schema (the runner treats such files as
/// absent and recomputes — a half-written or corrupted cell must never
/// poison a resume).
pub fn decode_cell(v: &Value) -> Option<StoredCell> {
    let string = |key: &str| match v.get(key) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    };
    if string("schema")? != CELL_SCHEMA {
        return None;
    }
    let key = string("key")?;
    let status = string("status")?;
    match status.as_str() {
        "done" => {
            let report = Report::from_json_value(v.get("report")?).ok()?;
            Some(StoredCell { key, status, report: Some(report), error: None })
        }
        "failed" => {
            let error = string("error")?;
            Some(StoredCell { key, status, report: None, error: Some(error) })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedPlan;

    fn key() -> CellKey {
        CellKey {
            workload: "fpt:k=2".parse().unwrap(),
            scheduler: "fifo".parse().unwrap(),
            metrics: vec!["delay".parse().unwrap(), "psi".parse().unwrap()],
            horizon: Some(400),
            validate: false,
            instance: 0,
            workload_seed: 3,
            scheduler_seed: 3,
        }
    }

    #[test]
    fn canonical_covers_every_field() {
        let base = key();
        let mut variants = vec![base.clone()];
        let mut push = |f: fn(&mut CellKey)| {
            let mut k = base.clone();
            f(&mut k);
            variants.push(k);
        };
        push(|k| k.workload = "fpt:k=3".parse().unwrap());
        push(|k| k.scheduler = "roundrobin".parse().unwrap());
        push(|k| k.metrics = vec!["delay".parse().unwrap()]);
        push(|k| k.horizon = None);
        push(|k| k.validate = true);
        push(|k| k.instance = 1);
        push(|k| k.workload_seed = 4);
        push(|k| k.scheduler_seed = 4);
        let mut seen = std::collections::BTreeSet::new();
        for v in &variants {
            assert!(seen.insert(v.canonical()), "collision: {}", v.canonical());
        }
        // Hashes are distinct too, and stable in shape.
        let mut hashes = std::collections::BTreeSet::new();
        for v in &variants {
            let h = v.hash();
            assert_eq!(h.len(), 32);
            assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(hashes.insert(h));
        }
    }

    #[test]
    fn fnv128_reference_vectors() {
        // Published FNV-1a 128-bit test vectors.
        assert_eq!(fnv128(b""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(fnv128(b"a"), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn grid_enumeration_is_instance_major() {
        let mut spec = ExperimentSpec::new(
            "g",
            vec!["fpt:k=2".parse().unwrap(), "fpt:k=3".parse().unwrap()],
            vec!["fifo".parse().unwrap()],
        );
        spec.seeds =
            SeedPlan { base: 5, count: 2, workload_stride: 2, scheduler_stride: 1 };
        let keys = cell_keys(&spec);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0].instance, 0);
        assert_eq!(keys[1].instance, 0);
        assert_eq!(keys[2].instance, 1);
        assert_eq!(keys[0].workload.to_string(), "fpt:k=2");
        assert_eq!(keys[1].workload.to_string(), "fpt:k=3");
        assert_eq!((keys[2].workload_seed, keys[2].scheduler_seed), (7, 6));
    }

    #[test]
    fn failed_cell_round_trips() {
        let k = key();
        let err = SimError::Io {
            op: "write".into(),
            path: "cells/x.json".into(),
            message: "nope".into(),
        };
        let stored = decode_cell(&encode_cell(&k, &Err(err))).unwrap();
        assert_eq!(stored.key, k.canonical());
        assert_eq!(stored.status, "failed");
        assert!(stored.report.is_none());
        assert!(stored.error.unwrap().contains("nope"));
    }

    #[test]
    fn garbage_decodes_to_none() {
        for text in [
            "null",
            "{}",
            r#"{"schema": "other/v1", "key": "k", "status": "done"}"#,
            r#"{"schema": "fairsched-experiment-cell/v1", "key": "k", "status": "odd"}"#,
            r#"{"schema": "fairsched-experiment-cell/v1", "key": "k", "status": "done", "report": 5}"#,
        ] {
            let v = serde_json::parse_value(text).unwrap();
            assert!(decode_cell(&v).is_none(), "{text} should not decode");
        }
    }
}
