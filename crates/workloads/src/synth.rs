//! Seeded synthetic workload generation.
//!
//! The generator reproduces the statistical properties of HPC archive logs
//! that the paper's conclusions depend on:
//!
//! * **Zipf user activity** — a few heavy users dominate the log,
//! * **bursty sessions** — users submit jobs in consecutive blocks ("the
//!   users usually send their jobs in consecutive blocks", Section 7.2),
//! * **heavy-tailed durations** — lognormal processing times,
//! * **tunable load** — total submitted work is a target fraction of the
//!   machine-pool capacity over the horizon, which controls queueing and
//!   therefore how much a scheduler's fairness matters.

use crate::assign::UserJob;
use fairsched_core::model::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};

/// Synthetic workload parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Number of distinct users.
    pub n_users: usize,
    /// Submit-time horizon; jobs are released in `[0, horizon)`.
    pub horizon: Time,
    /// Machines in the pool (only used to size the work budget).
    pub n_machines: usize,
    /// Target offered load: total work ≈ `load · n_machines · horizon`.
    pub load: f64,
    /// Median job duration (lognormal scale, in time units).
    pub duration_median: f64,
    /// Lognormal shape (σ of ln-duration); ≥ 1.0 gives heavy tails.
    pub duration_sigma: f64,
    /// Durations are clipped to `[1, max_duration]`.
    pub max_duration: Time,
    /// Zipf exponent of user activity weights.
    pub user_zipf: f64,
    /// Mean number of jobs per submission session.
    pub session_jobs: f64,
    /// Mean gap between consecutive submissions inside a session.
    pub intra_session_gap: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_users: 32,
            horizon: 50_000,
            n_machines: 16,
            load: 0.7,
            duration_median: 300.0,
            duration_sigma: 1.4,
            max_duration: 20_000,
            user_zipf: 1.2,
            session_jobs: 5.0,
            intra_session_gap: 30.0,
        }
    }
}

impl SynthConfig {
    /// A unit-size-job variant (for the FPRAS experiments of Section 5.1):
    /// every duration is exactly 1.
    pub fn unit_jobs(mut self) -> Self {
        self.duration_median = 1.0;
        self.duration_sigma = 0.0;
        self.max_duration = 1;
        self
    }
}

/// Generates a seeded synthetic per-user job stream.
///
/// Users receive Zipf activity weights; each user's work budget is its
/// share of `load · n_machines · horizon`. Jobs are emitted in sessions:
/// session start times are uniform over the horizon, within a session jobs
/// arrive with exponential gaps, and durations are lognormal (clipped).
/// Generation stops per user when its budget is exhausted.
pub fn generate(config: &SynthConfig, seed: u64) -> Vec<UserJob> {
    assert!(config.n_users > 0, "need at least one user");
    assert!(config.load > 0.0, "load must be positive");
    assert!(config.horizon > 0, "horizon must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    let total_budget = config.load * config.n_machines as f64 * config.horizon as f64;
    let weight_sum: f64 =
        (1..=config.n_users).map(|r| 1.0 / (r as f64).powf(config.user_zipf)).sum();

    let duration_dist = if config.duration_sigma > 0.0 {
        Some(LogNormal::new(config.duration_median.ln(), config.duration_sigma).unwrap())
    } else {
        None
    };
    let gap_dist = Exp::new(1.0 / config.intra_session_gap.max(1e-9)).unwrap();

    let mut jobs = Vec::new();
    for user in 0..config.n_users {
        let weight = 1.0 / ((user + 1) as f64).powf(config.user_zipf) / weight_sum;
        let mut budget = total_budget * weight;
        while budget > 0.0 {
            // A new session starting uniformly in the horizon.
            let mut t = rng.random_range(0..config.horizon) as f64;
            // Geometric-ish session length with the configured mean.
            let session_len =
                1 + rng.random_range(0.0..2.0 * config.session_jobs) as usize;
            for _ in 0..session_len {
                if budget <= 0.0 || (t as Time) >= config.horizon {
                    break;
                }
                let dur = match &duration_dist {
                    Some(d) => d.sample(&mut rng).round().max(1.0),
                    None => 1.0,
                };
                let dur = (dur as Time).clamp(1, config.max_duration);
                jobs.push(UserJob {
                    user: user as u32,
                    release: t as Time,
                    proc_time: dur,
                });
                budget -= dur as f64;
                t += gap_dist.sample(&mut rng).max(0.0) + 1.0;
            }
        }
    }
    jobs.sort_by_key(|j| (j.release, j.user));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            n_users: 8,
            horizon: 5_000,
            n_machines: 4,
            load: 0.6,
            duration_median: 50.0,
            duration_sigma: 1.0,
            max_duration: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = small();
        assert_eq!(generate(&c, 3), generate(&c, 3));
        assert_ne!(generate(&c, 3), generate(&c, 4));
    }

    #[test]
    fn respects_horizon_and_positive_durations() {
        let c = small();
        for j in generate(&c, 1) {
            assert!(j.release < c.horizon);
            assert!(j.proc_time >= 1);
            assert!(j.proc_time <= c.max_duration);
        }
    }

    #[test]
    fn total_work_tracks_load_target() {
        let c = small();
        let jobs = generate(&c, 7);
        let work: Time = jobs.iter().map(|j| j.proc_time).sum();
        let target = c.load * c.n_machines as f64 * c.horizon as f64;
        // Budgets overshoot by at most one job per user; allow wide-ish band.
        let ratio = work as f64 / target;
        assert!(ratio > 0.8 && ratio < 1.5, "work/target = {ratio}");
    }

    #[test]
    fn zipf_concentrates_activity() {
        let mut c = small();
        c.n_users = 10;
        c.user_zipf = 1.5;
        let jobs = generate(&c, 5);
        let work_of = |u: u32| -> Time {
            jobs.iter().filter(|j| j.user == u).map(|j| j.proc_time).sum()
        };
        // The heaviest user must out-work the lightest by a wide margin.
        assert!(work_of(0) > 3 * work_of(9).max(1));
    }

    #[test]
    fn unit_jobs_are_unit() {
        let c = small().unit_jobs();
        let jobs = generate(&c, 2);
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.proc_time == 1));
    }

    #[test]
    fn sorted_by_release() {
        let jobs = generate(&small(), 9);
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }

    #[test]
    fn users_all_present() {
        // Every user has a positive budget, so every user appears.
        let c = small();
        let jobs = generate(&c, 11);
        for u in 0..c.n_users as u32 {
            assert!(jobs.iter().any(|j| j.user == u), "user {u} missing");
        }
    }
}
