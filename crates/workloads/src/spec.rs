//! The workload registry: one construction path for every workload.
//!
//! PR 1 made the *scheduler* axis of the paper's experiment matrix pure
//! data (`SchedulerSpec` strings through
//! `fairsched_core::scheduler::registry`); this module does the same for
//! the *workload* axis, so a whole Section 7.2-style evaluation —
//! workloads × machine splits × schedulers — is expressible as strings.
//! It mirrors the scheduler registry piece for piece:
//!
//! * [`WorkloadSpec`] — a parsed, canonical description of a workload,
//!   written as a string such as `"synth:preset=ricc,scale=0.5"`,
//!   `"swf:path=/logs/lpc.swf,start=0,end=86400"` or `"fpt:k=8"`. Specs
//!   share the [`fairsched_core::spec`] grammar with scheduler specs:
//!   [`FromStr`]/[`Display`] round-trip exactly and parameters render in
//!   canonical sorted order.
//! * [`WorkloadFactory`] — an object-safe builder turning a spec plus a
//!   [`WorkloadContext`] (seed) into a [`Trace`]. Factories also declare
//!   [`conformance_specs`](WorkloadFactory::conformance_specs):
//!   representative buildable specs that the cross-crate conformance
//!   harness (`tests/workload_conformance.rs`) exercises, so
//!   downstream-registered workloads inherit the round-trip, determinism
//!   and validity guarantees for free.
//! * [`WorkloadRegistry`] — a name → factory map.
//!   [`WorkloadRegistry::default`] knows the built-in families below;
//!   [`WorkloadRegistry::shared`] is the process-wide instance every
//!   consumer (CLI `--workload`, bench experiments, `Simulation`
//!   sessions) resolves through; [`WorkloadRegistry::register`] admits
//!   downstream families without touching this crate.
//!
//! # Built-in families
//!
//! | spec | workload | parameters |
//! |---|---|---|
//! | `synth` | seeded synthetic preset ([`crate::presets`]) | `preset` (lpc \| pik \| ricc \| sharcnet, default lpc), `scale` (default 0.1), `orgs` (default 5), `horizon` (default 20000), `split` (zipf \| uniform \| equal, default zipf), `zipf` (exponent, default 1.0) |
//! | `swf` | a Standard Workload Format log ([`crate::swf`]) | `path` (required), `start`/`end` (submit window, defaults 0/∞), `machines` (default 64), `orgs` (default 5), `split`, `zipf` |
//! | `fpt` | the lattice-bench FPT growth family (`2k` users on `2k` machines, equal split) | `k` (required), `horizon` (default 2000), `load` (default 0.8), `median` (default 40), `sigma` (default 1.0), `maxdur` (default 500) |
//! | `trace` | a serialized [`Trace`] replayed verbatim from JSON (see [`write_trace_json`]) | `path` (required) |
//!
//! ```
//! use fairsched_workloads::spec::{WorkloadContext, WorkloadRegistry, WorkloadSpec};
//!
//! let registry = WorkloadRegistry::default();
//! let spec: WorkloadSpec = "synth:orgs=3,preset=lpc,scale=0.05".parse().unwrap();
//! let trace = registry.build(&spec, &WorkloadContext { seed: 7 }).unwrap();
//! assert_eq!(trace.n_orgs(), 3);
//! assert_eq!(spec.to_string(), "synth:orgs=3,preset=lpc,scale=0.05");
//! ```

use crate::assign::{to_trace, MachineSplit};
use crate::presets::{preset, PresetName};
use crate::swf;
use crate::synth::{generate, SynthConfig};
use fairsched_core::model::{Time, Trace, TraceError};
use fairsched_core::spec::{valid_ident, ParamError, SpecBody, SpecParseError};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Why a workload spec string or a build from one was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// The spec string was empty.
    Empty,
    /// The spec string does not follow `name[:key=value,...]`.
    BadSyntax {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// No factory is registered under the requested name.
    UnknownWorkload {
        /// The requested name.
        name: String,
        /// Registered names, sorted.
        known: Vec<String>,
    },
    /// The named workload does not accept this parameter.
    UnknownParam {
        /// The workload name.
        workload: String,
        /// The rejected parameter key.
        param: String,
        /// Keys the workload accepts.
        accepted: Vec<String>,
    },
    /// A parameter value failed to parse or violated a constraint.
    BadParam {
        /// The workload name.
        workload: String,
        /// The parameter key.
        param: String,
        /// What was wrong with the value.
        reason: String,
    },
    /// A workload file (e.g. an SWF log) could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The workload file failed to parse as SWF.
    Swf(swf::SwfError),
    /// A serialized trace file failed to parse as JSON.
    Json {
        /// The path that failed.
        path: String,
        /// The parse error message.
        message: String,
    },
    /// The generated trace failed model validation.
    InvalidTrace(TraceError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Empty => write!(f, "empty workload spec"),
            WorkloadError::BadSyntax { spec, reason } => {
                write!(f, "malformed workload spec {spec:?}: {reason}")
            }
            WorkloadError::UnknownWorkload { name, known } => {
                write!(f, "unknown workload {name:?} (known: {})", known.join(", "))
            }
            WorkloadError::UnknownParam { workload, param, accepted } => {
                if accepted.is_empty() {
                    write!(f, "workload {workload:?} takes no parameters, got {param:?}")
                } else {
                    write!(
                        f,
                        "workload {workload:?} does not accept {param:?} (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            WorkloadError::BadParam { workload, param, reason } => {
                write!(f, "bad value for {workload}:{param}: {reason}")
            }
            WorkloadError::Io { path, message } => {
                write!(f, "cannot read workload file {path:?}: {message}")
            }
            WorkloadError::Swf(e) => write!(f, "{e}"),
            WorkloadError::Json { path, message } => {
                write!(f, "cannot parse trace file {path:?}: {message}")
            }
            WorkloadError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Swf(e) => Some(e),
            WorkloadError::InvalidTrace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<swf::SwfError> for WorkloadError {
    fn from(e: swf::SwfError) -> Self {
        WorkloadError::Swf(e)
    }
}

impl From<TraceError> for WorkloadError {
    fn from(e: TraceError) -> Self {
        WorkloadError::InvalidTrace(e)
    }
}

/// A parsed workload configuration: a registry name plus string
/// parameters, with a canonical textual form.
///
/// The grammar is the shared [`fairsched_core::spec`] grammar (identical
/// to scheduler specs): `name` or `name:key=value,...`, parameters sorted,
/// `FromStr` ∘ `Display` the identity on canonical strings.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkloadSpec {
    body: SpecBody,
}

impl WorkloadSpec {
    /// A parameterless spec.
    pub fn bare(name: impl Into<String>) -> Self {
        WorkloadSpec { body: SpecBody::bare(name) }
    }

    /// Adds or replaces a parameter (builder style). Values containing
    /// the structural characters `%`/`,`/`=` are percent-escaped on
    /// render, so the `Display`/`FromStr` round trip holds for any
    /// non-empty value (e.g. archive paths with commas).
    ///
    /// # Panics
    /// Panics if the key is not a lowercase identifier or the rendered
    /// value is empty.
    pub fn with(self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        WorkloadSpec { body: self.body.with(key, value) }
    }

    /// The registry name this spec selects.
    pub fn name(&self) -> &str {
        self.body.name()
    }

    /// All parameters, sorted by key.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.body.params()
    }

    /// A raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.body.get(key)
    }

    fn lift(&self, e: ParamError) -> WorkloadError {
        match e {
            ParamError::Unknown { param, accepted } => WorkloadError::UnknownParam {
                workload: self.name().to_string(),
                param,
                accepted,
            },
            ParamError::Bad { param, reason } => WorkloadError::BadParam {
                workload: self.name().to_string(),
                param,
                reason,
            },
        }
    }

    /// Rejects parameters outside `accepted` (factories call this first so
    /// typos fail loudly instead of silently using defaults).
    pub fn deny_unknown_params(&self, accepted: &[&str]) -> Result<(), WorkloadError> {
        self.body.deny_unknown_params(accepted).map_err(|e| self.lift(e))
    }

    /// A typed parameter with a default.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, WorkloadError> {
        self.body.parsed(key, default).map_err(|e| self.lift(e))
    }

    /// A helper for range/constraint violations discovered by factories.
    pub fn bad_param(&self, key: &str, reason: impl Into<String>) -> WorkloadError {
        WorkloadError::BadParam {
            workload: self.name().to_string(),
            param: key.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.body.fmt(f)
    }
}

impl FromStr for WorkloadSpec {
    type Err = WorkloadError;

    fn from_str(s: &str) -> Result<Self, WorkloadError> {
        match s.parse::<SpecBody>() {
            Ok(body) => Ok(WorkloadSpec { body }),
            Err(SpecParseError::Empty) => Err(WorkloadError::Empty),
            Err(SpecParseError::BadSyntax { spec, reason }) => {
                Err(WorkloadError::BadSyntax { spec, reason })
            }
        }
    }
}

/// Everything a factory may need beyond the spec itself: the seed driving
/// generation, user→organization shuffling, and machine-split draws.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadContext {
    /// Seed for all workload randomness (same spec + same seed ⇒ the
    /// identical [`Trace`], byte for byte — the conformance suite pins
    /// this for every registered factory).
    pub seed: u64,
}

/// An object-safe workload builder, registered under a unique name.
pub trait WorkloadFactory: Send + Sync {
    /// The registry name (what spec strings select).
    fn name(&self) -> &str;

    /// One-line human description, shown in CLI help.
    fn summary(&self) -> &str;

    /// Parameter keys this factory accepts (for error messages and docs).
    fn accepted_params(&self) -> &[&str] {
        &[]
    }

    /// Representative specs that must build in any environment — the
    /// conformance harness runs every one of them through round-trip,
    /// determinism, seed-sensitivity, and trace-validity checks. Must be
    /// non-empty: the harness fails the build for factories that register
    /// without conformance coverage.
    fn conformance_specs(&self) -> Vec<WorkloadSpec>;

    /// Whether different seeds must yield different traces (true for every
    /// built-in family; a deterministic replay workload may opt out).
    fn seed_sensitive(&self) -> bool {
        true
    }

    /// Instantiates the trace for a spec in a context.
    ///
    /// Implementations should reject parameters outside
    /// [`accepted_params`](WorkloadFactory::accepted_params) via
    /// [`WorkloadSpec::deny_unknown_params`].
    fn build(
        &self,
        spec: &WorkloadSpec,
        ctx: &WorkloadContext,
    ) -> Result<Trace, WorkloadError>;
}

/// A closure-backed [`WorkloadFactory`] (how all built-ins are defined).
struct FnFactory<F> {
    name: &'static str,
    summary: &'static str,
    accepted: &'static [&'static str],
    conformance: fn() -> Vec<WorkloadSpec>,
    build: F,
}

impl<F> WorkloadFactory for FnFactory<F>
where
    F: Fn(&WorkloadSpec, &WorkloadContext) -> Result<Trace, WorkloadError> + Send + Sync,
{
    fn name(&self) -> &str {
        self.name
    }

    fn summary(&self) -> &str {
        self.summary
    }

    fn accepted_params(&self) -> &[&str] {
        self.accepted
    }

    fn conformance_specs(&self) -> Vec<WorkloadSpec> {
        (self.conformance)()
    }

    fn build(
        &self,
        spec: &WorkloadSpec,
        ctx: &WorkloadContext,
    ) -> Result<Trace, WorkloadError> {
        spec.deny_unknown_params(self.accepted)?;
        (self.build)(spec, ctx)
    }
}

/// The name → factory map behind every workload construction in the
/// workspace.
///
/// [`WorkloadRegistry::default`] pre-populates the built-in families
/// (`synth`, `swf`, `fpt`); use [`WorkloadRegistry::new`] +
/// [`WorkloadRegistry::register`] for a curated set, or `register` on a
/// default registry to add downstream families.
pub struct WorkloadRegistry {
    factories: BTreeMap<String, Box<dyn WorkloadFactory>>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkloadRegistry { factories: BTreeMap::new() }
    }

    /// The process-wide default registry, built once on first use —
    /// `Simulation` sessions, the bench runner, and the CLI all resolve
    /// through it instead of rebuilding [`WorkloadRegistry::default`] per
    /// call.
    pub fn shared() -> &'static WorkloadRegistry {
        static SHARED: std::sync::OnceLock<WorkloadRegistry> = std::sync::OnceLock::new();
        SHARED.get_or_init(WorkloadRegistry::default)
    }

    /// Registers a factory, replacing any previous one of the same name
    /// (last registration wins) and returning the replaced factory if any.
    pub fn register(
        &mut self,
        factory: Box<dyn WorkloadFactory>,
    ) -> Option<Box<dyn WorkloadFactory>> {
        let name = factory.name().to_string();
        debug_assert!(valid_ident(&name), "invalid factory name {name:?}");
        self.factories.insert(name, factory)
    }

    /// The factory registered under `name`.
    pub fn get(&self, name: &str) -> Option<&dyn WorkloadFactory> {
        self.factories.get(name).map(Box::as_ref)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Every factory's conformance specs, keyed by factory name — the
    /// iteration surface of the cross-crate conformance harness.
    pub fn conformance_specs(&self) -> Vec<(String, Vec<WorkloadSpec>)> {
        self.factories
            .values()
            .map(|f| (f.name().to_string(), f.conformance_specs()))
            .collect()
    }

    /// Builds a trace from a parsed spec.
    pub fn build(
        &self,
        spec: &WorkloadSpec,
        ctx: &WorkloadContext,
    ) -> Result<Trace, WorkloadError> {
        let factory = self.factories.get(spec.name()).ok_or_else(|| {
            WorkloadError::UnknownWorkload {
                name: spec.name().to_string(),
                known: self.names().map(str::to_string).collect(),
            }
        })?;
        factory.build(spec, ctx)
    }

    /// Parses and builds in one step.
    pub fn build_str(
        &self,
        spec: &str,
        ctx: &WorkloadContext,
    ) -> Result<Trace, WorkloadError> {
        self.build(&spec.parse()?, ctx)
    }

    /// A help listing: one `name — summary [params]` line per factory.
    pub fn help(&self) -> String {
        let mut out = String::new();
        for f in self.factories.values() {
            out.push_str(&format!("  {:<14} {}", f.name(), f.summary()));
            if !f.accepted_params().is_empty() {
                out.push_str(&format!(" (params: {})", f.accepted_params().join(", ")));
            }
            out.push('\n');
        }
        out
    }

    fn register_fn<F>(
        &mut self,
        name: &'static str,
        summary: &'static str,
        accepted: &'static [&'static str],
        conformance: fn() -> Vec<WorkloadSpec>,
        build: F,
    ) where
        F: Fn(&WorkloadSpec, &WorkloadContext) -> Result<Trace, WorkloadError>
            + Send
            + Sync
            + 'static,
    {
        self.register(Box::new(FnFactory {
            name,
            summary,
            accepted,
            conformance,
            build,
        }));
    }
}

impl fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// Resolves the shared `split`/`zipf` parameter pair into a
/// [`MachineSplit`]; the `zipf` exponent is rejected unless `split` is
/// `zipf` so a forgotten `split=uniform` cannot silently ignore it.
fn split_from_spec(spec: &WorkloadSpec) -> Result<MachineSplit, WorkloadError> {
    match spec.get("split").unwrap_or("zipf") {
        "zipf" => {
            let s = spec.parsed("zipf", 1.0f64)?;
            if !s.is_finite() || s <= 0.0 {
                return Err(spec.bad_param("zipf", "exponent must be positive"));
            }
            Ok(MachineSplit::Zipf(s))
        }
        other => {
            if spec.get("zipf").is_some() {
                return Err(spec.bad_param("zipf", "only meaningful with split=zipf"));
            }
            match other {
                "uniform" => Ok(MachineSplit::Uniform),
                "equal" => Ok(MachineSplit::Equal),
                _ => Err(spec.bad_param(
                    "split",
                    format!("unknown split {other:?} (one of: zipf, uniform, equal)"),
                )),
            }
        }
    }
}

/// The canonical spec for a synthetic preset workload — the inverse of the
/// `synth` factory, used by the bench runner and CLI to express their
/// classic flag combinations as registry specs. A Zipf split with exponent
/// 1.0 (the paper's default) is rendered with no `split`/`zipf` params,
/// keeping the canonical form minimal.
pub fn synth_spec(
    preset: PresetName,
    scale: f64,
    orgs: usize,
    split: MachineSplit,
    horizon: Time,
) -> WorkloadSpec {
    let mut spec = WorkloadSpec::bare("synth")
        .with("preset", preset.key())
        .with("scale", scale)
        .with("orgs", orgs)
        .with("horizon", horizon);
    spec = match split {
        // Zipf with exponent 1.0 is the default: omit both params so the
        // canonical form stays minimal.
        MachineSplit::Zipf(s) => {
            if s == 1.0 {
                spec
            } else {
                spec.with("split", "zipf").with("zipf", s)
            }
        }
        MachineSplit::Uniform => spec.with("split", "uniform"),
        MachineSplit::Equal => spec.with("split", "equal"),
    };
    spec
}

/// The canonical spec for the FPT lattice-bench family at `k`
/// organizations (defaults for everything else).
pub fn fpt_spec(k: usize) -> WorkloadSpec {
    WorkloadSpec::bare("fpt").with("k", k)
}

/// The committed tiny SWF log used for conformance and examples (absolute
/// path, so the harness finds it from any crate's test working directory).
pub fn sample_swf_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/sample.swf")
}

/// The committed tiny serialized trace used by the `trace:` family's
/// conformance specs.
pub fn sample_trace_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/sample_trace.json")
}

/// Serializes a [`Trace`] to the JSON format the `trace:` workload family
/// replays — the export half of making externally generated scenarios
/// spec-addressable (`trace:path=...`).
pub fn trace_to_json(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).expect("traces serialize")
}

/// Writes [`trace_to_json`] to a file, so the canonical export/import
/// cycle is `write_trace_json(&trace, p)` → `trace:path=p`. The write is
/// scratch + commit-rename ([`fairsched_core::journal::atomic_write`]):
/// a crash mid-export leaves the previous file intact, never a torn
/// trace that `trace:path=...` would later half-read.
pub fn write_trace_json(
    trace: &Trace,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    fairsched_core::journal::atomic_write(path.as_ref(), &trace_to_json(trace))
        .map_err(|e| std::io::Error::other(e.to_string()))
}

fn synth_conformance() -> Vec<WorkloadSpec> {
    vec![
        "synth:horizon=1500,orgs=3,preset=lpc,scale=0.08".parse().unwrap(),
        "synth:horizon=1200,orgs=2,preset=pik,scale=0.01,split=equal".parse().unwrap(),
        "synth:horizon=1000,orgs=3,preset=ricc,scale=0.004,split=uniform"
            .parse()
            .unwrap(),
        "synth:horizon=1200,orgs=4,preset=sharcnet,scale=0.008,split=zipf,zipf=1.5"
            .parse()
            .unwrap(),
    ]
}

fn swf_conformance() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::bare("swf")
            .with("path", sample_swf_path())
            .with("machines", 6)
            .with("orgs", 3),
        WorkloadSpec::bare("swf")
            .with("path", sample_swf_path())
            .with("machines", 4)
            .with("orgs", 2)
            .with("start", 0)
            .with("end", 500)
            .with("split", "uniform"),
    ]
}

fn fpt_conformance() -> Vec<WorkloadSpec> {
    vec![
        "fpt:k=3".parse().unwrap(),
        "fpt:horizon=800,k=5,maxdur=120,median=25".parse().unwrap(),
    ]
}

/// The `trace:` family: replay a serialized [`Trace`] from JSON verbatim.
/// Deterministic by construction — the file *is* the trace — so it opts
/// out of seed sensitivity.
struct TraceFileFactory;

impl WorkloadFactory for TraceFileFactory {
    fn name(&self) -> &str {
        "trace"
    }

    fn summary(&self) -> &str {
        "replay a serialized trace from JSON (see write_trace_json)"
    }

    fn accepted_params(&self) -> &[&str] {
        &["path"]
    }

    fn conformance_specs(&self) -> Vec<WorkloadSpec> {
        vec![WorkloadSpec::bare("trace").with("path", sample_trace_path())]
    }

    fn seed_sensitive(&self) -> bool {
        false
    }

    fn build(
        &self,
        spec: &WorkloadSpec,
        _ctx: &WorkloadContext,
    ) -> Result<Trace, WorkloadError> {
        spec.deny_unknown_params(self.accepted_params())?;
        let path = spec
            .get("path")
            .ok_or_else(|| spec.bad_param("path", "required parameter is missing"))?
            .to_string();
        let text = std::fs::read_to_string(&path).map_err(|e| WorkloadError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let trace: Trace = serde_json::from_str(&text).map_err(|e| {
            WorkloadError::Json { path: path.clone(), message: e.to_string() }
        })?;
        trace.validate()?;
        Ok(trace)
    }
}

impl Default for WorkloadRegistry {
    /// A registry with the built-in workload families: `synth` (the
    /// Section 7.2 presets), `swf` (archive log replay), `fpt` (the
    /// lattice-bench growth family), and `trace` (serialized-trace
    /// replay).
    fn default() -> Self {
        let mut r = WorkloadRegistry::new();
        r.register(Box::new(TraceFileFactory));
        r.register_fn(
            "synth",
            "seeded synthetic preset (Section 7.2 archive shapes)",
            &["preset", "scale", "orgs", "horizon", "split", "zipf"],
            synth_conformance,
            |spec, ctx| {
                let name = spec.get("preset").unwrap_or("lpc");
                let name = PresetName::parse(name).ok_or_else(|| {
                    spec.bad_param(
                        "preset",
                        format!(
                            "unknown preset {name:?} (one of: lpc, pik, ricc, sharcnet)"
                        ),
                    )
                })?;
                let scale = spec.parsed("scale", 0.1f64)?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(spec.bad_param("scale", "must be in (0, 1]"));
                }
                let orgs = spec.parsed("orgs", 5usize)?;
                if orgs == 0 {
                    return Err(spec.bad_param("orgs", "need at least one organization"));
                }
                let horizon = spec.parsed("horizon", 20_000u64)?;
                if horizon == 0 {
                    return Err(spec.bad_param("horizon", "must be positive"));
                }
                let split = split_from_spec(spec)?;
                let p = preset(name, scale, horizon);
                if p.synth.n_machines < orgs {
                    return Err(spec.bad_param(
                        "orgs",
                        format!(
                            "preset at this scale has only {} machines for {orgs} organizations",
                            p.synth.n_machines
                        ),
                    ));
                }
                let jobs = generate(&p.synth, ctx.seed);
                Ok(to_trace(&jobs, orgs, p.synth.n_machines, split, ctx.seed)?)
            },
        );
        r.register_fn(
            "swf",
            "replay a Standard Workload Format archive log",
            &["path", "start", "end", "machines", "orgs", "split", "zipf"],
            swf_conformance,
            |spec, ctx| {
                let path = spec
                    .get("path")
                    .ok_or_else(|| {
                        spec.bad_param("path", "required parameter is missing")
                    })?
                    .to_string();
                let start = spec.parsed("start", 0u64)?;
                let end = spec.parsed("end", Time::MAX)?;
                if start >= end {
                    return Err(spec.bad_param("end", "window end must exceed start"));
                }
                let machines = spec.parsed("machines", 64usize)?;
                let orgs = spec.parsed("orgs", 5usize)?;
                if orgs == 0 {
                    return Err(spec.bad_param("orgs", "need at least one organization"));
                }
                if machines < orgs {
                    return Err(spec.bad_param(
                        "machines",
                        format!("need at least one machine per organization ({orgs})"),
                    ));
                }
                let split = split_from_spec(spec)?;
                // Streaming ingestion: two passes over the file, never a
                // materialized `Vec<SwfJob>`/`Vec<UserJob>`. Produces the
                // identical trace to the old parse → to_user_jobs →
                // to_trace pipeline (pinned by a test in `swf`).
                swf::stream_trace(&path, start, end, orgs, machines, split, ctx.seed)
                    .map_err(|e| match e {
                        swf::SwfStreamError::Io { path, message } => {
                            WorkloadError::Io { path, message }
                        }
                        swf::SwfStreamError::Parse(e) => WorkloadError::from(e),
                        swf::SwfStreamError::EmptyWindow => spec.bad_param(
                            "path",
                            format!("submit window [{start}, {end}) selects no jobs"),
                        ),
                        swf::SwfStreamError::Trace(e) => WorkloadError::from(e),
                    })
            },
        );
        r.register_fn(
            "fpt",
            "lattice-bench FPT growth family (2k users on 2k machines)",
            &["k", "horizon", "load", "median", "sigma", "maxdur"],
            fpt_conformance,
            |spec, ctx| {
                let k: usize = match spec.get("k") {
                    None => {
                        return Err(spec.bad_param("k", "required parameter is missing"))
                    }
                    Some(_) => spec.parsed("k", 0usize)?,
                };
                if k == 0 {
                    return Err(spec.bad_param("k", "need at least one organization"));
                }
                let horizon = spec.parsed("horizon", 2_000u64)?;
                if horizon == 0 {
                    return Err(spec.bad_param("horizon", "must be positive"));
                }
                let load = spec.parsed("load", 0.8f64)?;
                if !load.is_finite() || load <= 0.0 {
                    return Err(spec.bad_param("load", "must be positive"));
                }
                let median = spec.parsed("median", 40.0f64)?;
                if !median.is_finite() || median < 1.0 {
                    return Err(spec.bad_param("median", "must be at least 1"));
                }
                let sigma = spec.parsed("sigma", 1.0f64)?;
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(spec.bad_param("sigma", "must be non-negative"));
                }
                let maxdur = spec.parsed("maxdur", 500u64)?;
                if maxdur == 0 {
                    return Err(spec.bad_param("maxdur", "must be positive"));
                }
                let config = SynthConfig {
                    n_users: 2 * k,
                    horizon,
                    n_machines: 2 * k,
                    load,
                    duration_median: median,
                    duration_sigma: sigma,
                    max_duration: maxdur,
                    ..SynthConfig::default()
                };
                let jobs = generate(&config, ctx.seed);
                Ok(to_trace(&jobs, k, 2 * k, MachineSplit::Equal, ctx.seed)?)
            },
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seed: u64) -> WorkloadContext {
        WorkloadContext { seed }
    }

    #[test]
    fn parses_and_round_trips() {
        for text in [
            "synth:preset=ricc,scale=0.5",
            "fpt:k=8",
            "swf:end=86400,path=/logs/lpc.swf,start=0",
            "synth:orgs=8,preset=lpc,scale=0.5,split=uniform",
        ] {
            let spec: WorkloadSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
        }
        // Params canonicalize into sorted order.
        let spec: WorkloadSpec = "synth:scale=0.5,preset=ricc".parse().unwrap();
        assert_eq!(spec.to_string(), "synth:preset=ricc,scale=0.5");
    }

    #[test]
    fn rejects_malformed_specs() {
        for text in ["", "  ", "Synth", "synth:", "synth:scale", "synth:scale="] {
            assert!(text.parse::<WorkloadSpec>().is_err(), "{text:?} should not parse");
        }
        assert!(matches!("".parse::<WorkloadSpec>(), Err(WorkloadError::Empty)));
        assert!(matches!(
            "synth:".parse::<WorkloadSpec>(),
            Err(WorkloadError::BadSyntax { .. })
        ));
    }

    #[test]
    fn default_registry_builds_every_conformance_spec() {
        let registry = WorkloadRegistry::default();
        for (name, specs) in registry.conformance_specs() {
            assert!(!specs.is_empty(), "factory {name} has no conformance specs");
            for spec in specs {
                let trace = registry
                    .build(&spec, &ctx(3))
                    .unwrap_or_else(|e| panic!("conformance spec {spec} failed: {e}"));
                assert!(trace.n_jobs() > 0, "{spec} built an empty trace");
            }
        }
    }

    #[test]
    fn unknown_workload_is_typed_error() {
        let registry = WorkloadRegistry::default();
        match registry.build_str("nonesuch:x=1", &ctx(0)) {
            Err(WorkloadError::UnknownWorkload { name, known }) => {
                assert_eq!(name, "nonesuch");
                assert_eq!(known, vec!["fpt", "swf", "synth", "trace"]);
            }
            other => panic!("wrong outcome: {other:?}"),
        }
    }

    #[test]
    fn unknown_and_bad_params_are_typed_errors() {
        let registry = WorkloadRegistry::default();
        assert!(matches!(
            registry.build_str("synth:bogus=1", &ctx(0)),
            Err(WorkloadError::UnknownParam { .. })
        ));
        for bad in [
            "synth:preset=venus",
            "synth:scale=0",
            "synth:scale=2",
            "synth:orgs=0",
            "synth:horizon=0",
            "synth:split=diagonal",
            "synth:split=equal,zipf=1.2",
            "synth:orgs=900,preset=lpc,scale=0.1",
            "fpt:k=0",
            "fpt:k=three",
            "fpt:k=2,load=0",
            "swf:path=/nope,start=5,end=5",
            "swf:machines=1,orgs=4,path=/nope",
        ] {
            assert!(
                matches!(
                    registry.build_str(bad, &ctx(0)),
                    Err(WorkloadError::BadParam { .. })
                ),
                "{bad:?} should be BadParam"
            );
        }
        // fpt without k, swf without path.
        assert!(matches!(
            registry.build_str("fpt", &ctx(0)),
            Err(WorkloadError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("swf", &ctx(0)),
            Err(WorkloadError::BadParam { .. })
        ));
    }

    #[test]
    fn swf_missing_file_is_io_error() {
        let registry = WorkloadRegistry::default();
        assert!(matches!(
            registry.build_str("swf:path=/no/such/file.swf", &ctx(0)),
            Err(WorkloadError::Io { .. })
        ));
    }

    #[test]
    fn trace_family_replays_serialized_traces_verbatim() {
        let registry = WorkloadRegistry::default();
        let spec = WorkloadSpec::bare("trace").with("path", sample_trace_path());
        let a = registry.build(&spec, &ctx(0)).unwrap();
        assert_eq!(a.n_orgs(), 2);
        assert_eq!(a.n_jobs(), 4);
        assert_eq!(a.orgs()[0].name, "alpha");
        assert_eq!(a.job(fairsched_core::JobId(2)).deadline, Some(9));
        // Seed-independent: the file is the trace.
        assert_eq!(a, registry.build(&spec, &ctx(99)).unwrap());
        // Export ∘ import is the identity.
        let dir = std::env::temp_dir().join("fairsched_trace_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        write_trace_json(&a, &path).unwrap();
        let spec2 = WorkloadSpec::bare("trace").with("path", path.display());
        assert_eq!(registry.build(&spec2, &ctx(3)).unwrap(), a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_family_errors_are_typed() {
        let registry = WorkloadRegistry::default();
        assert!(matches!(
            registry.build_str("trace", &ctx(0)),
            Err(WorkloadError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("trace:path=/no/such/trace.json", &ctx(0)),
            Err(WorkloadError::Io { .. })
        ));
        // A readable file that is not a serialized trace is a Json error.
        assert!(matches!(
            registry.build(
                &WorkloadSpec::bare("trace").with("path", sample_swf_path()),
                &ctx(0)
            ),
            Err(WorkloadError::Json { .. })
        ));
        // A parseable file describing an invalid trace fails validation.
        let dir = std::env::temp_dir().join("fairsched_trace_invalid");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid.json");
        std::fs::write(
            &path,
            r#"{"orgs":[{"name":"a","n_machines":1}],
               "jobs":[{"id":0,"org":0,"release":0,"proc_time":0,"deadline":null}]}"#,
        )
        .unwrap();
        let spec = WorkloadSpec::bare("trace").with("path", path.display());
        assert!(matches!(
            registry.build(&spec, &ctx(0)),
            Err(WorkloadError::InvalidTrace(TraceError::ZeroProcTime { .. }))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synth_spec_builder_is_canonical_and_builds() {
        let spec =
            synth_spec(PresetName::LpcEgee, 0.08, 3, MachineSplit::Zipf(1.0), 1_500);
        assert_eq!(spec.to_string(), "synth:horizon=1500,orgs=3,preset=lpc,scale=0.08");
        let spec2 = synth_spec(PresetName::Ricc, 0.004, 3, MachineSplit::Uniform, 1_000);
        assert_eq!(
            spec2.to_string(),
            "synth:horizon=1000,orgs=3,preset=ricc,scale=0.004,split=uniform"
        );
        let spec3 =
            synth_spec(PresetName::PikIplex, 0.01, 2, MachineSplit::Zipf(1.5), 900);
        assert_eq!(
            spec3.to_string(),
            "synth:horizon=900,orgs=2,preset=pik,scale=0.01,split=zipf,zipf=1.5"
        );
        let registry = WorkloadRegistry::default();
        let t = registry.build(&spec, &ctx(5)).unwrap();
        assert_eq!(t.n_orgs(), 3);
    }

    #[test]
    fn fpt_matches_direct_construction() {
        // The registry fpt family must reproduce the historical
        // `bench_workload` construction bit for bit (perf baselines and
        // golden fixtures depend on it).
        let k = 4;
        let seed = 5;
        let config = SynthConfig {
            n_users: 2 * k,
            horizon: 2_000,
            n_machines: 2 * k,
            load: 0.8,
            duration_median: 40.0,
            duration_sigma: 1.0,
            max_duration: 500,
            ..SynthConfig::default()
        };
        let jobs = generate(&config, seed);
        let direct = to_trace(&jobs, k, 2 * k, MachineSplit::Equal, seed).unwrap();
        let via_registry =
            WorkloadRegistry::shared().build(&fpt_spec(k), &ctx(seed)).unwrap();
        assert_eq!(direct, via_registry);
    }

    #[test]
    fn synth_matches_direct_construction() {
        let horizon = 1_500;
        let p = preset(PresetName::LpcEgee, 0.08, horizon);
        let jobs = generate(&p.synth, 9);
        let direct =
            to_trace(&jobs, 3, p.synth.n_machines, MachineSplit::Zipf(1.0), 9).unwrap();
        let via_registry = WorkloadRegistry::shared()
            .build(
                &synth_spec(
                    PresetName::LpcEgee,
                    0.08,
                    3,
                    MachineSplit::Zipf(1.0),
                    horizon,
                ),
                &ctx(9),
            )
            .unwrap();
        assert_eq!(direct, via_registry);
    }

    #[test]
    fn shared_registry_is_built_once_and_complete() {
        let a = WorkloadRegistry::shared();
        let b = WorkloadRegistry::shared();
        assert!(std::ptr::eq(a, b), "shared() must return one instance");
        let fresh = WorkloadRegistry::default();
        assert_eq!(a.names().collect::<Vec<_>>(), fresh.names().collect::<Vec<_>>());
    }

    #[test]
    fn registration_extends_and_overrides() {
        struct Custom;
        impl WorkloadFactory for Custom {
            fn name(&self) -> &str {
                "custom"
            }
            fn summary(&self) -> &str {
                "test-only"
            }
            fn conformance_specs(&self) -> Vec<WorkloadSpec> {
                vec![WorkloadSpec::bare("custom")]
            }
            fn build(
                &self,
                _spec: &WorkloadSpec,
                _ctx: &WorkloadContext,
            ) -> Result<Trace, WorkloadError> {
                let mut b = Trace::builder();
                let org = b.org("solo", 1);
                b.job(org, 0, 3);
                Ok(b.build()?)
            }
        }
        let mut registry = WorkloadRegistry::default();
        assert!(registry.register(Box::new(Custom)).is_none());
        let t = registry.build_str("custom", &ctx(0)).unwrap();
        assert_eq!(t.n_orgs(), 1);
        assert!(registry.register(Box::new(Custom)).is_some());
    }

    #[test]
    fn help_mentions_every_name() {
        let registry = WorkloadRegistry::default();
        let help = registry.help();
        for name in registry.names() {
            assert!(help.contains(name), "help is missing {name}");
        }
    }

    #[test]
    fn preset_param_shares_the_presetname_parsing_path() {
        // Aliases and case-insensitive labels accepted by
        // `PresetName::parse` work verbatim as `preset=` values.
        let registry = WorkloadRegistry::default();
        let base = "horizon=800,orgs=2,scale=0.05";
        let canon =
            registry.build_str(&format!("synth:{base},preset=lpc"), &ctx(3)).unwrap();
        for alias in ["LPC", "lpc-egee", "LpcEgee", "LPC-EGEE"] {
            let spec = WorkloadSpec::bare("synth")
                .with("horizon", 800)
                .with("orgs", 2)
                .with("scale", 0.05)
                .with("preset", alias);
            let t = registry.build(&spec, &ctx(3)).unwrap();
            assert_eq!(t, canon, "alias {alias:?} diverged from canonical preset");
        }
    }
}
