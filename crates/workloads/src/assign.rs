//! Turning per-user job streams into multi-organization traces.
//!
//! The paper: "To distribute the jobs between the organizations we
//! uniformly distributed the user identifiers between the organizations"
//! and "processors were assigned to organizations so that the counts
//! follow Zipf and (in different runs) uniform distributions".

use fairsched_core::model::{Time, Trace, TraceError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A job attributed to a user (before organization assignment).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UserJob {
    /// User identifier (from the log or generator).
    pub user: u32,
    /// Release time.
    pub release: Time,
    /// Processing time.
    pub proc_time: Time,
}

/// How the machine pool is split between organizations.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MachineSplit {
    /// Counts proportional to a Zipf law with the given exponent over the
    /// organization rank (org 1 largest). The paper's default setting.
    Zipf(f64),
    /// Counts drawn uniformly at random (normalized to the total).
    Uniform,
    /// As equal as possible.
    Equal,
}

/// Splits `total` machines among `k` organizations; every organization gets
/// at least one machine (required for shares to be meaningful) and the
/// counts sum to `total`.
///
/// # Panics
/// Panics if `total < k` or `k == 0`.
pub fn split_machines(
    total: usize,
    k: usize,
    split: MachineSplit,
    seed: u64,
) -> Vec<usize> {
    assert!(k > 0, "need at least one organization");
    assert!(total >= k, "need at least one machine per organization");
    let weights: Vec<f64> = match split {
        MachineSplit::Zipf(s) => (1..=k).map(|r| 1.0 / (r as f64).powf(s)).collect(),
        MachineSplit::Uniform => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..k).map(|_| rng.random_range(0.2..1.0)).collect()
        }
        MachineSplit::Equal => vec![1.0; k],
    };
    largest_remainder(total, &weights, k)
}

/// Largest-remainder apportionment with a floor of 1 machine per org.
fn largest_remainder(total: usize, weights: &[f64], k: usize) -> Vec<usize> {
    let spare = total - k; // each org gets 1 up front
    let sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|w| w / sum * spare as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().take(spare - assigned) {
        counts[i] += 1;
    }
    for c in &mut counts {
        *c += 1;
    }
    counts
}

/// The deterministic user → organization assignment used by [`to_trace`]:
/// distinct users are sorted, shuffled by `seed + 1`, and dealt round-robin
/// to the `k` organizations. Depends only on the user *set* (not job order
/// or multiplicity), which lets streaming ingestion reproduce the exact
/// mapping from a first pass over the log.
pub struct UserAssignment {
    user_org: std::collections::HashMap<u32, usize>,
}

impl UserAssignment {
    /// Builds the assignment from any collection of user ids (duplicates
    /// and ordering are irrelevant).
    pub fn new(mut users: Vec<u32>, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one organization");
        users.sort_unstable();
        users.dedup();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        users.shuffle(&mut rng);
        let user_org = users.iter().enumerate().map(|(i, &u)| (u, i % k)).collect();
        Self { user_org }
    }

    /// The organization index for `user`, or `None` if the user was not in
    /// the set the assignment was built from.
    pub fn org_of(&self, user: u32) -> Option<usize> {
        self.user_org.get(&user).copied()
    }
}

/// Builds a `k`-organization trace: users are shuffled (by `seed`) and
/// dealt round-robin to organizations; machines are split per `split`.
///
/// # Errors
/// Propagates trace validation errors (e.g. all machine counts zero).
pub fn to_trace(
    jobs: &[UserJob],
    k: usize,
    total_machines: usize,
    split: MachineSplit,
    seed: u64,
) -> Result<Trace, TraceError> {
    let machines = split_machines(total_machines, k, split, seed);
    let assignment = UserAssignment::new(jobs.iter().map(|j| j.user).collect(), k, seed);

    let mut b = Trace::builder();
    let orgs: Vec<_> =
        machines.iter().enumerate().map(|(i, &m)| b.org(format!("org{i}"), m)).collect();
    for j in jobs {
        let org = assignment.org_of(j.user).expect("user collected above");
        b.job(orgs[org], j.release, j.proc_time);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_split_is_balanced() {
        assert_eq!(split_machines(10, 5, MachineSplit::Equal, 0), vec![2; 5]);
        let c = split_machines(11, 5, MachineSplit::Equal, 0);
        assert_eq!(c.iter().sum::<usize>(), 11);
        assert!(c.iter().all(|&x| x == 2 || x == 3));
    }

    #[test]
    fn zipf_split_is_skewed_and_exact() {
        let c = split_machines(70, 5, MachineSplit::Zipf(1.0), 0);
        assert_eq!(c.iter().sum::<usize>(), 70);
        assert!(c[0] > c[4], "Zipf must favor the first organization: {c:?}");
        assert!(c.iter().all(|&x| x >= 1));
    }

    #[test]
    fn uniform_split_deterministic_per_seed() {
        let a = split_machines(32, 4, MachineSplit::Uniform, 7);
        let b = split_machines(32, 4, MachineSplit::Uniform, 7);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 32);
    }

    #[test]
    #[should_panic]
    fn split_rejects_too_few_machines() {
        let _ = split_machines(3, 5, MachineSplit::Equal, 0);
    }

    #[test]
    fn to_trace_assigns_all_jobs() {
        let jobs: Vec<UserJob> = (0..20)
            .map(|i| UserJob {
                user: i % 7,
                release: i as Time,
                proc_time: 1 + i as Time % 5,
            })
            .collect();
        let t = to_trace(&jobs, 3, 6, MachineSplit::Equal, 42).unwrap();
        assert_eq!(t.n_jobs(), 20);
        assert_eq!(t.n_orgs(), 3);
        assert_eq!(t.cluster_info().n_machines(), 6);
        t.validate().unwrap();
    }

    #[test]
    fn same_user_same_org() {
        let jobs: Vec<UserJob> = (0..30)
            .map(|i| UserJob { user: i % 3, release: i as Time, proc_time: 2 })
            .collect();
        let t = to_trace(&jobs, 2, 4, MachineSplit::Equal, 1).unwrap();
        // Jobs of the same user must land in one organization: at most 3
        // distinct (user -> org) pairs, so each org's job count is a
        // multiple of 10.
        for u in 0..2 {
            let n = t.jobs_of(fairsched_core::OrgId(u)).count();
            assert_eq!(n % 10, 0, "org {u} has {n} jobs");
        }
    }

    proptest! {
        #[test]
        fn prop_split_sums_and_floors(
            total in 5usize..200, k in 1usize..5, seed in 0u64..50
        ) {
            prop_assume!(total >= k);
            for split in [MachineSplit::Zipf(1.2), MachineSplit::Uniform, MachineSplit::Equal] {
                let c = split_machines(total, k, split, seed);
                prop_assert_eq!(c.iter().sum::<usize>(), total);
                prop_assert!(c.iter().all(|&x| x >= 1));
            }
        }
    }
}
