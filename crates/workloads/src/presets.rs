//! Per-log presets calibrated to the four Parallel Workload Archive systems
//! used in Section 7.2.
//!
//! Processor and user counts are the published figures (70 / 2560 / 8192 /
//! 3072 processors; 56 / 225 / 176 / 154 users). Load regimes and duration
//! shapes are chosen to reproduce each log's qualitative behaviour in the
//! paper's tables: PIK-IPLEX is lightly loaded (near-zero unfairness for
//! every algorithm), RICC is heavily loaded with long jobs (the largest
//! unfairness values), LPC-EGEE and SHARCNET-Whale sit in between.
//!
//! Presets can be scaled down (machines and users together, preserving the
//! load regime) so the exponential REF reference stays cheap on small
//! machines; `--paper-scale` in the bench harness uses scale 1.

use crate::synth::SynthConfig;

/// The four archive systems of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PresetName {
    /// LPC-EGEE (cleaned): 70 processors, 56 users — small EGEE cluster.
    LpcEgee,
    /// PIK-IPLEX: 2560 processors, 225 users — lightly loaded iDataPlex.
    PikIplex,
    /// RICC: 8192 processors, 176 users — heavily loaded RIKEN cluster.
    Ricc,
    /// SHARCNET-Whale: 3072 processors, 154 users.
    SharcnetWhale,
}

impl PresetName {
    /// All four presets, in the paper's table order.
    pub const ALL: [PresetName; 4] = [
        PresetName::LpcEgee,
        PresetName::PikIplex,
        PresetName::SharcnetWhale,
        PresetName::Ricc,
    ];

    /// The display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PresetName::LpcEgee => "LPC-EGEE",
            PresetName::PikIplex => "PIK-IPLEX",
            PresetName::Ricc => "RICC",
            PresetName::SharcnetWhale => "SHARCNET-Whale",
        }
    }

    /// The canonical short key used in workload spec strings
    /// (`synth:preset=<key>`); guaranteed to round-trip through
    /// [`PresetName::parse`].
    pub fn key(self) -> &'static str {
        match self {
            PresetName::LpcEgee => "lpc",
            PresetName::PikIplex => "pik",
            PresetName::Ricc => "ricc",
            PresetName::SharcnetWhale => "sharcnet",
        }
    }

    /// Parses a label (case/punctuation-insensitive). This is the **one**
    /// parsing path for preset names: the CLI `--preset` flag, the bench
    /// `--workload` flag, and the `synth` workload factory's `preset=`
    /// parameter all resolve through it, so aliases and case rules cannot
    /// drift apart.
    pub fn parse(s: &str) -> Option<PresetName> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        match norm.as_str() {
            "lpcegee" | "lpc" => Some(PresetName::LpcEgee),
            "pikiplex" | "pik" => Some(PresetName::PikIplex),
            "ricc" => Some(PresetName::Ricc),
            "sharcnetwhale" | "sharcnet" | "whale" => Some(PresetName::SharcnetWhale),
            _ => None,
        }
    }
}

/// A calibrated workload preset.
#[derive(Clone, Debug, PartialEq)]
pub struct Preset {
    /// Which archive system this models.
    pub name: PresetName,
    /// Full-scale processor count (the archive figure).
    pub full_machines: usize,
    /// Full-scale user count (the archive figure).
    pub full_users: usize,
    /// Generator configuration at the requested scale.
    pub synth: SynthConfig,
}

/// Builds a preset at `scale ∈ (0, 1]`: machines and users shrink together
/// (each at least 5 machines / 5 users), the load regime and duration shape
/// stay fixed, so queueing behaviour is preserved.
///
/// `horizon` is the submit window (the paper uses 5·10⁴ and 5·10⁵).
pub fn preset(name: PresetName, scale: f64, horizon: u64) -> Preset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let (full_machines, full_users, load, median, sigma, max_dur) = match name {
        // Small cluster, moderate load, grid-style short-to-medium jobs.
        PresetName::LpcEgee => (70, 56, 0.85, 400.0, 1.5, 40_000),
        // Large machine, light load: queues rarely form.
        PresetName::PikIplex => (2_560, 225, 0.25, 600.0, 1.3, 40_000),
        // Heavily loaded, long jobs: the hardest fairness regime.
        PresetName::Ricc => (8_192, 176, 1.1, 1_500.0, 1.6, 60_000),
        // Moderate-to-high load, medium jobs.
        PresetName::SharcnetWhale => (3_072, 154, 0.8, 800.0, 1.5, 50_000),
    };
    let machines = ((full_machines as f64 * scale).round() as usize).max(5);
    let users = ((full_users as f64 * scale).round() as usize).max(5);
    Preset {
        name,
        full_machines,
        full_users,
        synth: SynthConfig {
            n_users: users,
            horizon,
            n_machines: machines,
            load,
            duration_median: median,
            duration_sigma: sigma,
            max_duration: max_dur.min(horizon.max(2) - 1),
            ..SynthConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;

    #[test]
    fn full_scale_matches_archive_figures() {
        let p = preset(PresetName::LpcEgee, 1.0, 50_000);
        assert_eq!(p.synth.n_machines, 70);
        assert_eq!(p.synth.n_users, 56);
        let p = preset(PresetName::Ricc, 1.0, 50_000);
        assert_eq!(p.synth.n_machines, 8_192);
        assert_eq!(p.synth.n_users, 176);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let p = preset(PresetName::PikIplex, 0.01, 50_000);
        assert_eq!(p.synth.n_machines, 26);
        assert!(p.synth.n_users >= 5);
        // Load regime preserved.
        assert_eq!(p.synth.load, 0.25);
    }

    #[test]
    fn minimum_floor_applies() {
        let p = preset(PresetName::LpcEgee, 0.001, 50_000);
        assert!(p.synth.n_machines >= 5);
        assert!(p.synth.n_users >= 5);
    }

    #[test]
    fn labels_parse_roundtrip() {
        for name in PresetName::ALL {
            assert_eq!(PresetName::parse(name.label()), Some(name));
        }
        assert_eq!(PresetName::parse("nonsense"), None);
    }

    #[test]
    fn keys_and_aliases_all_resolve() {
        // The canonical spec key round-trips...
        for name in PresetName::ALL {
            assert_eq!(PresetName::parse(name.key()), Some(name));
        }
        // ...and every documented alias/case/punctuation variant lands on
        // the same preset as the canonical key (the single parsing path
        // shared by `--preset`, `--workload`, and `synth:preset=`).
        for (alias, want) in [
            ("LPC", PresetName::LpcEgee),
            ("lpc-egee", PresetName::LpcEgee),
            ("LpcEgee", PresetName::LpcEgee),
            ("PIK-IPLEX", PresetName::PikIplex),
            ("pik_iplex", PresetName::PikIplex),
            ("RICC", PresetName::Ricc),
            ("whale", PresetName::SharcnetWhale),
            ("Sharcnet", PresetName::SharcnetWhale),
            ("SHARCNET-Whale", PresetName::SharcnetWhale),
        ] {
            assert_eq!(PresetName::parse(alias), Some(want), "alias {alias:?}");
        }
    }

    #[test]
    fn presets_generate_nonempty_workloads() {
        for name in PresetName::ALL {
            let p = preset(name, 0.05, 10_000);
            let jobs = generate(&p.synth, 1);
            assert!(!jobs.is_empty(), "{name:?} generated no jobs");
        }
    }

    #[test]
    #[should_panic]
    fn scale_out_of_range_rejected() {
        let _ = preset(PresetName::Ricc, 1.5, 1000);
    }
}
