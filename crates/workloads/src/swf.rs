//! Standard Workload Format (SWF) parsing and writing.
//!
//! SWF is the Parallel Workload Archive's 18-field whitespace-separated
//! format; `;`-prefixed lines are header comments. The fields we consume:
//!
//! | # | field | use |
//! |---|---|---|
//! | 1 | job number | identity (informational) |
//! | 2 | submit time | release |
//! | 4 | run time | processing time |
//! | 5 | allocated processors | parallel width (expanded to copies) |
//! | 12 | user id | organization assignment |
//!
//! Jobs with non-positive runtime or processor counts (cancelled/failed
//! entries) are skipped, as is conventional when replaying archive logs.

use crate::assign::UserJob;
use fairsched_core::model::Time;
use std::fmt::Write as _;

/// One parsed SWF record (the subset of fields the experiments consume).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SwfJob {
    /// Job number (field 1).
    pub job_number: i64,
    /// Submit time in seconds since log start (field 2).
    pub submit: Time,
    /// Runtime in seconds (field 4).
    pub runtime: Time,
    /// Number of allocated processors (field 5).
    pub processors: u32,
    /// User id (field 12).
    pub user: u32,
}

/// Parse errors with line context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses one SWF line. `Ok(None)` for comment/blank/cancelled lines.
fn parse_line(line_no: usize, raw: &str) -> Result<Option<SwfJob>, SwfError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with(';') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 12 {
        return Err(SwfError {
            line: line_no,
            message: format!("expected at least 12 fields, found {}", fields.len()),
        });
    }
    let parse_i64 = |idx: usize| -> Result<i64, SwfError> {
        fields[idx].parse::<f64>().map(|v| v as i64).map_err(|_| SwfError {
            line: line_no,
            message: format!("field {} is not numeric: {:?}", idx + 1, fields[idx]),
        })
    };
    let job_number = parse_i64(0)?;
    let submit = parse_i64(1)?;
    let runtime = parse_i64(3)?;
    let processors = parse_i64(4)?;
    let user = parse_i64(11)?;
    if runtime <= 0 || processors <= 0 {
        return Ok(None); // cancelled / failed record
    }
    Ok(Some(SwfJob {
        job_number,
        submit: submit.max(0) as Time,
        runtime: runtime as Time,
        processors: processors as u32,
        user: user.max(0) as u32,
    }))
}

/// Parses SWF text. Comment (`;`) and blank lines are skipped; cancelled
/// jobs (non-positive runtime or processors) are dropped; malformed lines
/// are errors.
pub fn parse(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    records(text.as_bytes()).collect()
}

/// Streaming SWF reader: an iterator of records read line by line from any
/// [`BufRead`] source, so archive logs larger than RAM never materialize a
/// `Vec<SwfJob>`. Yields exactly what [`parse`] collects, in order, with
/// the same per-line errors; I/O failures mid-stream are reported as an
/// [`SwfError`] at the failing line.
pub struct SwfRecords<R: std::io::BufRead> {
    reader: R,
    line_no: usize,
    buf: String,
    done: bool,
}

/// Starts streaming records from a [`BufRead`] source. `&[u8]` (in-memory
/// text) and `std::io::BufReader<File>` both qualify.
pub fn records<R: std::io::BufRead>(reader: R) -> SwfRecords<R> {
    SwfRecords { reader, line_no: 0, buf: String::new(), done: false }
}

impl<R: std::io::BufRead> Iterator for SwfRecords<R> {
    type Item = Result<SwfJob, SwfError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => self.done = true,
                Ok(_) => match parse_line(self.line_no, &self.buf) {
                    Ok(None) => continue,
                    Ok(Some(job)) => return Some(Ok(job)),
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                },
                Err(e) => {
                    self.done = true;
                    return Some(Err(SwfError {
                        line: self.line_no,
                        message: format!("I/O error: {e}"),
                    }));
                }
            }
        }
        None
    }
}

/// Serializes records back to SWF (unused fields written as `-1`), with a
/// minimal header. `parse(write(jobs)) == jobs` for valid records.
pub fn write(jobs: &[SwfJob]) -> String {
    let mut out = String::from("; generated by fairsched-workloads\n");
    for j in jobs {
        // 18 standard fields; unknown ones are -1 per SWF convention.
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} -1 -1 1 {} -1 -1 -1 -1 -1 -1",
            j.job_number, j.submit, j.runtime, j.processors, j.processors, j.user
        );
    }
    out
}

/// Expands parallel jobs into `processors` sequential unit copies — the
/// paper's preprocessing ("we replaced parallel jobs that required q > 1
/// processors with q copies of a sequential job having the same duration")
/// — and restricts to a `[start, end)` submit window, shifting submits so
/// the window begins at 0.
pub fn to_user_jobs(jobs: &[SwfJob], start: Time, end: Time) -> Vec<UserJob> {
    let mut out = Vec::new();
    for j in jobs {
        if j.submit < start || j.submit >= end {
            continue;
        }
        for _ in 0..j.processors {
            out.push(UserJob {
                user: j.user,
                release: j.submit - start,
                proc_time: j.runtime,
            });
        }
    }
    out.sort_by_key(|u| u.release);
    out
}

/// Summary statistics of a parsed log — the quantities used to calibrate
/// the synthetic presets against real archive logs.
#[derive(Clone, Debug, PartialEq)]
pub struct SwfStats {
    /// Number of (valid) jobs.
    pub jobs: usize,
    /// Number of distinct users.
    pub users: usize,
    /// Log span: last submit − first submit.
    pub span: Time,
    /// Total work in processor-seconds (`Σ runtime · processors`).
    pub total_work: u128,
    /// Runtime percentiles (p10, p50, p90).
    pub runtime_percentiles: (Time, Time, Time),
    /// Largest processor request.
    pub max_processors: u32,
    /// Offered load against a pool of `m` processors over the span:
    /// `total_work / (m · span)`. Computed by [`SwfStats::load`].
    pub mean_processors: f64,
}

impl SwfStats {
    /// Offered load against a pool of `m` processors.
    pub fn load(&self, m: usize) -> f64 {
        if self.span == 0 || m == 0 {
            return 0.0;
        }
        self.total_work as f64 / (m as f64 * self.span as f64)
    }
}

/// Computes [`SwfStats`] for a parsed log.
pub fn stats(jobs: &[SwfJob]) -> SwfStats {
    let mut users: Vec<u32> = jobs.iter().map(|j| j.user).collect();
    users.sort_unstable();
    users.dedup();
    let first = jobs.iter().map(|j| j.submit).min().unwrap_or(0);
    let last = jobs.iter().map(|j| j.submit).max().unwrap_or(0);
    let mut runtimes: Vec<Time> = jobs.iter().map(|j| j.runtime).collect();
    runtimes.sort_unstable();
    let pct = |p: f64| -> Time {
        if runtimes.is_empty() {
            0
        } else {
            runtimes[((runtimes.len() - 1) as f64 * p) as usize]
        }
    };
    let total_procs: u64 = jobs.iter().map(|j| j.processors as u64).sum();
    SwfStats {
        jobs: jobs.len(),
        users: users.len(),
        span: last - first,
        total_work: jobs.iter().map(|j| j.runtime as u128 * j.processors as u128).sum(),
        runtime_percentiles: (pct(0.1), pct(0.5), pct(0.9)),
        max_processors: jobs.iter().map(|j| j.processors).max().unwrap_or(0),
        mean_processors: if jobs.is_empty() {
            0.0
        } else {
            total_procs as f64 / jobs.len() as f64
        },
    }
}

/// Errors from the streaming log → trace path.
#[derive(Debug)]
pub enum SwfStreamError {
    /// Opening the log failed.
    Io {
        /// The path that failed to open.
        path: String,
        /// The underlying I/O message.
        message: String,
    },
    /// A line failed to parse (or the stream failed mid-read).
    Parse(SwfError),
    /// The submit window selected no jobs.
    EmptyWindow,
    /// The assembled trace failed validation.
    Trace(fairsched_core::model::TraceError),
}

impl std::fmt::Display for SwfStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfStreamError::Io { path, message } => {
                write!(f, "cannot open {path}: {message}")
            }
            SwfStreamError::Parse(e) => write!(f, "{e}"),
            SwfStreamError::EmptyWindow => {
                write!(f, "submit window selects no jobs")
            }
            SwfStreamError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SwfStreamError {}

impl From<SwfError> for SwfStreamError {
    fn from(e: SwfError) -> Self {
        SwfStreamError::Parse(e)
    }
}

/// Streams an SWF log at `path` straight into a [`Trace`] without ever
/// materializing a `Vec<SwfJob>` or `Vec<UserJob>`: pass one collects the
/// distinct user set inside the submit window (enough to reproduce
/// [`UserAssignment`] exactly, since the assignment depends only on the
/// user set), pass two feeds each windowed record's processor copies to
/// [`TraceBuilder`](fairsched_core::model::TraceBuilder) directly. Peak
/// memory is O(users + output jobs), independent of log length, and the
/// result is identical to the materializing
/// `parse` → `to_user_jobs` → `to_trace` pipeline.
pub fn stream_trace(
    path: &str,
    start: Time,
    end: Time,
    k: usize,
    total_machines: usize,
    split: crate::assign::MachineSplit,
    seed: u64,
) -> Result<fairsched_core::model::Trace, SwfStreamError> {
    use crate::assign::{split_machines, UserAssignment};

    let open = |p: &str| {
        std::fs::File::open(p).map(std::io::BufReader::new).map_err(|e| {
            SwfStreamError::Io { path: p.to_string(), message: e.to_string() }
        })
    };
    let in_window = |j: &SwfJob| j.submit >= start && j.submit < end;

    // Pass 1: the windowed user set (duplicates fine — `UserAssignment`
    // sorts and dedups).
    let mut users: Vec<u32> = Vec::new();
    for rec in records(open(path)?) {
        let j = rec?;
        if in_window(&j) {
            users.push(j.user);
        }
    }
    if users.is_empty() {
        return Err(SwfStreamError::EmptyWindow);
    }
    let assignment = UserAssignment::new(users, k, seed);
    let machines = split_machines(total_machines, k, split, seed);

    // Pass 2: feed the builder. The builder's stable sort by release puts
    // equal-release jobs in file order — exactly what the materializing
    // path's pre-sorted `Vec<UserJob>` produces, so traces are identical.
    let mut b = fairsched_core::model::Trace::builder();
    let orgs: Vec<_> =
        machines.iter().enumerate().map(|(i, &m)| b.org(format!("org{i}"), m)).collect();
    for rec in records(open(path)?) {
        let j = rec?;
        if !in_window(&j) {
            continue;
        }
        // Every windowed user was collected in pass 1; a miss means the
        // file changed between the two reads — report it, don't panic.
        let Some(slot) = assignment.org_of(j.user) else {
            return Err(SwfStreamError::Parse(SwfError {
                line: 0,
                message: format!(
                    "user {} appeared only on the second pass (file changed mid-read?)",
                    j.user
                ),
            }));
        };
        let org = orgs[slot];
        for _ in 0..j.processors {
            b.job(org, j.submit - start, j.runtime);
        }
    }
    b.build().map_err(SwfStreamError::Trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Test cluster
1 0 10 100 2 -1 -1 2 -1 -1 1 7 1 -1 1 -1 -1 -1
2 50 5 200 1 -1 -1 1 -1 -1 1 3 1 -1 1 -1 -1 -1
3 60 0 -1 4 -1 -1 4 -1 -1 0 9 1 -1 1 -1 -1 -1
4 70 2 30 1 -1 -1 1 -1 -1 1 7 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_and_skips_cancelled() {
        let jobs = parse(SAMPLE).unwrap();
        // Job 3 has runtime -1: skipped.
        assert_eq!(jobs.len(), 3);
        assert_eq!(
            jobs[0],
            SwfJob { job_number: 1, submit: 0, runtime: 100, processors: 2, user: 7 }
        );
        assert_eq!(jobs[1].user, 3);
        assert_eq!(jobs[2].submit, 70);
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("12 fields"));
    }

    #[test]
    fn rejects_non_numeric() {
        let bad = "1 0 10 abc 2 -1 -1 2 -1 -1 1 7\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("not numeric"));
    }

    #[test]
    fn accepts_float_fields() {
        // Some archive logs carry float runtimes.
        let jobs = parse("1 0 10 99.5 2 -1 -1 2 -1 -1 1 7\n").unwrap();
        assert_eq!(jobs[0].runtime, 99);
    }

    #[test]
    fn roundtrip_write_parse() {
        let jobs = parse(SAMPLE).unwrap();
        let text = write(&jobs);
        let again = parse(&text).unwrap();
        assert_eq!(jobs, again);
    }

    #[test]
    fn expands_parallel_jobs() {
        let jobs = parse(SAMPLE).unwrap();
        let user_jobs = to_user_jobs(&jobs, 0, 1_000);
        // Job 1 (2 procs) -> 2 copies; jobs 2, 4 -> 1 each.
        assert_eq!(user_jobs.len(), 4);
        assert_eq!(user_jobs.iter().filter(|u| u.user == 7).count(), 3);
    }

    #[test]
    fn window_restricts_and_shifts() {
        let jobs = parse(SAMPLE).unwrap();
        let user_jobs = to_user_jobs(&jobs, 50, 60);
        assert_eq!(user_jobs.len(), 1);
        assert_eq!(user_jobs[0].release, 0); // shifted by window start
        assert_eq!(user_jobs[0].user, 3);
    }

    #[test]
    fn empty_input() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("; only comments\n").unwrap().is_empty());
    }

    #[test]
    fn stats_summary() {
        let jobs = parse(SAMPLE).unwrap();
        let s = stats(&jobs);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.users, 2); // users 7 and 3
        assert_eq!(s.span, 70);
        assert_eq!(s.total_work, 100 * 2 + 200 + 30);
        assert_eq!(s.max_processors, 2);
        assert_eq!(s.runtime_percentiles.1, 100); // median of {30,100,200}
        assert!(s.load(4) > 0.0);
        assert_eq!(s.load(0), 0.0);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.load(10), 0.0);
    }

    #[test]
    fn records_iterator_matches_parse() {
        let streamed: Vec<SwfJob> =
            records(SAMPLE.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(streamed, parse(SAMPLE).unwrap());
        // Errors carry the same 1-based line numbers as `parse`.
        let bad = "; header\n1 2 3\n";
        let stream_err =
            records(bad.as_bytes()).find_map(Result::err).expect("short line must error");
        assert_eq!(stream_err, parse(bad).unwrap_err());
        assert_eq!(stream_err.line, 2);
    }

    #[test]
    fn records_iterator_stops_after_error() {
        let bad = "1 2 3\n1 0 10 100 2 -1 -1 2 -1 -1 1 7\n";
        let items: Vec<_> = records(bad.as_bytes()).collect();
        assert_eq!(items.len(), 1, "iterator must fuse after an error");
        assert!(items[0].is_err());
    }

    /// The streaming two-pass ingestion must produce the *identical* trace
    /// to the materializing parse → to_user_jobs → to_trace pipeline — the
    /// `swf:` workload family's byte-for-byte determinism contract.
    #[test]
    fn stream_trace_matches_materialized_pipeline() {
        use crate::assign::{to_trace, MachineSplit};

        let path = crate::spec::sample_swf_path();
        let text = std::fs::read_to_string(path).unwrap();
        for seed in [0u64, 1, 42] {
            for (start, end) in [(0, Time::MAX), (0, 80), (50, 500)] {
                for split in
                    [MachineSplit::Equal, MachineSplit::Zipf(1.0), MachineSplit::Uniform]
                {
                    let streamed =
                        stream_trace(path, start, end, 2, 8, split, seed).unwrap();
                    let records = parse(&text).unwrap();
                    let jobs = to_user_jobs(&records, start, end);
                    let materialized = to_trace(&jobs, 2, 8, split, seed).unwrap();
                    assert_eq!(
                        streamed, materialized,
                        "streamed and materialized traces diverged \
                         (seed {seed}, window [{start}, {end}))"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_trace_typed_errors() {
        use crate::assign::MachineSplit;
        let missing = stream_trace(
            "/definitely/not/here.swf",
            0,
            Time::MAX,
            2,
            4,
            MachineSplit::Equal,
            0,
        );
        assert!(matches!(missing, Err(SwfStreamError::Io { .. })));
        let empty = stream_trace(
            crate::spec::sample_swf_path(),
            1_000_000,
            Time::MAX,
            2,
            4,
            MachineSplit::Equal,
            0,
        );
        assert!(matches!(empty, Err(SwfStreamError::EmptyWindow)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A strategy over valid SWF records (positive runtime/processors,
        /// the subset `write` can represent and `parse` keeps).
        fn jobs_strategy() -> impl Strategy<Value = Vec<SwfJob>> {
            collection::vec(
                (0i64..100_000, 0u64..1_000_000, 1u64..100_000, 1u32..256, 0u32..5_000)
                    .prop_map(|(job_number, submit, runtime, processors, user)| SwfJob {
                        job_number,
                        submit,
                        runtime,
                        processors,
                        user,
                    }),
                1..25,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `parse ∘ write` is the identity on valid record sets.
            #[test]
            fn parse_write_identity(jobs in jobs_strategy()) {
                let text = write(&jobs);
                let again = parse(&text);
                prop_assert_eq!(again.as_ref().ok(), Some(&jobs), "parse failed or diverged");
            }

            /// `write ∘ parse` is the identity on canonical text (writing
            /// is a fixpoint).
            #[test]
            fn write_parse_identity_on_canonical_text(jobs in jobs_strategy()) {
                let text = write(&jobs);
                let reparsed = parse(&text).unwrap();
                prop_assert_eq!(write(&reparsed), text);
            }

            /// A malformed line anywhere in an otherwise valid log is
            /// reported with its exact 1-based line number and a reason
            /// naming the defect — comments and valid records around it
            /// must not shift the count.
            #[test]
            fn malformed_line_reports_position_and_reason(
                jobs in jobs_strategy(),
                at in 0usize..26,
                kind in 0u8..2,
            ) {
                let mut lines: Vec<String> =
                    write(&jobs).lines().map(str::to_string).collect();
                let idx = at.min(lines.len());
                let (bad, needle) = match kind {
                    0 => ("1 2 3".to_string(), "12 fields"),
                    _ => (
                        "1 0 10 oops 2 -1 -1 2 -1 -1 1 7".to_string(),
                        "not numeric",
                    ),
                };
                lines.insert(idx, bad);
                let text = lines.join("\n");
                let err = parse(&text).expect_err("malformed line must error");
                prop_assert_eq!(err.line, idx + 1, "wrong line number: {}", err);
                prop_assert!(
                    err.message.contains(needle),
                    "reason {:?} should mention {:?}", err.message, needle
                );
                prop_assert!(
                    err.to_string().contains(&format!("line {}", idx + 1)),
                    "Display must carry the line number: {}", err
                );
            }

            /// Cancelled records (non-positive runtime or processors) are
            /// skipped silently wherever they appear, never errors.
            #[test]
            fn cancelled_records_are_skipped_not_errors(
                jobs in jobs_strategy(),
                at in 0usize..26,
            ) {
                let mut lines: Vec<String> =
                    write(&jobs).lines().map(str::to_string).collect();
                let idx = at.min(lines.len());
                lines.insert(idx, "99 10 0 -1 4 -1 -1 4 -1 -1 0 9".to_string());
                let parsed = parse(&lines.join("\n")).unwrap();
                prop_assert_eq!(parsed, jobs);
            }
        }
    }
}
