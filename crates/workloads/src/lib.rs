//! Workload substrate for the fair-scheduling experiments.
//!
//! The paper's evaluation (Section 7.2) replays four logs from the Parallel
//! Workload Archive — LPC-EGEE, PIK-IPLEX, RICC and SHARCNET-Whale — with
//! parallel jobs expanded into sequential copies, user identifiers
//! distributed uniformly over organizations, and machines split between
//! organizations by Zipf or uniform counts.
//!
//! The archive logs themselves are external data; this crate supplies both
//! halves of the substitution documented in DESIGN.md:
//!
//! * [`swf`] — a full parser/writer for the Standard Workload Format, so
//!   real archive logs can be dropped in unchanged, and
//! * [`synth`] — seeded synthetic generators reproducing the statistical
//!   shape the experiments depend on (bursty per-user sessions, Zipf user
//!   activity, heavy-tailed durations, tunable load), with per-log
//!   [`presets`] matching the four systems' published scale (processors,
//!   users) and load regime.
//!
//! [`assign`] converts either source into a multi-organization
//! [`fairsched_core::Trace`]: users → organizations uniformly, machines →
//! organizations by Zipf/uniform/equal splits.
//!
//! # Spec-addressable workloads
//!
//! Every workload is reachable by a **spec string** through
//! [`spec::WorkloadRegistry`], mirroring the scheduler registry — so an
//! experiment matrix (workloads × schedulers) is pure data:
//!
//! | spec | meaning |
//! |---|---|
//! | `synth:preset=ricc,scale=0.5,orgs=8` | synthetic RICC-shaped workload at half scale, 8 organizations |
//! | `synth:preset=lpc,scale=0.1,split=uniform` | LPC-EGEE shape, machines split uniformly instead of Zipf |
//! | `swf:path=/logs/lpc.swf,start=0,end=86400` | replay the first day of a real archive log |
//! | `fpt:k=8` | the lattice-bench FPT growth family at 8 organizations |
//! | `trace:path=/scenarios/burst.json` | replay a serialized trace verbatim ([`spec::write_trace_json`] exports one) |
//!
//! ```
//! use fairsched_workloads::spec::{WorkloadContext, WorkloadRegistry};
//!
//! let trace = WorkloadRegistry::shared()
//!     .build_str("synth:horizon=1500,orgs=3,preset=lpc,scale=0.08",
//!                &WorkloadContext { seed: 7 })
//!     .unwrap();
//! assert_eq!(trace.n_orgs(), 3);
//! ```
//!
//! The grammar (`name[:key=value,...]`, sorted canonical parameters,
//! `Display`/`FromStr` round-tripping exactly) is shared with scheduler
//! specs via [`fairsched_core::spec`]. See [`spec`] for the full parameter
//! tables and the [`spec::WorkloadFactory`] registration surface; every
//! registered factory — built-in or downstream — is exercised by the
//! workspace conformance suite (`tests/workload_conformance.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod presets;
pub mod spec;
pub mod swf;
pub mod synth;

pub use assign::{to_trace, MachineSplit, UserJob};
pub use presets::{preset, Preset, PresetName};
pub use spec::{
    synth_spec, trace_to_json, write_trace_json, WorkloadContext, WorkloadError,
    WorkloadFactory, WorkloadRegistry, WorkloadSpec,
};
pub use synth::{generate, SynthConfig};
