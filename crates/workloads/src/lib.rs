//! Workload substrate for the fair-scheduling experiments.
//!
//! The paper's evaluation (Section 7.2) replays four logs from the Parallel
//! Workload Archive — LPC-EGEE, PIK-IPLEX, RICC and SHARCNET-Whale — with
//! parallel jobs expanded into sequential copies, user identifiers
//! distributed uniformly over organizations, and machines split between
//! organizations by Zipf or uniform counts.
//!
//! The archive logs themselves are external data; this crate supplies both
//! halves of the substitution documented in DESIGN.md:
//!
//! * [`swf`] — a full parser/writer for the Standard Workload Format, so
//!   real archive logs can be dropped in unchanged, and
//! * [`synth`] — seeded synthetic generators reproducing the statistical
//!   shape the experiments depend on (bursty per-user sessions, Zipf user
//!   activity, heavy-tailed durations, tunable load), with per-log
//!   [`presets`] matching the four systems' published scale (processors,
//!   users) and load regime.
//!
//! [`assign`] converts either source into a multi-organization
//! [`fairsched_core::Trace`]: users → organizations uniformly, machines →
//! organizations by Zipf/uniform/equal splits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod presets;
pub mod swf;
pub mod synth;

pub use assign::{to_trace, MachineSplit, UserJob};
pub use presets::{preset, Preset, PresetName};
pub use synth::{generate, SynthConfig};
