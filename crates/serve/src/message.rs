//! Queue messages: the typed control-plane vocabulary and its JSON codec.
//!
//! Every file in `queue/inbox/` is one [`Message`], tagged by a `"type"`
//! field. The codec is hand-written over the workspace serde facade's
//! [`Value`] tree so malformed submissions surface as rendered strings
//! (which the daemon journals as rejections) rather than panics.

use fairsched_core::model::Time;
use serde::{Deserialize, Serialize, Value};

/// One control-plane message, as dropped into `queue/inbox/` and archived
/// (verbatim) under `queue/accepted/`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Admit a job into the running trace: the online arrival.
    Submit {
        /// The submitting organization, by trace index.
        org: u32,
        /// Release time (must be strictly after the stepped-to mark).
        release: Time,
        /// Processing time (must be positive).
        proc_time: Time,
        /// Optional deadline (for the tardiness utility).
        deadline: Option<Time>,
    },
    /// Advance the engine's event loop to a time high-water mark.
    Advance {
        /// The new stepped-to mark.
        until: Time,
    },
    /// Drain, snapshot, finalize, and exit the daemon loop.
    Stop,
}

impl Message {
    /// The message as a JSON value tree (tagged by `"type"`).
    pub fn to_value(&self) -> Value {
        match self {
            Message::Submit { org, release, proc_time, deadline } => Value::Object(vec![
                ("type".to_string(), Value::String("submit".to_string())),
                ("org".to_string(), org.to_value()),
                ("release".to_string(), release.to_value()),
                ("proc_time".to_string(), proc_time.to_value()),
                ("deadline".to_string(), deadline.to_value()),
            ]),
            Message::Advance { until } => Value::Object(vec![
                ("type".to_string(), Value::String("advance".to_string())),
                ("until".to_string(), until.to_value()),
            ]),
            Message::Stop => Value::Object(vec![(
                "type".to_string(),
                Value::String("stop".to_string()),
            )]),
        }
    }

    /// Compact JSON rendering (one message per queue file).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Decodes a message from a JSON value tree.
    ///
    /// # Errors
    /// A rendered description of what was malformed (unknown `"type"`,
    /// missing or mistyped fields).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let tag: String =
            serde::field(v, "type", "Message").map_err(|e| e.to_string())?;
        match tag.as_str() {
            "submit" => Ok(Message::Submit {
                org: field(v, "org")?,
                release: field(v, "release")?,
                proc_time: field(v, "proc_time")?,
                deadline: field(v, "deadline")?,
            }),
            "advance" => Ok(Message::Advance { until: field(v, "until")? }),
            "stop" => Ok(Message::Stop),
            other => Err(format!(
                "unknown message type {other:?} (expected submit|advance|stop)"
            )),
        }
    }

    /// Decodes a message from JSON text.
    ///
    /// # Errors
    /// A rendered description of the parse or shape failure.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }
}

fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, String> {
    serde::field(v, name, "Message").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let messages = [
            Message::Submit { org: 2, release: 7, proc_time: 3, deadline: None },
            Message::Submit { org: 0, release: 1, proc_time: 1, deadline: Some(9) },
            Message::Advance { until: 40 },
            Message::Stop,
        ];
        for m in messages {
            assert_eq!(Message::from_json(&m.to_json()).as_ref(), Ok(&m), "{m:?}");
        }
    }

    #[test]
    fn rejects_malformed_with_rendered_reason() {
        assert!(Message::from_json("{oops").is_err());
        assert!(Message::from_json(r#"{"type":"warp"}"#)
            .is_err_and(|e| e.contains("unknown message type")));
        assert!(Message::from_json(r#"{"type":"submit","org":1}"#).is_err());
        assert!(Message::from_json(r#"{"type":"advance"}"#).is_err());
    }
}
