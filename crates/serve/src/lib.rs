//! # fairsched-serve — the online scheduling daemon
//!
//! The batch engine answers "what would the fair schedule have been";
//! this crate answers "what is it *now*": a daemon that owns a resumable
//! [`fairsched_sim::SimSession`], accepts jobs while the clock runs, and
//! survives `kill -9` without changing a byte of the schedule it builds.
//!
//! Three pieces, each std-only (no async runtime, no network deps):
//!
//! * [`SubmissionQueue`] — a journaled file queue under
//!   `dir/queue/{inbox,accepted,results}/`. Producers commit messages
//!   into the inbox with the shared write-then-rename idiom
//!   ([`fairsched_core::journal`]); the daemon renames them into the
//!   `accepted/` journal, which assigns the total order everything else
//!   replays.
//! * [`Daemon`] — the control loop: drain inbox → apply to session →
//!   write result → snapshot. Recovery is *journal ∘ snapshot = state*:
//!   restore the snapshot, replay the accepted tail, continue.
//! * [`HttpServer`] — a minimal `std::net` listener serving the cached
//!   [`Endpoints`] documents (`GET /status`, `/report`, `/series`).
//!
//! Driven by `fairsched serve --dir D` and `fairsched submit --dir D …`;
//! see `docs/SERVE.md` for the protocol and an end-to-end walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod message;
pub mod queue;

pub use daemon::{Daemon, ServeConfig, ServeError, CONFIG_SCHEMA, SNAPSHOT_SCHEMA};
pub use http::{Endpoints, HttpServer};
pub use message::Message;
pub use queue::SubmissionQueue;
