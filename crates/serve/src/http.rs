//! The live status endpoint: a minimal `std::net` HTTP/1.1 server.
//!
//! [`SimSession`](fairsched_sim::SimSession) holds a `Box<dyn Scheduler>`
//! without a `Send` bound, so the session cannot cross into a listener
//! thread. The daemon therefore renders its three JSON documents
//! *eagerly* after every drain into a shared [`Endpoints`] cell, and the
//! listener thread serves those cached strings — `GET` never touches the
//! engine, and a slow client can never stall a drain.
//!
//! Routes (all `GET`, all `application/json`):
//!
//! * `/status` — scheduler/workload/seed identity plus live counters;
//! * `/report` — the default metric set evaluated at the stepped-to mark;
//! * `/series` — the ψ_sp timeline from the streaming series sweep.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The three cached JSON documents the listener serves. The daemon
/// rewrites them after every drain; requests read them under the lock.
#[derive(Clone, Debug, Default)]
pub struct Endpoints {
    /// The `/status` document.
    pub status: String,
    /// The `/report` document.
    pub report: String,
    /// The `/series` document.
    pub series: String,
}

/// A running listener thread. Dropping without [`stop`](Self::stop)
/// leaves the thread running until process exit (the daemon always
/// stops it explicitly on shutdown).
#[derive(Debug)]
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the listener thread serving `endpoints`.
    pub fn start(
        bind: &str,
        endpoints: Arc<Mutex<Endpoints>>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream, &endpoints),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(_) => {
                        // Transient accept failure; keep listening.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
            }
        });
        Ok(HttpServer { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (the daemon writes it to `http.txt` so scripts
    /// can discover an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals the listener thread and joins it.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one request (header section only, capped) and writes one
/// response. Any socket error just drops the connection — the protocol
/// is read-only and the next poll retries.
fn serve_one(mut stream: std::net::TcpStream, endpoints: &Arc<Mutex<Endpoints>>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let body = if method != "GET" {
        None
    } else {
        let docs = endpoints.lock().unwrap_or_else(|e| e.into_inner());
        match path {
            "/status" => Some(docs.status.clone()),
            "/report" => Some(docs.report.clone()),
            "/series" => Some(docs.series.clone()),
            _ => None,
        }
    };
    let response = match body {
        Some(body) => format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
        None => {
            let body = "{\"error\":\"not found\"}";
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            )
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_cached_documents_and_404s_unknown_paths() {
        let endpoints = Arc::new(Mutex::new(Endpoints {
            status: "{\"ok\":1}".to_string(),
            report: "{\"ok\":2}".to_string(),
            series: "{\"ok\":3}".to_string(),
        }));
        let server = HttpServer::start("127.0.0.1:0", Arc::clone(&endpoints)).unwrap();
        let addr = server.addr();

        let status = get(addr, "/status");
        assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
        assert!(status.ends_with("{\"ok\":1}"), "{status}");
        assert!(get(addr, "/report").ends_with("{\"ok\":2}"));
        assert!(get(addr, "/series").ends_with("{\"ok\":3}"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        // The daemon refreshes the cell; the next request sees it.
        endpoints.lock().unwrap().status = "{\"ok\":9}".to_string();
        assert!(get(addr, "/status").ends_with("{\"ok\":9}"));

        server.stop();
    }
}
