//! The journaled submission queue: three directories under the serve
//! root, each file one message, every transition an atomic rename.
//!
//! ```text
//! <dir>/queue/inbox/     <stamp>.json      dropped by `fairsched submit`
//! <dir>/queue/accepted/  seq-000042.json   renamed in by the daemon (the journal)
//! <dir>/queue/results/   seq-000042.json   outcome, written atomically
//! ```
//!
//! The protocol's durability argument:
//!
//! * **Submission** stages through a `.json.tmp` scratch and
//!   commit-renames into `inbox/` ([`fairsched_core::journal`]), so the
//!   daemon never observes a torn submission — a file is either complete
//!   or invisible.
//! * **Acceptance** is a single rename `inbox/<stamp>.json →
//!   accepted/seq-NNNNNN.json`. The sequence number assigns the total
//!   order; the `accepted/` directory *is* the replay journal.
//! * **Results** are written atomically and rewritten idempotently on
//!   replay, so a crash between acceptance and result costs nothing: the
//!   restart replays the accepted tail and reproduces the same result
//!   bytes (engine determinism).

use crate::message::Message;
use fairsched_core::journal::{atomic_write, commit_scratch, write_scratch, FsError};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Width of the zero-padded sequence number in journal file names
/// (`seq-000042.json`): lexicographic order equals numeric order.
const SEQ_WIDTH: usize = 6;

/// Where a submission stamp's leading component comes from.
///
/// Inbox stamps only *pre-order* submissions — the daemon's acceptance
/// rename assigns the journal sequence number, which is the replayed
/// total order — so a wall-clock default is sound in production. Tests
/// (and any caller wanting reproducible inbox file names) inject a
/// deterministic counter instead.
#[derive(Clone, Debug)]
pub enum StampSource {
    /// Zero-padded nanoseconds since the Unix epoch (production default).
    WallClock,
    /// A shared monotonically increasing counter: stamps are a pure
    /// function of submission count.
    Counter(Arc<AtomicU64>),
}

impl StampSource {
    /// A fresh deterministic counter source starting at zero.
    pub fn counter() -> Self {
        StampSource::Counter(Arc::new(AtomicU64::new(0)))
    }

    /// The next leading stamp component.
    fn next_lead(&self) -> u128 {
        match self {
            StampSource::WallClock => {
                // lint:allow(determinism) wall time only pre-orders inbox files; the journal seq assigned at acceptance is the replayed total order
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap_or(std::time::Duration::ZERO)
                    .as_nanos()
            }
            StampSource::Counter(c) => u128::from(c.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

/// Handle on the three queue directories. Cheap to construct; all state
/// lives on disk.
#[derive(Clone, Debug)]
pub struct SubmissionQueue {
    inbox: PathBuf,
    accepted: PathBuf,
    results: PathBuf,
    stamps: StampSource,
}

impl SubmissionQueue {
    /// Opens (creating if needed) the queue under `dir/queue/` with
    /// wall-clock submission stamps.
    pub fn open(dir: &Path) -> Result<Self, FsError> {
        Self::open_with_stamps(dir, StampSource::WallClock)
    }

    /// [`SubmissionQueue::open`] with an explicit [`StampSource`].
    pub fn open_with_stamps(dir: &Path, stamps: StampSource) -> Result<Self, FsError> {
        let root = dir.join("queue");
        let queue = SubmissionQueue {
            inbox: root.join("inbox"),
            accepted: root.join("accepted"),
            results: root.join("results"),
            stamps,
        };
        for d in [&queue.inbox, &queue.accepted, &queue.results] {
            std::fs::create_dir_all(d).map_err(|e| FsError::new("create-dir", d, &e))?;
        }
        Ok(queue)
    }

    /// Drops a message into the inbox (scratch write + commit rename) and
    /// returns its path. Safe to call from any process while a daemon is
    /// draining: the daemon only sees the committed `.json`, never the
    /// `.json.tmp` scratch.
    pub fn submit(&self, message: &Message) -> Result<PathBuf, FsError> {
        let stamp = submission_stamp(&self.stamps);
        let mut bump = 0u32;
        let target = loop {
            let name = if bump == 0 {
                format!("{stamp}.json")
            } else {
                format!("{stamp}-{bump}.json")
            };
            let candidate = self.inbox.join(name);
            if !candidate.exists() {
                break candidate;
            }
            bump = bump.saturating_add(1);
        };
        let tmp = write_scratch(&target, &message.to_json())?;
        commit_scratch(&tmp, &target)?;
        Ok(target)
    }

    /// Committed inbox entries (`*.json`, scratches excluded), sorted by
    /// file name — submission-stamp order, which the daemon turns into
    /// sequence order.
    pub fn pending(&self) -> Result<Vec<PathBuf>, FsError> {
        let mut entries = list_json(&self.inbox)?;
        entries.sort();
        Ok(entries)
    }

    /// The journal path of sequence number `seq`.
    pub fn accepted_path(&self, seq: u64) -> PathBuf {
        self.accepted.join(format!("seq-{seq:0SEQ_WIDTH$}.json"))
    }

    /// Accepts an inbox file as sequence number `seq`: the single rename
    /// that commits the message into the journal.
    pub fn accept(&self, from: &Path, seq: u64) -> Result<PathBuf, FsError> {
        let to = self.accepted_path(seq);
        std::fs::rename(from, &to).map_err(|e| FsError::new("rename", &to, &e))?;
        Ok(to)
    }

    /// Journal entries with sequence number strictly greater than
    /// `after`, in sequence order — the replay tail on restart.
    pub fn accepted_after(&self, after: u64) -> Result<Vec<(u64, PathBuf)>, FsError> {
        let mut tail: Vec<(u64, PathBuf)> = list_json(&self.accepted)?
            .into_iter()
            .filter_map(|p| parse_seq(&p).map(|seq| (seq, p)))
            .filter(|(seq, _)| *seq > after)
            .collect();
        tail.sort();
        Ok(tail)
    }

    /// The highest sequence number in the journal, if any.
    pub fn max_accepted_seq(&self) -> Result<Option<u64>, FsError> {
        Ok(list_json(&self.accepted)?.iter().filter_map(|p| parse_seq(p)).max())
    }

    /// The result path of sequence number `seq`.
    pub fn result_path(&self, seq: u64) -> PathBuf {
        self.results.join(format!("seq-{seq:0SEQ_WIDTH$}.json"))
    }

    /// Writes (or idempotently rewrites, on replay) the outcome of
    /// sequence number `seq`.
    pub fn write_result(&self, seq: u64, outcome: &Value) -> Result<(), FsError> {
        atomic_write(&self.result_path(seq), &outcome.to_json_pretty())
    }
}

/// A lexicographically ordered, collision-resistant inbox stamp: the
/// zero-padded [`StampSource`] lead (nanoseconds since the epoch, or a
/// deterministic counter), a process-local monotonic counter (so two
/// submissions with the same lead still sort in submission order — the
/// wall clock is coarser than a `submit` call), and the submitter's pid.
fn submission_stamp(stamps: &StampSource) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let lead = stamps.next_lead();
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{lead:020}-{count:06}-{}", std::process::id())
}

/// Committed `.json` files directly under `dir` (scratch `.json.tmp`
/// files have extension `tmp` and are excluded).
fn list_json(dir: &Path) -> Result<Vec<PathBuf>, FsError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| FsError::new("read-dir", dir, &e))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| FsError::new("read-dir", dir, &e))?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "json") {
            paths.push(path);
        }
    }
    Ok(paths)
}

/// `seq-000042.json` → `Some(42)`; anything else → `None`.
fn parse_seq(path: &Path) -> Option<u64> {
    path.file_name()?.to_str()?.strip_prefix("seq-")?.strip_suffix(".json")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairsched-serve-queue-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_accept_result_lifecycle() {
        let dir = temp_dir("lifecycle");
        let q = SubmissionQueue::open(&dir).unwrap();
        let first = q
            .submit(&Message::Submit { org: 0, release: 3, proc_time: 2, deadline: None })
            .unwrap();
        let second = q.submit(&Message::Advance { until: 10 }).unwrap();
        assert_ne!(first, second, "stamps must not collide");

        let pending = q.pending().unwrap();
        assert_eq!(pending, vec![first.clone(), second.clone()]);

        let journal = q.accept(&first, 1).unwrap();
        assert_eq!(journal, q.accepted_path(1));
        assert_eq!(q.pending().unwrap(), vec![second.clone()]);
        q.accept(&second, 2).unwrap();

        assert_eq!(q.max_accepted_seq().unwrap(), Some(2));
        let tail = q.accepted_after(1).unwrap();
        assert_eq!(tail, vec![(2, q.accepted_path(2))]);
        let text = std::fs::read_to_string(q.accepted_path(2)).unwrap();
        assert_eq!(Message::from_json(&text), Ok(Message::Advance { until: 10 }));

        q.write_result(1, &Value::Bool(true)).unwrap();
        q.write_result(1, &Value::Bool(true)).unwrap(); // idempotent rewrite
        assert!(q.result_path(1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_stamps_are_deterministic_and_ordered() {
        let dir = temp_dir("counter-stamps");
        let q = SubmissionQueue::open_with_stamps(&dir, StampSource::counter()).unwrap();
        let first = q.submit(&Message::Advance { until: 1 }).unwrap();
        let second = q.submit(&Message::Advance { until: 2 }).unwrap();
        let name = |p: &PathBuf| p.file_name().unwrap().to_str().unwrap().to_string();
        // The lead component is the injected counter, not wall time:
        // submission 0 then 1, zero-padded to sort lexicographically.
        assert!(name(&first).starts_with("00000000000000000000-"), "{first:?}");
        assert!(name(&second).starts_with("00000000000000000001-"), "{second:?}");
        assert_eq!(q.pending().unwrap(), vec![first, second]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scratch_files_are_invisible_to_pending() {
        let dir = temp_dir("scratch");
        let q = SubmissionQueue::open(&dir).unwrap();
        std::fs::write(dir.join("queue/inbox/123.json.tmp"), "{torn").unwrap();
        assert!(q.pending().unwrap().is_empty());
        assert_eq!(q.max_accepted_seq().unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
