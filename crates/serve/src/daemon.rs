//! The serving daemon: a [`SimSession`] wrapped in a crash-safe control
//! loop over the [`SubmissionQueue`].
//!
//! State on disk (all JSON, all committed atomically):
//!
//! * `config.json` — workload/scheduler/seed identity, written once at
//!   init; reopening with a different identity is refused.
//! * `queue/accepted/` — the journal: the totally-ordered message log
//!   (owned by [`SubmissionQueue`]).
//! * `snapshot.json` — `{schema, applied_seq, session}`: the session's
//!   replay-based snapshot plus the journal position it covers. Written
//!   after every drain.
//! * `trace.json`, `schedule.json` — the finalized run, written by
//!   [`Daemon::finalize`] on clean shutdown.
//!
//! The recovery invariant: **journal ∘ snapshot = state**. On open, the
//! daemon restores the snapshot (or starts fresh from `config.json`) and
//! replays the accepted tail `seq > applied_seq`. Because the engine is
//! deterministic and results are rewritten idempotently, a `kill -9`
//! anywhere — before acceptance, between acceptance and result, between
//! result and snapshot — loses nothing and changes no byte of the final
//! schedule (the headline integration test drives exactly this).

use crate::http::Endpoints;
use crate::message::Message;
use crate::queue::SubmissionQueue;
use fairsched_core::fairness::{schedule_series, timeline_sample_times};
use fairsched_core::journal::{atomic_write, FsError};
use fairsched_core::model::OrgId;
use fairsched_sim::{
    MetricRegistry, MetricSpec, Report, SimError, SimSession, Simulation,
    DEFAULT_REPORT_METRICS,
};
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The schema tag of `config.json`.
pub const CONFIG_SCHEMA: &str = "fairsched-serve-config/v1";
/// The schema tag of `snapshot.json`.
pub const SNAPSHOT_SCHEMA: &str = "fairsched-serve-snapshot/v1";
/// Sample count for the `/series` endpoint's ψ_sp timeline.
const SERIES_SAMPLES: usize = 64;

/// Everything that can go wrong in the serve layer.
#[derive(Debug)]
pub enum ServeError {
    /// The engine or scheduler failed (typed, from `fairsched-sim`).
    Sim(SimError),
    /// A filesystem step failed.
    Fs(FsError),
    /// `config.json` is missing, malformed, or conflicts with the
    /// requested identity.
    Config {
        /// What was wrong.
        message: String,
    },
    /// A persisted artifact (snapshot, endpoint document) failed to
    /// render or re-parse.
    Render {
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "{e}"),
            ServeError::Fs(e) => write!(f, "{e}"),
            ServeError::Config { message } => write!(f, "bad serve config: {message}"),
            ServeError::Render { message } => write!(f, "render failure: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<FsError> for ServeError {
    fn from(e: FsError) -> Self {
        ServeError::Fs(e)
    }
}

/// The daemon's durable identity: which workload seeds the base trace,
/// which scheduler runs it, under which seed. Fixed at init.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Workload registry spec (e.g. `fpt:k=4`, `synth:preset=ricc`).
    pub workload: String,
    /// Scheduler registry spec (e.g. `ref`, `fairshare`).
    pub scheduler: String,
    /// Seed for both workload generation and the scheduler.
    pub seed: u64,
}

impl ServeConfig {
    /// The config path under `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("config.json")
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::String(CONFIG_SCHEMA.to_string())),
            ("workload".to_string(), Value::String(self.workload.clone())),
            ("scheduler".to_string(), Value::String(self.scheduler.clone())),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ServeError> {
        check_schema(v, CONFIG_SCHEMA)?;
        Ok(ServeConfig {
            workload: config_field(v, "workload")?,
            scheduler: config_field(v, "scheduler")?,
            seed: config_field(v, "seed")?,
        })
    }

    /// Loads `dir/config.json`.
    pub fn load(dir: &Path) -> Result<Self, ServeError> {
        let path = Self::path(dir);
        let text = std::fs::read_to_string(&path).map_err(|e| ServeError::Config {
            message: format!(
                "cannot read {} ({e}); initialize the directory with \
                 `fairsched serve --dir {} --workload ... --scheduler ...`",
                path.display(),
                dir.display(),
            ),
        })?;
        let v = serde_json::parse_value(&text)
            .map_err(|e| ServeError::Config { message: e.to_string() })?;
        Self::from_value(&v)
    }

    /// Writes the config if absent; verifies it matches if present. A
    /// serve directory's identity is fixed at init — reopening with a
    /// different workload/scheduler/seed is an error, not a restart.
    pub fn init(&self, dir: &Path) -> Result<(), ServeError> {
        std::fs::create_dir_all(dir).map_err(|e| FsError::new("create-dir", dir, &e))?;
        let path = Self::path(dir);
        if path.exists() {
            let existing = Self::load(dir)?;
            if existing != *self {
                return Err(ServeError::Config {
                    message: format!(
                        "{} already initialized as workload={} scheduler={} seed={}; \
                         refusing to reopen as workload={} scheduler={} seed={}",
                        dir.display(),
                        existing.workload,
                        existing.scheduler,
                        existing.seed,
                        self.workload,
                        self.scheduler,
                        self.seed,
                    ),
                });
            }
            return Ok(());
        }
        atomic_write(&path, &self.to_value().to_json_pretty())?;
        Ok(())
    }
}

fn config_field<T: serde::Deserialize>(v: &Value, name: &str) -> Result<T, ServeError> {
    serde::field(v, name, "ServeConfig")
        .map_err(|e| ServeError::Config { message: e.to_string() })
}

fn check_schema(v: &Value, expected: &str) -> Result<(), ServeError> {
    match v.get("schema") {
        Some(Value::String(s)) if s == expected => Ok(()),
        Some(Value::String(s)) => Err(ServeError::Config {
            message: format!("schema {s:?}, expected {expected:?}"),
        }),
        _ => Err(ServeError::Config {
            message: format!("missing schema tag (expected {expected:?})"),
        }),
    }
}

/// The online scheduling daemon: session + queue + journal position.
pub struct Daemon {
    dir: PathBuf,
    config: ServeConfig,
    queue: SubmissionQueue,
    session: SimSession,
    /// Highest journal sequence number applied to the session.
    applied_seq: u64,
    /// Next sequence number to assign on acceptance.
    next_seq: u64,
    stopped: bool,
    endpoints: Arc<Mutex<Endpoints>>,
}

impl Daemon {
    /// Opens the serve directory: loads `config.json`, restores
    /// `snapshot.json` if present (else builds the session fresh from
    /// the configured workload), replays the accepted journal tail, and
    /// renders the endpoint documents.
    pub fn open(dir: &Path) -> Result<Daemon, ServeError> {
        let config = ServeConfig::load(dir)?;
        let queue = SubmissionQueue::open(dir)?;
        let snapshot_path = dir.join("snapshot.json");
        let (session, applied_seq, stopped) = if snapshot_path.exists() {
            let text = std::fs::read_to_string(&snapshot_path)
                .map_err(|e| FsError::new("read", &snapshot_path, &e))?;
            let v = serde_json::parse_value(&text)
                .map_err(|e| ServeError::Render { message: e.to_string() })?;
            check_schema(&v, SNAPSHOT_SCHEMA)?;
            let applied_seq: u64 = serde::field(&v, "applied_seq", "ServeSnapshot")
                .map_err(|e| ServeError::Render { message: e.to_string() })?;
            let session_value = v.get("session").ok_or_else(|| ServeError::Render {
                message: "snapshot missing session".to_string(),
            })?;
            // Older snapshots lack the flag; a missing field means a
            // still-running daemon wrote them.
            let stopped = matches!(v.get("stopped"), Some(Value::Bool(true)));
            (SimSession::restore(&session_value.to_json())?, applied_seq, stopped)
        } else {
            (
                SimSession::from_workload(
                    &config.workload,
                    &config.scheduler,
                    config.seed,
                )?,
                0,
                false,
            )
        };
        let next_seq = queue.max_accepted_seq()?.map_or(1, |m| m.saturating_add(1));
        let mut daemon = Daemon {
            dir: dir.to_path_buf(),
            config,
            queue,
            session,
            applied_seq,
            next_seq,
            stopped,
            endpoints: Arc::new(Mutex::new(Endpoints::default())),
        };
        // Replay the journal tail the snapshot doesn't cover. Results are
        // rewritten idempotently; engine determinism makes the replayed
        // session byte-identical to the pre-crash one.
        for (seq, path) in daemon.queue.accepted_after(applied_seq)? {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| FsError::new("read", &path, &e))?;
            daemon.apply_text(seq, &text)?;
        }
        daemon.refresh_endpoints()?;
        Ok(daemon)
    }

    /// The serve directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durable identity.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The underlying session (trace, schedule, stepped-to mark).
    pub fn session(&self) -> &SimSession {
        &self.session
    }

    /// Highest journal sequence number applied so far.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Whether a `stop` message has been applied.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// The shared endpoint documents (hand to [`crate::HttpServer`]).
    pub fn endpoints(&self) -> Arc<Mutex<Endpoints>> {
        Arc::clone(&self.endpoints)
    }

    /// Decodes and applies journal entry `seq`, writing its result.
    /// Malformed text and rejected submissions become recorded rejections
    /// (the queue must never wedge on bad input); engine failures on
    /// `advance` propagate after being recorded (the loop cannot safely
    /// outlive a scheduler contract violation).
    fn apply_text(&mut self, seq: u64, text: &str) -> Result<(), ServeError> {
        let outcome = match Message::from_json(text) {
            Err(reason) => rejection(seq, "malformed", &reason),
            Ok(Message::Submit { org, release, proc_time, deadline }) => {
                match self.session.admit(OrgId(org), release, proc_time, deadline) {
                    Ok(id) => Value::Object(vec![
                        ("seq".to_string(), seq.to_value()),
                        ("ok".to_string(), Value::Bool(true)),
                        ("kind".to_string(), Value::String("submit".to_string())),
                        ("job".to_string(), id.index().to_value()),
                    ]),
                    Err(e) => rejection(seq, "submit", &e.to_string()),
                }
            }
            Ok(Message::Advance { until }) => match self.session.step(until) {
                Ok(()) => Value::Object(vec![
                    ("seq".to_string(), seq.to_value()),
                    ("ok".to_string(), Value::Bool(true)),
                    ("kind".to_string(), Value::String("advance".to_string())),
                    ("until".to_string(), until.to_value()),
                ]),
                Err(e) => {
                    // Record, then fail: replay hits the same error at the
                    // same seq, so the journal stays the source of truth.
                    let outcome = rejection(seq, "advance", &e.to_string());
                    self.queue.write_result(seq, &outcome)?;
                    self.applied_seq = seq;
                    return Err(ServeError::Sim(e));
                }
            },
            Ok(Message::Stop) => {
                self.stopped = true;
                Value::Object(vec![
                    ("seq".to_string(), seq.to_value()),
                    ("ok".to_string(), Value::Bool(true)),
                    ("kind".to_string(), Value::String("stop".to_string())),
                ])
            }
        };
        self.queue.write_result(seq, &outcome)?;
        self.applied_seq = seq;
        Ok(())
    }

    /// One poll: accepts every pending inbox file (assigning sequence
    /// numbers in stamp order), applies each, and — if anything was
    /// processed — persists the snapshot and re-renders the endpoints.
    /// Returns how many messages were processed.
    pub fn drain(&mut self) -> Result<usize, ServeError> {
        let pending = self.queue.pending()?;
        let mut processed = 0usize;
        for path in pending {
            let seq = self.next_seq;
            self.next_seq = seq.saturating_add(1);
            let journal = self.queue.accept(&path, seq)?;
            let text = std::fs::read_to_string(&journal)
                .map_err(|e| FsError::new("read", &journal, &e))?;
            self.apply_text(seq, &text)?;
            processed = processed.saturating_add(1);
            if self.stopped {
                break; // later submissions stay in the inbox, unaccepted
            }
        }
        if processed > 0 {
            self.persist()?;
            self.refresh_endpoints()?;
        }
        Ok(processed)
    }

    /// Atomically writes `snapshot.json` covering the journal position.
    pub fn persist(&self) -> Result<(), ServeError> {
        let session = serde_json::parse_value(&self.session.snapshot())
            .map_err(|e| ServeError::Render { message: e.to_string() })?;
        let snapshot = Value::Object(vec![
            ("schema".to_string(), Value::String(SNAPSHOT_SCHEMA.to_string())),
            ("applied_seq".to_string(), self.applied_seq.to_value()),
            ("stopped".to_string(), Value::Bool(self.stopped)),
            ("session".to_string(), session),
        ]);
        atomic_write(&self.dir.join("snapshot.json"), &snapshot.to_json_pretty())?;
        Ok(())
    }

    /// The drain loop: poll the inbox every `poll_ms` until a `stop`
    /// message is applied.
    pub fn run(&mut self, poll_ms: u64) -> Result<(), ServeError> {
        while !self.stopped {
            if self.drain()? == 0 {
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            }
        }
        Ok(())
    }

    /// Writes the finalized run — `trace.json` (the grown trace) and
    /// `schedule.json` (the schedule built so far) — for offline
    /// comparison against a batch run.
    pub fn finalize(&self) -> Result<(), ServeError> {
        atomic_write(
            &self.dir.join("trace.json"),
            &self.session.trace().to_value().to_json_pretty(),
        )?;
        atomic_write(&self.dir.join("schedule.json"), &self.schedule_json())?;
        Ok(())
    }

    fn schedule_json(&self) -> String {
        self.session.schedule().to_value().to_json_pretty()
    }

    /// The equivalence check behind the headline test: run the configured
    /// scheduler from scratch over the *grown* trace (base + admissions)
    /// to the stepped-to mark, write `schedule.batch.json`, and return
    /// whether it is byte-identical to the incrementally built schedule.
    pub fn batch_check(&self) -> Result<bool, ServeError> {
        let grown = self.session.trace().clone();
        let result = Simulation::new(&grown)
            .scheduler(&self.config.scheduler)?
            .horizon(self.session.stepped_to().unwrap_or(0))
            .seed(self.config.seed)
            .run()?;
        let batch = result.schedule.to_value().to_json_pretty();
        atomic_write(&self.dir.join("schedule.batch.json"), &batch)?;
        Ok(batch == self.schedule_json())
    }

    /// Re-renders the three endpoint documents from the live session.
    fn refresh_endpoints(&mut self) -> Result<(), ServeError> {
        let mark = self.session.stepped_to().unwrap_or(0);
        let status = Value::Object(vec![
            ("scheduler".to_string(), Value::String(self.session.scheduler_name())),
            ("scheduler_spec".to_string(), Value::String(self.config.scheduler.clone())),
            ("workload".to_string(), Value::String(self.config.workload.clone())),
            ("seed".to_string(), self.config.seed.to_value()),
            ("stepped_to".to_string(), self.session.stepped_to().to_value()),
            ("orgs".to_string(), self.session.trace().n_orgs().to_value()),
            ("jobs".to_string(), self.session.trace().n_jobs().to_value()),
            ("admissions".to_string(), self.session.admissions().len().to_value()),
            ("completed".to_string(), self.session.completed_jobs().to_value()),
            ("applied_seq".to_string(), self.applied_seq.to_value()),
            ("stopped".to_string(), Value::Bool(self.stopped)),
        ])
        .to_json();

        let specs: Vec<MetricSpec> =
            DEFAULT_REPORT_METRICS.iter().map(|s| MetricSpec::bare(*s)).collect();
        let result = self.session.result_at(mark, false)?;
        let report = Report::evaluate(
            MetricRegistry::shared(),
            &specs,
            self.session.trace(),
            &result,
            None,
        )
        .map_err(|e| ServeError::Render { message: e.to_string() })?
        .to_json();

        let times = timeline_sample_times(mark, SERIES_SAMPLES);
        let sweep =
            schedule_series(self.session.trace(), self.session.schedule(), &times);
        let series = Value::Object(vec![
            ("times".to_string(), sweep.times.to_value()),
            ("psi".to_string(), sweep.psi.to_value()),
            ("units".to_string(), sweep.units.to_value()),
            ("events_applied".to_string(), sweep.stats.events_applied.to_value()),
            ("org_evals".to_string(), sweep.stats.org_evals.to_value()),
        ])
        .to_json();

        let mut docs = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        docs.status = status;
        docs.report = report;
        docs.series = series;
        Ok(())
    }
}

fn rejection(seq: u64, kind: &str, reason: &str) -> Value {
    Value::Object(vec![
        ("seq".to_string(), seq.to_value()),
        ("ok".to_string(), Value::Bool(false)),
        ("kind".to_string(), Value::String(kind.to_string())),
        ("error".to_string(), Value::String(reason.to_string())),
    ])
}
