//! End-to-end daemon tests: the submission journal replayed through the
//! daemon — including through a simulated `kill -9` (a daemon dropped
//! without snapshotting its last acceptance) — reproduces the batch
//! engine's schedule bit-for-bit.

use fairsched_core::model::OrgId;
use fairsched_serve::{Daemon, HttpServer, Message, ServeConfig, SubmissionQueue};
use fairsched_sim::Simulation;
use std::io::{Read, Write};
use std::path::PathBuf;

const WORKLOAD: &str = "fpt:horizon=120,k=2,maxdur=20,median=8";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fairsched-serve-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(scheduler: &str) -> ServeConfig {
    ServeConfig {
        workload: WORKLOAD.to_string(),
        scheduler: scheduler.to_string(),
        seed: 5,
    }
}

/// The headline test: drain, crash (drop a daemon that accepted a
/// message but never snapshotted it), reopen, finish — and the final
/// schedule is byte-identical to a from-scratch batch run over the grown
/// trace, for the exact REF scheduler whose φ caches the session reuses.
#[test]
fn crash_replay_reproduces_batch_schedule_bit_for_bit() {
    let dir = temp_dir("crash-replay");
    config("ref").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();

    queue.submit(&Message::Advance { until: 10 }).unwrap();
    queue
        .submit(&Message::Submit { org: 0, release: 15, proc_time: 5, deadline: None })
        .unwrap();
    queue.submit(&Message::Advance { until: 30 }).unwrap();

    let mut first = Daemon::open(&dir).unwrap();
    assert_eq!(first.drain().unwrap(), 3);
    assert_eq!(first.applied_seq(), 3);
    assert_eq!(first.session().stepped_to(), Some(30));

    // kill -9: a fourth message is accepted into the journal, but the
    // daemon dies before writing its result or snapshot. Dropping `first`
    // without finalize() models the process vanishing.
    let inbox = queue
        .submit(&Message::Submit {
            org: 1,
            release: 40,
            proc_time: 6,
            deadline: Some(80),
        })
        .unwrap();
    queue.accept(&inbox, 4).unwrap();
    drop(first);

    // Restart: snapshot covers seq 1-3, the journal tail (seq 4) replays.
    let mut second = Daemon::open(&dir).unwrap();
    assert_eq!(second.applied_seq(), 4);
    assert_eq!(second.session().admissions().len(), 2);

    queue.submit(&Message::Advance { until: 60 }).unwrap();
    queue.submit(&Message::Stop).unwrap();
    second.run(5).unwrap();
    assert!(second.stopped());
    second.finalize().unwrap();

    // Byte-for-byte equivalence with the batch engine over the grown trace.
    assert!(second.batch_check().unwrap());
    let batch = Simulation::new(second.session().trace())
        .scheduler("ref")
        .unwrap()
        .horizon(60)
        .seed(5)
        .run()
        .unwrap();
    assert_eq!(second.session().schedule(), &batch.schedule);

    // The on-disk artifacts agree too.
    let live = std::fs::read_to_string(dir.join("schedule.json")).unwrap();
    let check = std::fs::read_to_string(dir.join("schedule.batch.json")).unwrap();
    assert_eq!(live, check);

    // Every journal entry has a result; the replayed one succeeded.
    for seq in 1..=6u64 {
        let text = std::fs::read_to_string(queue.result_path(seq)).unwrap();
        assert!(text.contains("\"seq\""), "seq {seq}: {text}");
    }
    assert!(std::fs::read_to_string(queue.result_path(4)).unwrap().contains("true"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash before the *first* snapshot: the daemon restores from config
/// alone and replays the whole journal.
#[test]
fn reopen_without_snapshot_replays_whole_journal() {
    let dir = temp_dir("no-snapshot");
    config("fairshare").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    for (i, message) in [
        Message::Advance { until: 20 },
        Message::Submit { org: 1, release: 25, proc_time: 4, deadline: None },
        Message::Advance { until: 50 },
    ]
    .iter()
    .enumerate()
    {
        let path = queue.submit(message).unwrap();
        queue.accept(&path, (i as u64) + 1).unwrap(); // accepted, never snapshotted
    }

    let daemon = Daemon::open(&dir).unwrap();
    assert_eq!(daemon.applied_seq(), 3);
    assert_eq!(daemon.session().stepped_to(), Some(50));
    assert!(daemon.batch_check().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bad input never wedges the queue: malformed JSON, unknown orgs, and
/// too-late releases are journaled as rejections and the loop continues.
#[test]
fn rejections_are_recorded_and_do_not_wedge_the_queue() {
    let dir = temp_dir("rejections");
    config("roundrobin").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    let mut daemon = Daemon::open(&dir).unwrap();

    queue.submit(&Message::Advance { until: 40 }).unwrap();
    assert_eq!(daemon.drain().unwrap(), 1);

    std::fs::write(dir.join("queue/inbox/00000000000000000000-0.json"), "{torn").unwrap();
    queue
        .submit(&Message::Submit { org: 99, release: 50, proc_time: 1, deadline: None })
        .unwrap();
    queue
        .submit(&Message::Submit { org: 0, release: 40, proc_time: 1, deadline: None })
        .unwrap(); // release == stepped_to: too late
    queue
        .submit(&Message::Submit { org: 0, release: 41, proc_time: 1, deadline: None })
        .unwrap(); // fine
    assert_eq!(daemon.drain().unwrap(), 4);

    let outcomes: Vec<bool> = (2..=5u64)
        .map(|seq| {
            let text = std::fs::read_to_string(queue.result_path(seq)).unwrap();
            !text.contains("\"ok\": false")
        })
        .collect();
    assert_eq!(outcomes, vec![false, false, false, true]);
    assert_eq!(daemon.session().admissions().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reopening a serve directory under a different identity is refused.
#[test]
fn config_conflict_is_refused() {
    let dir = temp_dir("config-conflict");
    config("ref").init(&dir).unwrap();
    config("ref").init(&dir).unwrap(); // same identity: fine
    let err = config("fairshare").init(&dir).unwrap_err();
    assert!(err.to_string().contains("already initialized"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The general REF family holds a trace snapshot and cannot splice
/// admissions; the daemon journals the rejection instead of dying.
#[test]
fn non_admitting_scheduler_rejects_submissions_gracefully() {
    let dir = temp_dir("general-ref");
    config("general-ref:util=flowtime").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    let mut daemon = Daemon::open(&dir).unwrap();
    queue
        .submit(&Message::Submit { org: 0, release: 5, proc_time: 2, deadline: None })
        .unwrap();
    queue.submit(&Message::Advance { until: 30 }).unwrap();
    assert_eq!(daemon.drain().unwrap(), 2);
    let text = std::fs::read_to_string(queue.result_path(1)).unwrap();
    assert!(text.contains("mid-run job admission"), "{text}");
    assert_eq!(daemon.session().stepped_to(), Some(30));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stopped directory stays stopped: once the journal's `Stop` is
/// covered by the snapshot, reopening returns immediately from `run`
/// (e.g. a later offline `serve --batch-check`) instead of polling an
/// inbox that will never produce another message.
#[test]
fn reopened_stopped_directory_is_still_stopped() {
    let dir = temp_dir("stopped");
    config("fifo").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    queue.submit(&Message::Advance { until: 30 }).unwrap();
    queue.submit(&Message::Stop).unwrap();
    let mut daemon = Daemon::open(&dir).unwrap();
    daemon.run(5).unwrap();
    assert!(daemon.stopped());
    drop(daemon);

    let mut again = Daemon::open(&dir).unwrap();
    assert!(again.stopped(), "snapshot must carry the stopped flag");
    again.run(5).unwrap(); // returns immediately; would hang before the fix
    assert!(again.batch_check().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The HTTP endpoint serves live documents that track the session.
#[test]
fn http_endpoints_track_the_session() {
    let dir = temp_dir("http");
    config("fairshare").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    let mut daemon = Daemon::open(&dir).unwrap();
    let server = HttpServer::start("127.0.0.1:0", daemon.endpoints()).unwrap();
    let addr = server.addr();

    let fresh = get(addr, "/status");
    assert!(fresh.contains("\"stepped_to\":null"), "{fresh}");

    queue.submit(&Message::Advance { until: 25 }).unwrap();
    daemon.drain().unwrap();
    let status = get(addr, "/status");
    assert!(status.contains("\"stepped_to\":25"), "{status}");
    assert!(status.contains(&format!("\"workload\":{WORKLOAD:?}")), "{status}");

    // /report and /series are well-formed JSON documents.
    for path in ["/report", "/series"] {
        let body = body_of(&get(addr, path));
        serde_json::parse_value(&body).unwrap_or_else(|e| panic!("{path}: {e}\n{body}"));
    }
    assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live stepping with interleaved admissions matches one batch run even
/// when driven entirely through queue messages (no direct session calls).
#[test]
fn interleaved_messages_match_batch_for_rand_scheduler() {
    let dir = temp_dir("rand");
    config("rand:perms=5").init(&dir).unwrap();
    let queue = SubmissionQueue::open(&dir).unwrap();
    let mut daemon = Daemon::open(&dir).unwrap();
    for message in [
        Message::Advance { until: 8 },
        Message::Submit { org: 1, release: 9, proc_time: 3, deadline: None },
        Message::Advance { until: 33 },
        Message::Submit { org: 0, release: 34, proc_time: 7, deadline: None },
        Message::Advance { until: 70 },
        Message::Stop,
    ] {
        queue.submit(&message).unwrap();
    }
    daemon.run(5).unwrap();
    assert!(daemon.batch_check().unwrap());

    // OrgId round-trip sanity: admissions recorded what was submitted.
    assert_eq!(daemon.session().admissions()[0].org, OrgId(1));
    assert_eq!(daemon.session().admissions().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn body_of(response: &str) -> String {
    response.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}
