//! The FPT growth curve (Corollary 3.5): REF's cost as the number of
//! organizations grows, with everything else held fixed. The per-decision
//! cost is `Θ(k·2^k)` plus lattice bookkeeping — this bench makes the
//! exponential visible and shows RAND's polynomial alternative staying
//! flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsched_bench::baseline::bench_workload;
use fairsched_core::scheduler::{RandScheduler, RefScheduler};
use fairsched_sim::simulate;
use std::hint::black_box;

/// The registry's `fpt:k=<k>` family — the same traces `bench_baseline`
/// measures, so criterion numbers and `BENCH_lattice.json` stay on one
/// workload.
fn workload(k: usize, seed: u64) -> fairsched_core::Trace {
    bench_workload(k, seed)
}

fn bench_ref_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ref_fpt_growth");
    group.sample_size(10);
    for k in [2usize, 4, 6, 8, 10] {
        let trace = workload(k, 5);
        group.bench_with_input(BenchmarkId::new("ref", k), &trace, |b, trace| {
            b.iter(|| {
                let mut s = RefScheduler::new(trace);
                black_box(simulate(trace, &mut s, 2_000))
            });
        });
        group.bench_with_input(BenchmarkId::new("rand15", k), &trace, |b, trace| {
            b.iter(|| {
                let mut s = RandScheduler::new(trace, 15, 9);
                black_box(simulate(trace, &mut s, 2_000))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ref_vs_k);
criterion_main!(benches);
