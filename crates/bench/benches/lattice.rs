//! The FPT growth curve (Corollary 3.5): REF's cost as the number of
//! organizations grows, with everything else held fixed. The per-decision
//! cost is `Θ(k·2^k)` plus lattice bookkeeping — this bench makes the
//! exponential visible and shows RAND's polynomial alternative staying
//! flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsched_core::scheduler::{RandScheduler, RefScheduler};
use fairsched_sim::simulate;
use fairsched_workloads::{generate, to_trace, MachineSplit, SynthConfig};
use std::hint::black_box;

fn workload(k: usize, seed: u64) -> fairsched_core::Trace {
    let config = SynthConfig {
        n_users: 2 * k,
        horizon: 2_000,
        n_machines: 2 * k,
        load: 0.8,
        duration_median: 40.0,
        duration_sigma: 1.0,
        max_duration: 500,
        ..SynthConfig::default()
    };
    let jobs = generate(&config, seed);
    to_trace(&jobs, k, 2 * k, MachineSplit::Equal, seed).unwrap()
}

fn bench_ref_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ref_fpt_growth");
    group.sample_size(10);
    for k in [2usize, 4, 6, 8, 10] {
        let trace = workload(k, 5);
        group.bench_with_input(BenchmarkId::new("ref", k), &trace, |b, trace| {
            b.iter(|| {
                let mut s = RefScheduler::new(trace);
                black_box(simulate(trace, &mut s, 2_000))
            });
        });
        group.bench_with_input(BenchmarkId::new("rand15", k), &trace, |b, trace| {
            b.iter(|| {
                let mut s = RandScheduler::new(trace, 15, 9);
                black_box(simulate(trace, &mut s, 2_000))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ref_vs_k);
criterion_main!(benches);
