//! Utility-evaluation micro-benchmarks: the `ψ_sp` closed form, the O(1)
//! incremental tracker, and full-schedule vector evaluation — the hot path
//! of every contribution-based scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_core::scheduler::FifoScheduler;
use fairsched_core::utility::{sp_value, sp_vector, SpTracker};
use fairsched_sim::simulate;
use fairsched_workloads::{generate, to_trace, MachineSplit, SynthConfig};
use std::hint::black_box;

fn bench_sp_value(c: &mut Criterion) {
    c.bench_function("sp_value_closed_form", |b| {
        b.iter(|| {
            let mut acc = 0i128;
            for s in 0..100u64 {
                acc += sp_value(black_box(s), black_box(s % 17 + 1), black_box(5_000));
            }
            black_box(acc)
        });
    });
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("sp_tracker_start_complete_value", |b| {
        b.iter(|| {
            let mut tr = SpTracker::new();
            for i in 0..100u64 {
                tr.on_start(i);
                tr.on_complete(i, i + 5);
            }
            black_box(tr.value_at(1_000))
        });
    });

    c.bench_function("sp_tracker_value_with_many_running", |b| {
        let mut tr = SpTracker::new();
        for i in 0..512u64 {
            tr.on_start(i);
        }
        b.iter(|| black_box(tr.value_at(black_box(10_000))));
    });
}

fn bench_sp_vector(c: &mut Criterion) {
    let config = SynthConfig {
        n_users: 20,
        horizon: 50_000,
        n_machines: 32,
        load: 0.8,
        ..SynthConfig::default()
    };
    let jobs = generate(&config, 3);
    let trace = to_trace(&jobs, 5, 32, MachineSplit::Equal, 3).unwrap();
    let result =
        simulate(&trace, &mut FifoScheduler::new(), 50_000).expect("engine contract");
    c.bench_function("sp_vector_full_schedule", |b| {
        b.iter(|| black_box(sp_vector(&trace, &result.schedule, 50_000)));
    });
}

criterion_group!(benches, bench_sp_value, bench_tracker, bench_sp_vector);
criterion_main!(benches);
