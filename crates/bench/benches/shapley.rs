//! Shapley computation benchmarks: the `O(n·2^n)` exact enumeration
//! (Proposition 3.4's cost driver) vs permutation sampling (the RAND
//! estimator), across player counts.

use coopgame::sampling::shapley_sample;
use coopgame::shapley::{shapley_exact, shapley_exact_scaled};
use coopgame::Coalition;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn game_value(c: Coalition) -> f64 {
    // A non-trivial, cheap characteristic function.
    let s = c.len() as f64;
    s * s + (c.bits() % 7) as f64
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_exact");
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(shapley_exact(n, game_value)));
        });
    }
    group.finish();
}

fn bench_exact_scaled(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_exact_scaled_int");
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(shapley_exact_scaled(n, |c| {
                    (c.len() * c.len()) as i128 + (c.bits() % 7) as i128
                }))
            });
        });
    }
    group.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_sampled_n16");
    for perms in [15usize, 75, 300] {
        group.bench_with_input(
            BenchmarkId::from_parameter(perms),
            &perms,
            |b, &perms| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(shapley_sample(16, perms, game_value, &mut rng)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_exact_scaled, bench_sampled);
criterion_main!(benches);
