//! End-to-end scheduler throughput: full simulation of an LPC-EGEE-like
//! instance under every algorithm. This is the per-decision overhead
//! comparison behind the paper's "all the other algorithms are about
//! equally computationally efficient" observation (Section 7.3), with REF
//! and RAND showing their exponential/sampling surcharges.

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::runner::Algo;
use fairsched_core::scheduler::RefScheduler;
use fairsched_sim::simulate;
use fairsched_workloads::{generate, preset, to_trace, MachineSplit, PresetName};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let horizon = 20_000;
    let p = preset(PresetName::LpcEgee, 0.5, horizon);
    let jobs = generate(&p.synth, 11);
    let trace =
        to_trace(&jobs, 5, p.synth.n_machines, MachineSplit::Zipf(1.0), 11).unwrap();

    let mut group = c.benchmark_group("simulate_lpc_half_scale");
    group.sample_size(20);
    for algo in [
        Algo::RoundRobin,
        Algo::Fifo,
        Algo::FairShare,
        Algo::UtFairShare,
        Algo::CurrFairShare,
        Algo::DirectContr,
        Algo::Rand(15),
        Algo::Rand(75),
    ] {
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                let mut s = algo.build(&trace, 3);
                black_box(simulate(&trace, s.as_mut(), horizon))
            });
        });
    }
    group.bench_function("Ref (exact)", |b| {
        b.iter(|| {
            let mut s = RefScheduler::new(&trace);
            black_box(simulate(&trace, &mut s, horizon))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
