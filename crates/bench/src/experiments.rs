//! Shared experiment drivers used by the table/figure binaries.

use crate::cli::Cli;
use crate::runner::{default_scale, run_delay_experiment, Algo, DelayExperiment};
use crate::table::DelayTable;
use fairsched_core::model::Time;
use fairsched_workloads::{MachineSplit, PresetName};

/// Builds and runs a Table 1/2-style experiment across all four workloads.
///
/// Recognized flags: `--instances N`, `--orgs K`, `--seed S`,
/// `--scale F` (overrides per-preset defaults), `--paper-scale`
/// (full archive sizes + 100 instances), `--uniform-split`,
/// `--extended` (adds Rand(75), Fifo, Random rows), `--json`,
/// `--workload NAME` (restrict to one workload).
pub fn run_delay_table(cli: &Cli, title: &str, horizon: Time, default_instances: usize) {
    let paper_scale = cli.has("paper-scale");
    let n_instances =
        cli.get_or("instances", if paper_scale { 100 } else { default_instances });
    let n_orgs = cli.get_or("orgs", 5usize);
    let base_seed = cli.get_or("seed", 42u64);
    let split = if cli.has("uniform-split") {
        MachineSplit::Uniform
    } else {
        MachineSplit::Zipf(1.0)
    };
    let mut algos = Algo::TABLE_SET.to_vec();
    if cli.has("extended") {
        algos.extend([Algo::Rand(75), Algo::Fifo, Algo::Random]);
    }
    let workloads: Vec<PresetName> = match cli.get("workload") {
        Some(w) => {
            vec![PresetName::parse(w).unwrap_or_else(|| panic!("unknown workload {w:?}"))]
        }
        None => PresetName::ALL.to_vec(),
    };

    let mut cells = Vec::new();
    for name in &workloads {
        let scale =
            if paper_scale { 1.0 } else { cli.get_or("scale", default_scale(*name)) };
        let exp = DelayExperiment {
            preset: *name,
            scale,
            horizon,
            n_orgs,
            n_instances,
            base_seed,
            split,
            algos: algos.clone(),
        };
        eprintln!(
            "running {} (scale {scale}, {n_instances} instances, horizon {horizon}, {n_orgs} orgs)...",
            name.label()
        );
        cells.push(run_delay_experiment(&exp));
    }

    let table = DelayTable {
        title: format!(
            "{title} — Δψ/p_tot (avg over {n_instances} instances, horizon {horizon}, {n_orgs} orgs)"
        ),
        workloads: workloads.iter().map(|w| w.label().to_string()).collect(),
        cells,
    };
    if cli.has("json") {
        println!("{}", table.to_json());
    } else {
        println!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_end_to_end_table() {
        // Smoke: one workload, tiny scale/instances; must not panic and
        // must print a table (stdout not captured here, just run it).
        let cli = Cli::from_args(
            ["--instances", "1", "--orgs", "2", "--scale", "0.05", "--workload", "lpc"]
                .iter()
                .map(|s| s.to_string()),
        );
        run_delay_table(&cli, "smoke", 500, 1);
    }
}
