//! Shared experiment drivers used by the table/figure binaries.

use crate::cli::Cli;
use crate::runner::{default_scale, run_delay_experiment, Algo, DelayExperiment};
use fairsched_core::model::Time;
use fairsched_sim::report::{MetricSpec, SummaryTable};
use fairsched_workloads::spec::WorkloadSpec;
use fairsched_workloads::{synth_spec, MachineSplit, PresetName};

/// Resolves the `--workload` flag into labelled workload specs.
///
/// Accepted forms:
/// * a preset label/alias (`lpc`, `RICC`, `sharcnet-whale`, …) — sugar for
///   a `synth:` spec built from the surrounding `--scale`/`--orgs`/
///   `--uniform-split` flags (the classic behavior);
/// * any full workload registry spec (`synth:preset=ricc,scale=0.5`,
///   `fpt:k=8`, `swf:path=...`) — used verbatim, labelled by its canonical
///   string.
///
/// Without the flag, all four paper presets are returned at their default
/// scales.
pub fn resolve_workloads(
    cli: &Cli,
    horizon: Time,
    n_orgs: usize,
    split: MachineSplit,
    paper_scale: bool,
) -> Vec<(String, WorkloadSpec)> {
    let preset_entry = |name: PresetName| {
        let scale =
            if paper_scale { 1.0 } else { cli.get_or("scale", default_scale(name)) };
        (name.label().to_string(), synth_spec(name, scale, n_orgs, split, horizon))
    };
    match cli.get("workload") {
        None => PresetName::ALL.iter().copied().map(preset_entry).collect(),
        // One parsing path for preset names (PresetName::parse) — full
        // spec strings only kick in when the value isn't a preset label.
        Some(w) => match PresetName::parse(w) {
            Some(name) => vec![preset_entry(name)],
            None => {
                let spec: WorkloadSpec = w.parse().unwrap_or_else(|e| {
                    panic!("--workload {w:?} is neither a preset label nor a valid spec: {e}")
                });
                vec![(spec.to_string(), spec)]
            }
        },
    }
}

/// Builds and runs a Table 1/2-style experiment across all four workloads.
///
/// Recognized flags: `--instances N`, `--orgs K`, `--seed S`,
/// `--scale F` (overrides per-preset defaults), `--paper-scale`
/// (full archive sizes + 100 instances), `--uniform-split`,
/// `--extended` (adds Rand(75), Fifo, Random rows), `--json`, `--csv`,
/// `--metric SPEC` (the metric-registry spec each cell aggregates;
/// default `delay`, the paper's `Δψ/p_tot`),
/// `--workload NAME_OR_SPEC` (restrict to one workload: a preset label or
/// any workload registry spec string).
pub fn run_delay_table(cli: &Cli, title: &str, horizon: Time, default_instances: usize) {
    let paper_scale = cli.has("paper-scale");
    let n_instances =
        cli.get_or("instances", if paper_scale { 100 } else { default_instances });
    let n_orgs = cli.get_or("orgs", 5usize);
    let base_seed = cli.get_or("seed", 42u64);
    let metric: MetricSpec = cli
        .get("metric")
        .map(|m| {
            m.parse()
                .unwrap_or_else(|e| panic!("--metric {m:?} is not a valid spec: {e}"))
        })
        .unwrap_or_else(DelayExperiment::delay_metric);
    let split = if cli.has("uniform-split") {
        MachineSplit::Uniform
    } else {
        MachineSplit::Zipf(1.0)
    };
    let mut algos = Algo::TABLE_SET.to_vec();
    if cli.has("extended") {
        algos.extend([Algo::Rand(75), Algo::Fifo, Algo::Random]);
    }
    let workloads = resolve_workloads(cli, horizon, n_orgs, split, paper_scale);
    // The org count belongs to the workload specs (a full `--workload`
    // spec overrides `--orgs`), so the title must report what the cells
    // actually ran, not the flag.
    let orgs_note = {
        let per_spec: Vec<Option<&str>> =
            workloads.iter().map(|(_, w)| w.get("orgs").or_else(|| w.get("k"))).collect();
        match per_spec.first() {
            Some(Some(v)) if per_spec.iter().all(|o| *o == Some(v)) => {
                format!("{v} orgs")
            }
            _ => "orgs per workload spec".to_string(),
        }
    };

    let mut cells = Vec::new();
    for (label, workload) in &workloads {
        let exp = DelayExperiment {
            workload: workload.clone(),
            horizon,
            n_instances,
            base_seed,
            algos: algos.clone(),
            metric: metric.clone(),
        };
        eprintln!(
            "running {label} ({workload}, {n_instances} instances, horizon {horizon})..."
        );
        cells.push(run_delay_experiment(&exp));
    }

    let metric_label = if metric == DelayExperiment::delay_metric() {
        "Δψ/p_tot".to_string()
    } else {
        metric.to_string()
    };
    let table = SummaryTable {
        title: format!(
            "{title} — {metric_label} (avg over {n_instances} instances, horizon {horizon}, {orgs_note})"
        ),
        metric: metric.to_string(),
        columns: workloads.iter().map(|(label, _)| label.clone()).collect(),
        cells,
    };
    if cli.has("json") {
        println!("{}", table.to_json());
    } else if cli.has("csv") {
        println!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn tiny_end_to_end_table() {
        // Smoke: one workload, tiny scale/instances; must not panic and
        // must print a table (stdout not captured here, just run it).
        let c = cli(&[
            "--instances",
            "1",
            "--orgs",
            "2",
            "--scale",
            "0.05",
            "--workload",
            "lpc",
        ]);
        run_delay_table(&c, "smoke", 500, 1);
    }

    #[test]
    fn tiny_end_to_end_table_with_full_spec() {
        // The --workload flag takes a full registry spec verbatim.
        let c = cli(&["--instances", "1", "--workload", "fpt:horizon=500,k=2"]);
        run_delay_table(&c, "smoke-spec", 500, 1);
    }

    #[test]
    fn preset_labels_resolve_through_the_shared_parse_path() {
        for alias in ["lpc", "LPC", "LPC-EGEE", "LpcEgee"] {
            let c = cli(&["--workload", alias, "--scale", "0.05"]);
            let w = resolve_workloads(&c, 500, 2, MachineSplit::Zipf(1.0), false);
            assert_eq!(w.len(), 1);
            assert_eq!(w[0].0, "LPC-EGEE", "alias {alias:?} mislabelled");
            assert_eq!(
                w[0].1.to_string(),
                "synth:horizon=500,orgs=2,preset=lpc,scale=0.05"
            );
        }
    }

    #[test]
    fn default_is_all_four_presets() {
        let c = cli(&[]);
        let w = resolve_workloads(&c, 500, 5, MachineSplit::Zipf(1.0), false);
        assert_eq!(w.len(), 4);
        let labels: Vec<&str> = w.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["LPC-EGEE", "PIK-IPLEX", "SHARCNET-Whale", "RICC"]);
    }

    #[test]
    fn spec_workloads_keep_their_canonical_label() {
        // lint:allow(spec-literal) unsorted input; asserts it canonicalizes
        let c = cli(&["--workload", "fpt:k=4,horizon=800"]);
        let w = resolve_workloads(&c, 500, 5, MachineSplit::Zipf(1.0), false);
        assert_eq!(w[0].0, "fpt:horizon=800,k=4");
    }

    #[test]
    #[should_panic(expected = "neither a preset label nor a valid spec")]
    fn bad_workload_flag_panics_with_context() {
        let c = cli(&["--workload", "not a spec"]);
        let _ = resolve_workloads(&c, 500, 5, MachineSplit::Zipf(1.0), false);
    }
}
