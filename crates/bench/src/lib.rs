//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 7), plus ablations.
//!
//! Each binary regenerates one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — Δψ/p_tot per algorithm × workload, horizon 5·10⁴ |
//! | `table2` | Table 2 — same at horizon 5·10⁵ |
//! | `fig10` | Figure 10 — Δψ/p_tot vs number of organizations |
//! | `fig2` | Figure 2 — the worked `ψ_sp` example |
//! | `fig7` | Figure 7 / Theorem 6.2 — greedy utilization envelope |
//! | `fpras` | Theorem 5.6 — RAND's ε-approximation vs sample count |
//! | `trajectory` | the unfairness trajectory `Δψ(t)/p_tot(t)` per sample time (see [`trajectory`]) |
//! | `bench_baseline` | `BENCH_lattice.json` — the tracked lattice perf baseline (see [`baseline`]) |
//!
//! Run e.g. `cargo run -p fairsched-bench --release --bin table1 -- --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod experiments;
pub mod parallel;
pub mod runner;
pub mod trajectory;

pub use fairsched_sim::report::{format_sig, LabeledStat, SummaryTable};
pub use runner::{
    run_delay_experiment, Algo, AlgoStats, DelayExperiment, ExperimentOutcome,
    InstanceFailure,
};
