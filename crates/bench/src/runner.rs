//! The delay-table experiment runner (Tables 1–2, Figure 10).

use crate::parallel::parallel_map;
use fairsched_core::fairness::FairnessReport;
use fairsched_core::model::{Time, Trace};
use fairsched_core::scheduler::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
    RandScheduler, RandomScheduler, RefScheduler, RoundRobinScheduler, Scheduler,
    UtFairShareScheduler,
};
use fairsched_sim::simulate;
use fairsched_workloads::{generate, preset, to_trace, MachineSplit, PresetName};
use serde::Serialize;

/// An evaluated algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algo {
    /// ROUNDROBIN baseline.
    RoundRobin,
    /// RAND with the given number of sampled permutations.
    Rand(usize),
    /// DIRECTCONTR heuristic.
    DirectContr,
    /// FAIRSHARE (usage/share balancing).
    FairShare,
    /// UTFAIRSHARE (utility/share balancing).
    UtFairShare,
    /// CURRFAIRSHARE (running-jobs/share balancing).
    CurrFairShare,
    /// Global FIFO (extra baseline).
    Fifo,
    /// Uniform random (extra baseline).
    Random,
}

impl Algo {
    /// The paper's Table 1/2 row set, in row order.
    pub const TABLE_SET: [Algo; 6] = [
        Algo::RoundRobin,
        Algo::Rand(15),
        Algo::DirectContr,
        Algo::FairShare,
        Algo::UtFairShare,
        Algo::CurrFairShare,
    ];

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Algo::RoundRobin => "RoundRobin".into(),
            Algo::Rand(n) => format!("Rand (N={n})"),
            Algo::DirectContr => "DirectContr".into(),
            Algo::FairShare => "FairShare".into(),
            Algo::UtFairShare => "UtFairShare".into(),
            Algo::CurrFairShare => "CurrFairShare".into(),
            Algo::Fifo => "Fifo".into(),
            Algo::Random => "Random".into(),
        }
    }

    /// Instantiates the scheduler for a trace (seed drives any internal
    /// randomness deterministically).
    pub fn build(&self, trace: &Trace, seed: u64) -> Box<dyn Scheduler> {
        match self {
            Algo::RoundRobin => Box::new(RoundRobinScheduler::new()),
            Algo::Rand(n) => Box::new(RandScheduler::new(trace, *n, seed)),
            Algo::DirectContr => Box::new(DirectContrScheduler::new(seed)),
            Algo::FairShare => Box::new(FairShareScheduler::new()),
            Algo::UtFairShare => Box::new(UtFairShareScheduler::new()),
            Algo::CurrFairShare => Box::new(CurrFairShareScheduler::new()),
            Algo::Fifo => Box::new(FifoScheduler::new()),
            Algo::Random => Box::new(RandomScheduler::new(seed)),
        }
    }
}

/// Configuration of a delay-table experiment (one workload cell of
/// Table 1/2, or one x-axis point of Figure 10).
#[derive(Clone, Debug)]
pub struct DelayExperiment {
    /// The workload preset.
    pub preset: PresetName,
    /// Machine/user scale (1.0 = the archive's published size).
    pub scale: f64,
    /// Evaluation horizon (5·10⁴ for Table 1, 5·10⁵ for Table 2).
    pub horizon: Time,
    /// Number of organizations (the paper uses 5; Figure 10 sweeps 2–10).
    pub n_orgs: usize,
    /// Instances to average over (the paper uses 100).
    pub n_instances: usize,
    /// Base RNG seed; instance `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Machine split between organizations.
    pub split: MachineSplit,
    /// Algorithms to evaluate.
    pub algos: Vec<Algo>,
}

/// Mean/sd of `Δψ/p_tot` for one algorithm.
#[derive(Clone, Debug, Serialize)]
pub struct AlgoStats {
    /// Algorithm label.
    pub label: String,
    /// Mean unfairness over instances.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Per-instance values.
    pub values: Vec<f64>,
}

impl AlgoStats {
    fn from_values(label: String, values: Vec<f64>) -> AlgoStats {
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        AlgoStats { label, mean, sd: var.sqrt(), values }
    }
}

/// Runs one seeded instance: generates the workload, computes the REF
/// reference schedule, then evaluates every algorithm's `Δψ/p_tot`.
pub fn run_instance(exp: &DelayExperiment, seed: u64) -> Vec<(String, f64)> {
    let p = preset(exp.preset, exp.scale, exp.horizon);
    let jobs = generate(&p.synth, seed);
    let trace = to_trace(&jobs, exp.n_orgs, p.synth.n_machines, exp.split, seed)
        .expect("generated trace is valid");

    let mut reference = RefScheduler::new(&trace);
    let ref_result = simulate(&trace, &mut reference, exp.horizon);

    exp.algos
        .iter()
        .map(|algo| {
            let mut scheduler = algo.build(&trace, seed ^ 0x5eed);
            let result = simulate(&trace, scheduler.as_mut(), exp.horizon);
            let report = FairnessReport::from_schedules(
                &trace,
                &result.schedule,
                &ref_result.schedule,
                exp.horizon,
            );
            (algo.label(), report.unfairness())
        })
        .collect()
}

/// Runs the full experiment (instances in parallel) and aggregates.
pub fn run_delay_experiment(exp: &DelayExperiment) -> Vec<AlgoStats> {
    let seeds: Vec<u64> = (0..exp.n_instances as u64).map(|i| exp.base_seed + i).collect();
    let per_instance = parallel_map(seeds, |seed| run_instance(exp, seed));
    exp.algos
        .iter()
        .enumerate()
        .map(|(ai, algo)| {
            let values: Vec<f64> = per_instance.iter().map(|inst| inst[ai].1).collect();
            AlgoStats::from_values(algo.label(), values)
        })
        .collect()
}

/// The default scale for a preset: full size for the small LPC-EGEE
/// cluster, scaled-down pools (~120 machines) for the three big systems so
/// the exponential REF reference stays laptop-friendly. `--paper-scale`
/// overrides to 1.0 everywhere.
pub fn default_scale(name: PresetName) -> f64 {
    match name {
        PresetName::LpcEgee => 1.0,
        PresetName::PikIplex => 0.05,
        PresetName::SharcnetWhale => 0.04,
        PresetName::Ricc => 0.015,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp() -> DelayExperiment {
        DelayExperiment {
            preset: PresetName::LpcEgee,
            scale: 0.1,
            horizon: 2_000,
            n_orgs: 3,
            n_instances: 2,
            base_seed: 7,
            split: MachineSplit::Zipf(1.0),
            algos: vec![Algo::RoundRobin, Algo::FairShare, Algo::Rand(5)],
        }
    }

    #[test]
    fn experiment_produces_stats_per_algo() {
        let stats = run_delay_experiment(&tiny_exp());
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert_eq!(s.values.len(), 2);
            assert!(s.mean >= 0.0);
            assert!(s.sd >= 0.0);
        }
    }

    #[test]
    fn instance_is_deterministic() {
        let exp = tiny_exp();
        assert_eq!(run_instance(&exp, 3), run_instance(&exp, 3));
    }

    #[test]
    fn labels_match_table_set() {
        let labels: Vec<String> = Algo::TABLE_SET.iter().map(|a| a.label()).collect();
        assert_eq!(labels[0], "RoundRobin");
        assert_eq!(labels[1], "Rand (N=15)");
        assert_eq!(labels[5], "CurrFairShare");
    }

    #[test]
    fn stats_math() {
        let s = AlgoStats::from_values("x".into(), vec![1.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.sd - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
