//! The delay-table experiment runner (Tables 1–2, Figure 10).

use crate::parallel::parallel_map;
use fairsched_core::model::{Time, Trace};
use fairsched_core::scheduler::registry::{
    BuildContext, Registry, SchedulerSpec, SpecError,
};
use fairsched_core::scheduler::Scheduler;
use fairsched_sim::report::{LabeledStat, MetricSpec, Report};
use fairsched_sim::{SimError, Simulation};
use fairsched_workloads::spec::{WorkloadContext, WorkloadRegistry, WorkloadSpec};
use fairsched_workloads::PresetName;
use std::fmt;

/// The shared default scheduler registry that [`Algo`] and the experiment
/// runners resolve through unless a custom registry is supplied via
/// [`run_delay_experiment_with_registry`] — now the process-wide
/// [`Registry::shared`] instance (one build per process, shared with
/// `Simulation` sessions).
pub fn registry() -> &'static Registry {
    Registry::shared()
}

/// An evaluated algorithm: a thin wrapper over a scheduler-registry
/// [`SchedulerSpec`].
///
/// The classic variants keep the paper tables' row identities (and
/// labels); [`Algo::Spec`] admits *any* registry spec string, so growing
/// an experiment matrix no longer touches this enum. All construction
/// knowledge lives in the registry: [`Algo::build`] is
/// `registry.build(self.spec(), ..)` against the shared default
/// [`registry`]. Downstream policies added via `Registry::register` run
/// through [`run_delay_experiment_with_registry`] /
/// [`run_instance_with_registry`] with the extended registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Algo {
    /// ROUNDROBIN baseline.
    RoundRobin,
    /// RAND with the given number of sampled permutations.
    Rand(usize),
    /// DIRECTCONTR heuristic.
    DirectContr,
    /// FAIRSHARE (usage/share balancing).
    FairShare,
    /// UTFAIRSHARE (utility/share balancing).
    UtFairShare,
    /// CURRFAIRSHARE (running-jobs/share balancing).
    CurrFairShare,
    /// Global FIFO (extra baseline).
    Fifo,
    /// Uniform random (extra baseline).
    Random,
    /// Any registered scheduler spec (labelled by its canonical string).
    Spec(SchedulerSpec),
}

impl Algo {
    /// The paper's Table 1/2 row set, in row order.
    pub const TABLE_SET: [Algo; 6] = [
        Algo::RoundRobin,
        Algo::Rand(15),
        Algo::DirectContr,
        Algo::FairShare,
        Algo::UtFairShare,
        Algo::CurrFairShare,
    ];

    /// Parses a registry spec string into an [`Algo::Spec`] row.
    pub fn parse(spec: &str) -> Result<Algo, SpecError> {
        Ok(Algo::Spec(spec.parse()?))
    }

    /// The registry spec this algorithm resolves to.
    pub fn spec(&self) -> SchedulerSpec {
        match self {
            Algo::RoundRobin => SchedulerSpec::bare("roundrobin"),
            Algo::Rand(n) => SchedulerSpec::bare("rand").with("perms", n),
            Algo::DirectContr => SchedulerSpec::bare("directcontr"),
            Algo::FairShare => SchedulerSpec::bare("fairshare"),
            Algo::UtFairShare => SchedulerSpec::bare("utfairshare"),
            Algo::CurrFairShare => SchedulerSpec::bare("currfairshare"),
            Algo::Fifo => SchedulerSpec::bare("fifo"),
            Algo::Random => SchedulerSpec::bare("random"),
            Algo::Spec(spec) => spec.clone(),
        }
    }

    /// Display label (table row identity; the classic variants keep the
    /// paper's labels).
    pub fn label(&self) -> String {
        match self {
            Algo::RoundRobin => "RoundRobin".into(),
            Algo::Rand(n) => format!("Rand (N={n})"),
            Algo::DirectContr => "DirectContr".into(),
            Algo::FairShare => "FairShare".into(),
            Algo::UtFairShare => "UtFairShare".into(),
            Algo::CurrFairShare => "CurrFairShare".into(),
            Algo::Fifo => "Fifo".into(),
            Algo::Random => "Random".into(),
            Algo::Spec(spec) => spec.to_string(),
        }
    }

    /// Instantiates the scheduler for a trace via the registry (seed
    /// drives any internal randomness deterministically).
    ///
    /// # Panics
    /// Panics if the spec is not buildable — impossible for the classic
    /// variants, and a configuration error worth failing loudly for in an
    /// experiment run for [`Algo::Spec`].
    pub fn build(&self, trace: &Trace, seed: u64) -> Box<dyn Scheduler> {
        registry()
            .build(&self.spec(), &BuildContext { trace, seed })
            .unwrap_or_else(|e| panic!("algo {:?} is not buildable: {e}", self.label()))
    }
}

/// Configuration of a delay-table experiment (one workload cell of
/// Table 1/2, or one x-axis point of Figure 10).
///
/// The workload axis is pure data: any [`WorkloadSpec`] resolvable through
/// the workload registry — `synth:preset=lpc,scale=0.1,orgs=5,...` for the
/// paper's presets ([`fairsched_workloads::synth_spec`] builds these from
/// the classic knobs), `swf:path=...` for archive logs, `fpt:k=8` for the
/// lattice-bench family, or any downstream-registered family.
#[derive(Clone, Debug)]
pub struct DelayExperiment {
    /// The workload spec; instance `i` builds it with seed `base_seed + i`.
    pub workload: WorkloadSpec,
    /// Evaluation horizon (5·10⁴ for Table 1, 5·10⁵ for Table 2).
    ///
    /// Distinct from the workload spec's own `horizon` param (the submit
    /// window): the paper evaluates at the same point generation stops, so
    /// pass one value to both — as [`fairsched_workloads::synth_spec`] and
    /// `resolve_workloads` do — unless a shorter/longer evaluation window
    /// is the deliberate point of the experiment.
    pub horizon: Time,
    /// Instances to average over (the paper uses 100).
    pub n_instances: usize,
    /// Base RNG seed; instance `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Algorithms to evaluate.
    pub algos: Vec<Algo>,
    /// The metric whose aggregate each cell reports — resolved through
    /// the shared [`fairsched_sim::report::MetricRegistry`]. The paper's
    /// tables use [`DelayExperiment::delay_metric`] (`Δψ/p_tot` vs REF);
    /// any registered metric spec works (`stretch`,
    /// `delay:norm=ideal`, …).
    pub metric: MetricSpec,
}

impl DelayExperiment {
    /// The paper's table metric: `delay` (aggregate `Δψ/p_tot` vs REF).
    pub fn delay_metric() -> MetricSpec {
        MetricSpec::bare("delay")
    }
}

/// Per-algorithm mean/sd of the experiment metric — the aggregation is
/// [`fairsched_sim::report::LabeledStat`], shared with every report sink.
pub type AlgoStats = LabeledStat;

/// One failed experiment instance: which seed, and the typed reason
/// (malformed spec, trace validation, scheduler contract violation, …).
#[derive(Debug)]
pub struct InstanceFailure {
    /// The instance's workload seed.
    pub seed: u64,
    /// The typed simulation error.
    pub error: SimError,
}

impl fmt::Display for InstanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance seed {}: {}", self.seed, self.error)
    }
}

/// The outcome of a delay experiment: aggregate stats over the instances
/// that ran, plus the per-instance failures (empty on a clean run).
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Per-algorithm stats over the *successful* instances.
    pub stats: Vec<AlgoStats>,
    /// Instances that could not be evaluated, with their typed errors.
    pub failures: Vec<InstanceFailure>,
}

/// Runs one seeded instance: builds the workload through the shared
/// [`WorkloadRegistry`], then evaluates every algorithm's experiment
/// metric through the typed [`Report`] pipeline (the REF reference
/// schedule is run automatically when the metric compares against it) —
/// all through the [`Simulation`] session API and the shared default
/// [`registry`]. Failures surface as typed [`SimError`]s instead of
/// panics.
pub fn run_instance(
    exp: &DelayExperiment,
    seed: u64,
) -> Result<Vec<(String, f64)>, SimError> {
    run_instance_with_registry(exp, seed, registry())
}

/// [`run_instance`] resolving scheduler specs through a caller-supplied
/// registry — the entry point for experiments over downstream policies
/// added with `Registry::register`. (Downstream *workloads* go through
/// [`run_instance_with_registries`].)
pub fn run_instance_with_registry(
    exp: &DelayExperiment,
    seed: u64,
    registry: &Registry,
) -> Result<Vec<(String, f64)>, SimError> {
    run_instance_with_registries(exp, seed, registry, WorkloadRegistry::shared())
}

/// [`run_instance`] with both registries caller-supplied, for experiments
/// combining downstream policies and downstream workload families.
pub fn run_instance_with_registries(
    exp: &DelayExperiment,
    seed: u64,
    registry: &Registry,
    workloads: &WorkloadRegistry,
) -> Result<Vec<(String, f64)>, SimError> {
    let reports = run_instance_reports(exp, seed, registry, workloads)?;
    Ok(exp
        .algos
        .iter()
        .zip(reports)
        .map(|(algo, report)| {
            // A scalar metric contributes its aggregate; a time-series
            // metric (the `timeline` family) projects to its final
            // sample — which for `stat=unfairness` equals `delay`'s
            // `Δψ/p_tot` at the horizon bit for bit, so timeline cells
            // aggregate exactly like the paper's tables.
            let value = report
                .columns
                .first()
                .map(|c| c.aggregate.as_f64())
                .or_else(|| {
                    report
                        .series
                        .first()
                        .and_then(|s| s.final_aggregate())
                        .map(|v| v.as_f64())
                })
                .unwrap_or_default();
            (algo.label(), value)
        })
        .collect())
}

/// The full per-instance reports behind [`run_instance`]: one typed
/// [`Report`] per algorithm (canonical metric spec included for
/// provenance), in algorithm order.
pub fn run_instance_reports(
    exp: &DelayExperiment,
    seed: u64,
    registry: &Registry,
    workloads: &WorkloadRegistry,
) -> Result<Vec<Report>, SimError> {
    let trace = workloads
        .build(&exp.workload, &WorkloadContext { seed })
        .map_err(SimError::Workload)?;
    let session = Simulation::new(&trace)
        .registry(registry)
        .horizon(exp.horizon)
        .seed(seed ^ 0x5eed)
        .metric_specs(vec![exp.metric.clone()]);
    let specs: Vec<SchedulerSpec> = exp.algos.iter().map(Algo::spec).collect();
    let mut reports = session.run_matrix_reports(&specs)?;
    for report in &mut reports {
        report.workload_spec = Some(exp.workload.clone());
    }
    Ok(reports)
}

/// What [`persist_instance_cells`] did for one instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistedCells {
    /// Cells computed and committed by this call.
    pub written: usize,
    /// Cells skipped because an intact committed result already existed.
    pub skipped: usize,
    /// The cell file paths, in algorithm order.
    pub paths: Vec<std::path::PathBuf>,
}

/// Persists one instance's per-algorithm reports as durable experiment
/// cells under `dir` — the same content-addressed
/// `<fnv128(key)>.json` format the `fairsched experiment` runner
/// commits, written with the same atomic write-then-rename. Re-running
/// skips every intact committed cell, so an interrupted bench sweep
/// resumes instead of recomputing: bench artifacts are experiment cells.
///
/// The cell key records the exact seeds [`run_instance_reports`] uses
/// (workload built at `seed`, session seeded `seed ^ 0x5eed`), so a cell
/// written here is bit-identical to one computed by the durable runner
/// for the same decoupled-seed spec.
pub fn persist_instance_cells(
    exp: &DelayExperiment,
    instance: u64,
    dir: &std::path::Path,
    registry: &Registry,
    workloads: &WorkloadRegistry,
) -> Result<PersistedCells, SimError> {
    use fairsched_experiment::{decode_cell, encode_cell, CellKey};

    let seed = exp.base_seed.wrapping_add(instance);
    let keys: Vec<CellKey> = exp
        .algos
        .iter()
        .map(|algo| CellKey {
            workload: exp.workload.clone(),
            scheduler: algo.spec(),
            metrics: vec![exp.metric.clone()],
            horizon: Some(exp.horizon),
            validate: false,
            instance,
            workload_seed: seed,
            scheduler_seed: seed ^ 0x5eed,
        })
        .collect();
    std::fs::create_dir_all(dir).map_err(|e| SimError::io("create-dir", dir, &e))?;
    let mut out = PersistedCells::default();
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let path = dir.join(key.file_name());
        let intact = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::parse_value(&text).ok())
            .and_then(|v| decode_cell(&v))
            .is_some_and(|stored| stored.key == key.canonical());
        if intact {
            out.skipped += 1;
        } else {
            pending.push(i);
        }
        out.paths.push(path);
    }
    if pending.is_empty() {
        return Ok(out);
    }
    let reports = run_instance_reports(exp, seed, registry, workloads)?;
    for i in pending {
        let outcome: Result<Report, SimError> = Ok(reports[i].clone());
        let mut text = encode_cell(&keys[i], &outcome).to_json_pretty();
        text.push('\n');
        let path = &out.paths[i];
        fairsched_core::journal::atomic_write(path, &text)?;
        out.written += 1;
    }
    Ok(out)
}

/// Runs the full experiment (instances in parallel) and aggregates,
/// reporting any per-instance failures to stderr. See
/// [`try_run_delay_experiment_with_registry`] for the non-printing,
/// failure-returning form.
pub fn run_delay_experiment(exp: &DelayExperiment) -> Vec<AlgoStats> {
    run_delay_experiment_with_registry(exp, registry())
}

/// [`run_delay_experiment`] resolving specs through a caller-supplied
/// registry (for downstream policies).
pub fn run_delay_experiment_with_registry(
    exp: &DelayExperiment,
    registry: &Registry,
) -> Vec<AlgoStats> {
    let outcome = try_run_delay_experiment_with_registry(exp, registry);
    for failure in &outcome.failures {
        eprintln!("warning: skipped {failure}");
    }
    outcome.stats
}

/// Runs the full experiment (instances in parallel), aggregating over the
/// instances that succeed and collecting every failure with its seed —
/// one bad instance no longer brings down a 100-instance matrix.
pub fn try_run_delay_experiment_with_registry(
    exp: &DelayExperiment,
    registry: &Registry,
) -> ExperimentOutcome {
    let seeds: Vec<u64> =
        (0..exp.n_instances as u64).map(|i| exp.base_seed + i).collect();
    let per_instance = parallel_map(seeds, |seed| {
        (seed, run_instance_with_registry(exp, seed, registry))
    });
    let mut successes: Vec<Vec<(String, f64)>> = Vec::new();
    let mut failures = Vec::new();
    for (seed, result) in per_instance {
        match result {
            Ok(values) => successes.push(values),
            Err(error) => failures.push(InstanceFailure { seed, error }),
        }
    }
    let stats = exp
        .algos
        .iter()
        .enumerate()
        .map(|(ai, algo)| {
            let values: Vec<f64> = successes.iter().map(|inst| inst[ai].1).collect();
            AlgoStats::from_values(algo.label(), values)
        })
        .collect();
    ExperimentOutcome { stats, failures }
}

/// The default scale for a preset: full size for the small LPC-EGEE
/// cluster, scaled-down pools (~120 machines) for the three big systems so
/// the exponential REF reference stays laptop-friendly. `--paper-scale`
/// overrides to 1.0 everywhere.
pub fn default_scale(name: PresetName) -> f64 {
    match name {
        PresetName::LpcEgee => 1.0,
        PresetName::PikIplex => 0.05,
        PresetName::SharcnetWhale => 0.04,
        PresetName::Ricc => 0.015,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use fairsched_workloads::{synth_spec, MachineSplit};

    fn tiny_exp() -> DelayExperiment {
        DelayExperiment {
            workload: synth_spec(
                PresetName::LpcEgee,
                0.1,
                3,
                MachineSplit::Zipf(1.0),
                2_000,
            ),
            horizon: 2_000,
            n_instances: 2,
            base_seed: 7,
            algos: vec![Algo::RoundRobin, Algo::FairShare, Algo::Rand(5)],
            metric: DelayExperiment::delay_metric(),
        }
    }

    #[test]
    fn persisted_cells_skip_on_rerun_and_round_trip() {
        let exp = tiny_exp();
        let dir = std::env::temp_dir().join("fairsched-bench-cells-test");
        let _ = std::fs::remove_dir_all(&dir);
        let first =
            persist_instance_cells(&exp, 0, &dir, registry(), WorkloadRegistry::shared())
                .unwrap();
        assert_eq!(first.written, exp.algos.len());
        assert_eq!(first.skipped, 0);
        // Every committed cell decodes, carries its own key, and holds a
        // successful report for the experiment's metric.
        for path in &first.paths {
            let text = std::fs::read_to_string(path).unwrap();
            let value = serde_json::parse_value(&text).unwrap();
            let stored = fairsched_experiment::decode_cell(&value).unwrap();
            assert_eq!(stored.status, "done");
            let report = stored.report.unwrap();
            assert_eq!(report.columns[0].spec, exp.metric);
        }
        // A second call recomputes nothing: bench artifacts resume.
        let again =
            persist_instance_cells(&exp, 0, &dir, registry(), WorkloadRegistry::shared())
                .unwrap();
        assert_eq!(again.written, 0);
        assert_eq!(again.skipped, exp.algos.len());
        assert_eq!(again.paths, first.paths);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_produces_stats_per_algo() {
        let stats = run_delay_experiment(&tiny_exp());
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert_eq!(s.values.len(), 2);
            assert!(s.mean >= 0.0);
            assert!(s.sd >= 0.0);
        }
    }

    #[test]
    fn instance_is_deterministic() {
        let exp = tiny_exp();
        assert_eq!(run_instance(&exp, 3).unwrap(), run_instance(&exp, 3).unwrap());
    }

    /// A scheduler that violates the greedy contract must surface as a
    /// per-instance failure (with its seed), not a panic, and must not
    /// take the healthy instances down with it.
    #[test]
    fn bad_scheduler_is_reported_per_instance_not_panicked() {
        use fairsched_core::model::{ClusterInfo, OrgId};
        use fairsched_core::scheduler::registry::{SchedulerFactory, SpecError};
        use fairsched_core::scheduler::SelectContext;

        struct Broken;
        impl fairsched_core::scheduler::Scheduler for Broken {
            fn name(&self) -> String {
                "Broken".into()
            }
            fn init(&mut self, _info: &ClusterInfo) {}
            fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
                // Deliberately select an org with no waiting jobs.
                OrgId(ctx.waiting.len() as u32 + 1)
            }
        }
        struct BrokenFactory;
        impl SchedulerFactory for BrokenFactory {
            fn name(&self) -> &str {
                "broken"
            }
            fn summary(&self) -> &str {
                "test-only contract violator"
            }
            fn build(
                &self,
                _spec: &SchedulerSpec,
                _ctx: &BuildContext<'_>,
            ) -> Result<Box<dyn Scheduler>, SpecError> {
                Ok(Box::new(Broken))
            }
        }

        let mut registry = Registry::default();
        registry.register(Box::new(BrokenFactory));
        let mut exp = tiny_exp();
        exp.algos = vec![Algo::parse("broken").unwrap()];
        exp.n_instances = 2;
        let outcome = try_run_delay_experiment_with_registry(&exp, &registry);
        assert_eq!(outcome.failures.len(), 2, "both instances must fail");
        assert_eq!(outcome.stats.len(), 1);
        assert!(outcome.stats[0].values.is_empty());
        for f in &outcome.failures {
            assert!(
                matches!(f.error, SimError::BadSelection { .. }),
                "unexpected error: {}",
                f.error
            );
            assert!(f.seed == exp.base_seed || f.seed == exp.base_seed + 1);
        }
    }

    /// Healthy algorithms still aggregate when some instances fail for an
    /// unrelated reason (here: none fail — the outcome form is just empty).
    #[test]
    fn outcome_has_no_failures_on_clean_run() {
        let outcome = try_run_delay_experiment_with_registry(&tiny_exp(), registry());
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.stats.len(), 3);
    }

    /// An invalid workload spec in the experiment matrix is collected as a
    /// typed per-instance failure (seed + `SimError::Workload`), never a
    /// panic, and the outcome structure still comes back well-formed so a
    /// surrounding multi-workload sweep continues.
    #[test]
    fn invalid_workload_spec_is_collected_not_panicked() {
        use fairsched_workloads::WorkloadError;
        let mut exp = tiny_exp();
        // scale=0 violates the synth factory's (0, 1] constraint.
        exp.workload = "synth:preset=lpc,scale=0".parse().unwrap();
        let outcome = try_run_delay_experiment_with_registry(&exp, registry());
        assert_eq!(outcome.failures.len(), exp.n_instances, "every instance must fail");
        for f in &outcome.failures {
            assert!(
                matches!(
                    &f.error,
                    SimError::Workload(WorkloadError::BadParam { workload, param, .. })
                        if workload == "synth" && param == "scale"
                ),
                "unexpected error: {}",
                f.error
            );
        }
        assert_eq!(outcome.stats.len(), exp.algos.len());
        assert!(outcome.stats.iter().all(|s| s.values.is_empty()));
        // An unknown workload *name* is equally typed.
        // lint:allow(spec-literal) deliberately unregistered family.
        exp.workload = "quantumfoam:qubits=8".parse().unwrap();
        let outcome = try_run_delay_experiment_with_registry(&exp, registry());
        assert!(outcome.failures.iter().all(|f| matches!(
            f.error,
            SimError::Workload(WorkloadError::UnknownWorkload { .. })
        )));
    }

    /// The spec-grid workload axis reaches experiments end to end: an fpt
    /// family cell runs through the same runner as the synth presets.
    #[test]
    fn fpt_workload_specs_run_in_experiments() {
        let exp = DelayExperiment {
            workload: "fpt:horizon=600,k=3".parse().unwrap(),
            horizon: 600,
            n_instances: 1,
            base_seed: 3,
            algos: vec![Algo::Fifo, Algo::RoundRobin],
            metric: DelayExperiment::delay_metric(),
        };
        let stats = run_delay_experiment(&exp);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].values.len(), 1);
    }

    /// A timeline metric in a table cell projects to its final sample,
    /// which (at `stat=unfairness`) is bit-identical to the `delay` cell —
    /// so trajectory tables stay comparable with the paper's.
    #[test]
    fn timeline_metric_cells_project_to_the_final_point() {
        let mut exp = tiny_exp();
        exp.n_instances = 1;
        let delay_vals = run_instance(&exp, 3).unwrap();
        exp.metric = "timeline:samples=16".parse().unwrap();
        let timeline_vals = run_instance(&exp, 3).unwrap();
        assert_eq!(timeline_vals.len(), delay_vals.len());
        for ((l1, v1), (l2, v2)) in timeline_vals.iter().zip(&delay_vals) {
            assert_eq!(l1, l2);
            assert_eq!(
                v1.to_bits(),
                v2.to_bits(),
                "timeline cell must equal delay for {l1}"
            );
        }
    }

    #[test]
    fn labels_match_table_set() {
        let labels: Vec<String> = Algo::TABLE_SET.iter().map(|a| a.label()).collect();
        assert_eq!(labels[0], "RoundRobin");
        assert_eq!(labels[1], "Rand (N=15)");
        assert_eq!(labels[5], "CurrFairShare");
    }

    #[test]
    fn stats_math() {
        let s = AlgoStats::from_values("x".into(), vec![1.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.sd - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn algos_resolve_through_registry_specs() {
        assert_eq!(Algo::RoundRobin.spec().to_string(), "roundrobin");
        assert_eq!(Algo::Rand(75).spec().to_string(), "rand:perms=75");
        assert_eq!(
            Algo::Spec("general-ref:util=flowtime".parse().unwrap()).label(),
            "general-ref:util=flowtime"
        );
        assert!(Algo::parse("rand perm").is_err());
    }

    #[test]
    fn spec_rows_run_in_experiments() {
        let mut exp = tiny_exp();
        exp.algos = vec![Algo::parse("fifo").unwrap(), Algo::FairShare];
        exp.n_instances = 1;
        let stats = run_delay_experiment(&exp);
        assert_eq!(stats[0].label, "fifo");
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn downstream_policies_reach_experiments_via_custom_registry() {
        use fairsched_core::scheduler::registry::{SchedulerFactory, SpecError};
        use fairsched_core::scheduler::RoundRobinScheduler;

        struct Custom;
        impl SchedulerFactory for Custom {
            fn name(&self) -> &str {
                "house-policy"
            }
            fn summary(&self) -> &str {
                "test-only downstream policy"
            }
            fn build(
                &self,
                _spec: &SchedulerSpec,
                _ctx: &BuildContext<'_>,
            ) -> Result<Box<dyn Scheduler>, SpecError> {
                Ok(Box::new(RoundRobinScheduler::new()))
            }
        }

        let mut extended = Registry::default();
        extended.register(Box::new(Custom));
        let mut exp = tiny_exp();
        exp.algos = vec![Algo::parse("house-policy").unwrap(), Algo::FairShare];
        exp.n_instances = 1;
        let stats = run_delay_experiment_with_registry(&exp, &extended);
        assert_eq!(stats[0].label, "house-policy");
        assert_eq!(stats.len(), 2);
    }
}
