//! The tracked lattice perf baseline: `BENCH_lattice.json`.
//!
//! Every later PR needs a perf trajectory to beat, so the `bench_baseline`
//! binary measures the coalition-lattice fast path on fixed workloads and
//! emits one machine-readable JSON report. Run it with
//!
//! ```text
//! cargo run --release -p fairsched-bench --bin bench_baseline -- \
//!     [--paper-scale] [--samples N] [--out BENCH_lattice.json]
//! ```
//!
//! # `BENCH_lattice.json` format (schema `fairsched-bench-lattice/v1`)
//!
//! | field | meaning |
//! |---|---|
//! | `schema` | format tag, bump on breaking change |
//! | `mode` | `"quick"` (default) or `"paper-scale"` |
//! | `reference.label` | provenance of the committed pre-fast-path measurement |
//! | `reference.ref_k8_wall_ns_min` | REF `k=8` lattice bench, min wall ns, **before** the fast path |
//! | `cases[]` | one entry per measured scheduler × workload |
//! | `cases[].wall_ns_min` / `wall_ns_mean` | min / mean wall time over `samples` runs |
//! | `cases[].engine_events` | releases + starts + completions seen by the engine |
//! | `cases[].events_per_sec` | `engine_events / (wall_ns_min / 1e9)` |
//! | `cases[].lattice` | the lattice's own work counters ([`LatticeStats`]): settles, rounds, release fan-out, sim starts/completions, φ cache hits / rebuilds / delta pushes / evictions |
//! | `summary.ref_k8_wall_ns_min` | this run's REF `k=8` measurement |
//! | `summary.speedup_vs_reference` | `reference / current` (≥ 3× is the PR-2 acceptance bar) |
//!
//! The *quick* matrix times REF on the FPT growth workloads (`k` = 2, 4,
//! 6, 8 — the same family as `benches/lattice.rs`) plus RAND at `k` = 8;
//! `--paper-scale` appends a smoke matrix at the paper's experiment size
//! (LPC-EGEE at scale 1.0, horizon 5·10⁴, 5 organizations) so the numbers
//! track the configuration Tables 1–2 actually run. The criterion suites
//! (`cargo bench -p fairsched-bench`) complement this file with
//! micro-level numbers; CI's `bench-smoke` job runs both and uploads the
//! JSON as an artifact.

use fairsched_core::scheduler::lattice::LatticeStats;
use fairsched_core::scheduler::{
    FairShareScheduler, FifoScheduler, RandScheduler, RefScheduler, Scheduler,
};
use fairsched_core::Trace;
use fairsched_sim::{simulate, SimResult, SimSession};
use fairsched_workloads::spec::{fpt_spec, WorkloadContext, WorkloadRegistry};
use fairsched_workloads::{
    generate, synth_spec, to_trace, MachineSplit, PresetName, SynthConfig,
};
use serde::Serialize;
use std::time::Instant;

/// Schema tag written into the report.
pub const SCHEMA: &str = "fairsched-bench-lattice/v1";

/// The pre-fast-path REF `k=8` measurement this file's speedups are
/// judged against: commit `ecd7721` ("PR 1"), `HashMap` coalition index +
/// from-scratch Shapley at every event time, measured with this same
/// harness (min of 5 samples) immediately before the fast-path rework on
/// the same machine.
pub const PRE_FASTPATH_REF_K8_WALL_NS: u64 = 117_794_892;

/// The lattice work counters, mirrored into the report (serializable).
#[derive(Clone, Debug, Serialize)]
pub struct LatticeCounters {
    /// `settle` calls (decision points).
    pub settles: u64,
    /// Distinct event times processed.
    pub rounds: u64,
    /// Job releases delivered to sims (fan-out).
    pub releases: u64,
    /// Hypothetical job starts across sims.
    pub sim_starts: u64,
    /// Hypothetical completions applied across sims.
    pub sim_completions: u64,
    /// φ reads served from a live polynomial cache.
    pub phi_cache_hits: u64,
    /// φ from-scratch polynomial builds.
    pub phi_recomputes: u64,
    /// Weighted deltas pushed into live φ caches.
    pub phi_deltas_applied: u64,
    /// φ caches dropped by the rent-to-buy rule.
    pub phi_evictions: u64,
}

impl From<LatticeStats> for LatticeCounters {
    fn from(s: LatticeStats) -> Self {
        LatticeCounters {
            settles: s.settles,
            rounds: s.rounds,
            releases: s.releases,
            sim_starts: s.sim_starts,
            sim_completions: s.sim_completions,
            phi_cache_hits: s.phi_cache_hits,
            phi_recomputes: s.phi_recomputes,
            phi_deltas_applied: s.phi_deltas_applied,
            phi_evictions: s.phi_evictions,
        }
    }
}

/// One measured scheduler × workload cell.
#[derive(Clone, Debug, Serialize)]
pub struct CaseResult {
    /// Case id, e.g. `"ref/k=8"`.
    pub name: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// Number of organizations.
    pub k: usize,
    /// Jobs in the trace.
    pub n_jobs: usize,
    /// Evaluation horizon.
    pub horizon: u64,
    /// Timed runs (after one untimed warmup).
    pub samples: usize,
    /// Fastest run, nanoseconds.
    pub wall_ns_min: u64,
    /// Mean over the timed runs, nanoseconds.
    pub wall_ns_mean: u64,
    /// Engine events: releases + starts + completions.
    pub engine_events: u64,
    /// `engine_events / (wall_ns_min / 1e9)`.
    pub events_per_sec: f64,
    /// The scheduler lattice's own work counters (REF/RAND only).
    pub lattice: Option<LatticeCounters>,
}

/// One measured timeline (streaming-sweep) row: the fairness trajectory
/// evaluator timed against the naive per-sample recompute on the same
/// schedules, at one sample count. Rows at several sample counts
/// demonstrate the sub-quadratic scaling claim: the oracle's wall time
/// grows linearly with `samples` while the streaming sweep's stays nearly
/// flat (one pass over the schedule entries regardless).
#[derive(Clone, Debug, Serialize)]
pub struct TimelineCase {
    /// Case id, e.g. `"timeline/k=8/s=512"`.
    pub name: String,
    /// Requested sample count.
    pub samples: usize,
    /// Points actually emitted (dedup'd grid).
    pub points: usize,
    /// Streaming sweep (`fairness_timeline`), min wall ns.
    pub streaming_wall_ns_min: u64,
    /// Naive per-sample recompute (`fairness_timeline_oracle`), min wall
    /// ns.
    pub oracle_wall_ns_min: u64,
    /// `oracle / streaming`.
    pub speedup_vs_oracle: f64,
    /// The trajectory's final `Δψ/p_tot` (equals the endpoint `delay`).
    pub final_unfairness: f64,
}

/// The committed reference point.
#[derive(Clone, Debug, Serialize)]
pub struct ReferencePoint {
    /// Where the number comes from.
    pub label: String,
    /// Pre-fast-path REF `k=8` min wall ns.
    pub ref_k8_wall_ns_min: u64,
}

/// Headline numbers.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// This run's REF `k=8` min wall ns.
    pub ref_k8_wall_ns_min: u64,
    /// `reference.ref_k8_wall_ns_min / summary.ref_k8_wall_ns_min`.
    pub speedup_vs_reference: f64,
}

/// The whole report (serialized to `BENCH_lattice.json`).
#[derive(Clone, Debug, Serialize)]
pub struct BaselineReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// `"quick"` or `"paper-scale"`.
    pub mode: String,
    /// The committed pre-change measurement.
    pub reference: ReferencePoint,
    /// All measured cases.
    pub cases: Vec<CaseResult>,
    /// The fairness-trajectory rows: streaming sweep vs naive oracle at
    /// growing sample counts on the `fpt:k=8` baseline workload.
    pub timeline: Vec<TimelineCase>,
    /// Headline comparison.
    pub summary: Summary,
}

/// The canonical lattice-bench workload family (`benches/lattice.rs` uses
/// the same traces): `2k` users on `2k` machines at load 0.8 — the
/// workload registry's `fpt:k=<k>` family, whose defaults reproduce the
/// historical hand-built construction bit for bit, keeping every committed
/// `BENCH_lattice.json` number comparable.
pub fn bench_workload(k: usize, seed: u64) -> Trace {
    WorkloadRegistry::shared()
        .build(&fpt_spec(k), &WorkloadContext { seed })
        .expect("fpt family builds for any k >= 1")
}

/// Organization count of the million-job scale tier.
pub const SCALE_K: usize = 100;

/// Job-count floor the scale-tier workload is tuned to exceed.
pub const SCALE_MIN_JOBS: usize = 1_000_000;

/// The seed the committed `scale/` rows are measured at.
pub const SCALE_SEED: u64 = 7;

/// The million-job scale-tier workload: ≥ 10⁶ short sequential jobs from
/// the synthetic generator, 2 000 Zipf-active users dealt over
/// [`SCALE_K`] = 100 organizations on 400 machines (Zipf split). The
/// parameters are tuned so the deterministic generator emits just over
/// [`SCALE_MIN_JOBS`] jobs at any seed — the tier exercising the columnar
/// trace layout, the streaming ψ sweep, and the O(n + k) per-org index at
/// the scale the quadratic paths they replaced could not reach.
pub fn scale_workload(seed: u64) -> Trace {
    let config = SynthConfig {
        n_users: 2_000,
        horizon: 26_000,
        n_machines: 4 * SCALE_K,
        load: 0.95,
        duration_median: 6.0,
        duration_sigma: 1.0,
        max_duration: 50,
        user_zipf: 1.1,
        session_jobs: 8.0,
        intra_session_gap: 2.0,
    };
    let jobs = generate(&config, seed);
    // lint:allow(panic-free) generator output over a 1-machine-floor split is always valid
    to_trace(&jobs, SCALE_K, config.n_machines, MachineSplit::Zipf(1.0), seed)
        .expect("scale workload builds")
}

/// Measures the scale tier: trace construction itself (one `scale/build`
/// row — the columnar assembly is part of what the tier guards), then the
/// non-lattice schedulers end to end. REF/RAND are absent by design: the
/// coalition lattice is 2^k and `k = 100` here.
fn run_scale(samples: usize) -> Vec<CaseResult> {
    // Trace construction is timed like any other case: min over a few
    // builds (a single sample is too noisy for the regression gate).
    let build_samples = samples.clamp(1, 3);
    let mut trace = scale_workload(SCALE_SEED);
    let mut build_min = u128::MAX;
    let mut build_total = 0u128;
    for _ in 0..build_samples {
        let started = Instant::now();
        trace = std::hint::black_box(scale_workload(SCALE_SEED));
        let ns = started.elapsed().as_nanos();
        build_min = build_min.min(ns);
        build_total += ns;
    }
    let n = trace.n_jobs();
    assert!(
        n >= SCALE_MIN_JOBS,
        "scale workload regressed below {SCALE_MIN_JOBS} jobs: {n}"
    );
    // Event-driven engine: a generous horizon (every job can finish) costs
    // nothing, and completed-schedule rows are what the tier tracks.
    let horizon = trace.completion_horizon();
    let mut out = vec![CaseResult {
        name: format!("scale/build/k={SCALE_K}"),
        scheduler: "trace-builder".to_string(),
        k: SCALE_K,
        n_jobs: n,
        horizon,
        samples: build_samples,
        wall_ns_min: build_min as u64,
        wall_ns_mean: (build_total / build_samples as u128) as u64,
        engine_events: n as u64,
        events_per_sec: n as f64 / (build_min as f64 / 1e9),
        lattice: None,
    }];
    let s = samples.clamp(1, 2);
    out.push(measure(
        &format!("scale/fifo/k={SCALE_K}"),
        &trace,
        SCALE_K,
        horizon,
        s,
        |_| FifoScheduler::new(),
        |_: &FifoScheduler| None,
    ));
    out.push(measure(
        &format!("scale/fairshare/k={SCALE_K}"),
        &trace,
        SCALE_K,
        horizon,
        s,
        |_| FairShareScheduler::new(),
        |_: &FairShareScheduler| None,
    ));
    out
}

/// How many `step` calls the stepper overhead row crosses the horizon in
/// (the serving daemon's advance cadence, exaggerated for measurement).
const STEP_CHUNKS: u64 = 100;

/// Measures the resumable stepper against the batch engine on the
/// lattice-bench workload (`fpt:k=8`, seed 5, horizon 2000): the same
/// schedule built via [`SimSession::step`] in [`STEP_CHUNKS`] increments,
/// timed against one `simulate` call. The pair of `serve/step_overhead`
/// rows pins the abstraction cost `fairsched serve` pays for driving the
/// event loop incrementally — both rows replay identical events, so any
/// gap is pure stepper overhead.
fn run_serve_overhead(samples: usize) -> Vec<CaseResult> {
    let horizon: u64 = 2_000;
    let trace = bench_workload(8, 5);
    let batch = measure(
        "serve/step_overhead/batch/k=8",
        &trace,
        8,
        horizon,
        samples,
        RefScheduler::new,
        |s: &RefScheduler| Some(s.lattice().stats().into()),
    );

    // The stepper's advance marks: an even u128 grid over the horizon
    // (widened like timeline_sample_times), ending exactly at it.
    let marks: Vec<u64> = (1..=STEP_CHUNKS)
        .map(|i| ((horizon as u128 * i as u128) / STEP_CHUNKS as u128) as u64)
        .collect();
    let run = || -> SimResult {
        // lint:allow(panic-free) registry scheduler on a registry workload; same contract as measure()
        let mut session = SimSession::new(trace.clone(), "ref", 5).expect("session");
        for mark in &marks {
            // lint:allow(panic-free) same engine contract as the batch row
            session.step(*mark).expect("engine contract");
        }
        // lint:allow(panic-free) same engine contract as the batch row
        session.finish(horizon, true).expect("engine contract")
    };
    let warm: SimResult = run();
    let engine_events = (trace.n_jobs() + warm.started_jobs + warm.completed_jobs) as u64;
    let timed = samples.max(1);
    let mut min = u128::MAX;
    let mut total = 0u128;
    for _ in 0..timed {
        let started = Instant::now();
        std::hint::black_box(run());
        let ns = started.elapsed().as_nanos();
        min = min.min(ns);
        total += ns;
    }
    let stepper = CaseResult {
        name: "serve/step_overhead/stepper/k=8".to_string(),
        scheduler: warm.scheduler,
        k: 8,
        n_jobs: trace.n_jobs(),
        horizon,
        samples: timed,
        wall_ns_min: min as u64,
        wall_ns_mean: (total / timed as u128) as u64,
        engine_events,
        events_per_sec: engine_events as f64 / (min as f64 / 1e9),
        lattice: None,
    };
    vec![batch, stepper]
}

/// Times `build() → simulate(horizon)` over `samples` runs (plus one
/// untimed warmup) and gathers the counters from a final untimed run.
fn measure<S: Scheduler, B: Fn(&Trace) -> S, L: Fn(&S) -> Option<LatticeCounters>>(
    name: &str,
    trace: &Trace,
    k: usize,
    horizon: u64,
    samples: usize,
    build: B,
    lattice_of: L,
) -> CaseResult {
    // Built-in schedulers on registry workloads cannot violate the engine
    // contract; a panic here means a bug worth stopping the bench for
    // (allowlisted for the panic-free-library rule).
    let run = |s: &mut S| simulate(trace, s, horizon).expect("engine contract");
    // Warmup — runs are deterministic, so this run also yields the
    // display name, the event counts, and the lattice counters.
    let mut warm = build(trace);
    let result: SimResult = run(&mut warm);
    let engine_events =
        (trace.n_jobs() + result.started_jobs + result.completed_jobs) as u64;

    let mut min = u128::MAX;
    let mut total = 0u128;
    for _ in 0..samples {
        let started = Instant::now();
        let mut s = build(trace);
        std::hint::black_box(run(&mut s));
        let ns = started.elapsed().as_nanos();
        min = min.min(ns);
        total += ns;
    }
    CaseResult {
        name: name.to_string(),
        scheduler: result.scheduler,
        k,
        n_jobs: trace.n_jobs(),
        horizon,
        samples,
        wall_ns_min: min as u64,
        wall_ns_mean: (total / samples.max(1) as u128) as u64,
        engine_events,
        events_per_sec: engine_events as f64 / (min as f64 / 1e9),
        lattice: lattice_of(&warm),
    }
}

/// Runs the baseline matrix and assembles the report. `paper_scale`
/// appends the paper-size LPC smoke matrix; `scale` appends the
/// million-job tier ([`run_scale`]).
pub fn run_baseline(paper_scale: bool, scale: bool, samples: usize) -> BaselineReport {
    let mut cases = Vec::new();

    // The FPT growth matrix (same family as benches/lattice.rs).
    for k in [2usize, 4, 6, 8] {
        let trace = bench_workload(k, 5);
        cases.push(measure(
            &format!("ref/k={k}"),
            &trace,
            k,
            2_000,
            samples,
            RefScheduler::new,
            |s: &RefScheduler| Some(s.lattice().stats().into()),
        ));
    }
    let trace8 = bench_workload(8, 5);
    cases.push(measure(
        "rand15/k=8",
        &trace8,
        8,
        2_000,
        samples,
        |t| RandScheduler::new(t, 15, 9),
        |s: &RandScheduler| Some(s.lattice().stats().into()),
    ));
    cases.push(measure(
        "rand75/k=8",
        &trace8,
        8,
        2_000,
        samples,
        |t| RandScheduler::new(t, 75, 9),
        |s: &RandScheduler| Some(s.lattice().stats().into()),
    ));

    cases.extend(run_serve_overhead(samples));

    if paper_scale {
        // Smoke matrix at the paper's experiment size: LPC-EGEE, scale
        // 1.0, horizon 5·10⁴, 5 organizations (the Table 1 cell REF
        // actually pays for) — the registry spec for the same trace the
        // hand-built construction used to produce.
        let spec =
            synth_spec(PresetName::LpcEgee, 1.0, 5, MachineSplit::Zipf(1.0), 50_000);
        let trace = WorkloadRegistry::shared()
            .build(&spec, &WorkloadContext { seed: 42 })
            .expect("paper-scale LPC preset builds");
        cases.push(measure(
            "paper/lpc/ref",
            &trace,
            5,
            50_000,
            samples.min(3),
            RefScheduler::new,
            |s: &RefScheduler| Some(s.lattice().stats().into()),
        ));
        cases.push(measure(
            "paper/lpc/rand15",
            &trace,
            5,
            50_000,
            samples.min(3),
            |t| RandScheduler::new(t, 15, 9),
            |s: &RandScheduler| Some(s.lattice().stats().into()),
        ));
    }

    if scale {
        cases.extend(run_scale(samples));
    }

    let timeline = measure_timeline(&trace8, samples);

    let ref_k8 = cases
        .iter()
        .find(|c| c.name == "ref/k=8")
        .expect("ref/k=8 is always measured")
        .wall_ns_min;
    let mode = match (paper_scale, scale) {
        (false, false) => "quick",
        (true, false) => "paper-scale",
        (false, true) => "scale",
        (true, true) => "paper-scale+scale",
    };
    BaselineReport {
        schema: SCHEMA.to_string(),
        mode: mode.to_string(),
        reference: ReferencePoint {
            label: "pre-fastpath @ ecd7721 (HashMap index, from-scratch Shapley), \
                    min of 5, same harness/workload"
                .to_string(),
            ref_k8_wall_ns_min: PRE_FASTPATH_REF_K8_WALL_NS,
        },
        cases,
        timeline,
        summary: Summary {
            ref_k8_wall_ns_min: ref_k8,
            speedup_vs_reference: PRE_FASTPATH_REF_K8_WALL_NS as f64 / ref_k8 as f64,
        },
    }
}

/// Default regression-gate tolerance, percent: a fresh case slower than
/// the committed baseline by more than this fails [`compare_reports`].
pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

/// Committed cases faster than this are exempt from the gate —
/// millisecond-scale cells flap by tens of percent run to run on a shared
/// machine, so gating them would be pure noise. The rows the gate exists
/// for (`ref/k=8`, the `scale/` tier) sit well above this.
pub const COMPARE_FLOOR_NS: u64 = 10_000_000;

/// One case compared against the committed baseline.
#[derive(Clone, Debug, Serialize)]
pub struct Comparison {
    /// Case id (present in both reports).
    pub name: String,
    /// Committed `wall_ns_min`.
    pub committed_wall_ns_min: u64,
    /// Fresh `wall_ns_min`.
    pub fresh_wall_ns_min: u64,
    /// `fresh / committed` (> 1 means slower).
    pub ratio: f64,
    /// Whether this case breaches the tolerance.
    pub regressed: bool,
}

/// Compares a fresh report against the committed `BENCH_lattice.json`
/// (parsed as a JSON tree so older files with fewer fields still compare):
/// every case name present in both reports is matched on `wall_ns_min`,
/// and a case is flagged as regressed when the fresh time exceeds the
/// committed one by more than `tolerance_pct` percent — unless the
/// committed time is under [`COMPARE_FLOOR_NS`]. Cases only in one report
/// (new rows, retired rows) are skipped: the gate rachets what both know.
///
/// # Errors
/// Returns a message if the committed tree lacks a well-formed `cases`
/// array.
pub fn compare_reports(
    committed: &serde::Value,
    fresh: &BaselineReport,
    tolerance_pct: f64,
) -> Result<Vec<Comparison>, String> {
    let cases = committed
        .get("cases")
        .and_then(|c| match c {
            serde::Value::Array(items) => Some(items),
            _ => None,
        })
        .ok_or("committed baseline has no `cases` array")?;
    let mut out = Vec::new();
    for case in cases {
        let name = match case.get("name") {
            Some(serde::Value::String(s)) => s.clone(),
            _ => return Err("committed case lacks a string `name`".to_string()),
        };
        let committed_ns = match case.get("wall_ns_min") {
            Some(serde::Value::Number(n)) => n
                .parse::<u64>()
                .map_err(|_| format!("case {name}: bad wall_ns_min {n:?}"))?,
            _ => return Err(format!("committed case {name} lacks wall_ns_min")),
        };
        let Some(fresh_case) = fresh.cases.iter().find(|c| c.name == name) else {
            continue;
        };
        let ratio = fresh_case.wall_ns_min as f64 / committed_ns.max(1) as f64;
        let regressed =
            committed_ns >= COMPARE_FLOOR_NS && ratio > 1.0 + tolerance_pct / 100.0;
        out.push(Comparison {
            name,
            committed_wall_ns_min: committed_ns,
            fresh_wall_ns_min: fresh_case.wall_ns_min,
            ratio,
            regressed,
        });
    }
    Ok(out)
}

/// Times the streaming timeline sweep against the naive per-sample oracle
/// on the `fpt:k=8` baseline workload (FairShare vs the exact REF
/// reference, the same schedules for both evaluators), at growing sample
/// counts. The streaming rows should stay nearly flat while the oracle's
/// wall time grows with `samples` — the sub-quadratic scaling evidence.
fn measure_timeline(trace: &Trace, runs: usize) -> Vec<TimelineCase> {
    use fairsched_core::fairness::{fairness_timeline, fairness_timeline_oracle};
    use fairsched_core::scheduler::FairShareScheduler;

    let horizon = 2_000;
    let eval = simulate(trace, &mut FairShareScheduler::new(), horizon)
        .expect("engine contract");
    let reference =
        simulate(trace, &mut RefScheduler::new(trace), horizon).expect("engine contract");

    let time_min = |f: &dyn Fn() -> usize| -> (u64, usize) {
        let mut min = u128::MAX;
        let mut points = 0;
        for _ in 0..runs.max(1) {
            let started = Instant::now();
            points = std::hint::black_box(f());
            min = min.min(started.elapsed().as_nanos());
        }
        (min as u64, points)
    };

    [64usize, 256, 1024]
        .into_iter()
        .map(|samples| {
            let series = fairness_timeline(
                trace,
                &eval.schedule,
                &reference.schedule,
                horizon,
                samples,
            );
            let final_unfairness =
                series.last().map(|p| p.unfairness()).unwrap_or_default();
            let (streaming_ns, points) = time_min(&|| {
                fairness_timeline(
                    trace,
                    &eval.schedule,
                    &reference.schedule,
                    horizon,
                    samples,
                )
                .len()
            });
            let (oracle_ns, _) = time_min(&|| {
                fairness_timeline_oracle(
                    trace,
                    &eval.schedule,
                    &reference.schedule,
                    horizon,
                    samples,
                )
                .len()
            });
            TimelineCase {
                name: format!("timeline/k=8/s={samples}"),
                samples,
                points,
                streaming_wall_ns_min: streaming_ns,
                oracle_wall_ns_min: oracle_ns,
                speedup_vs_oracle: oracle_ns as f64 / streaming_ns as f64,
                final_unfairness,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_baseline_smoke_produces_counters_and_summary() {
        // One sample on the small ks only would need a custom matrix; the
        // full quick matrix with 1 sample stays test-sized.
        let report = run_baseline(false, false, 1);
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.mode, "quick");
        assert!(report.cases.iter().any(|c| c.name == "ref/k=8"));
        for c in &report.cases {
            assert!(c.wall_ns_min > 0);
            assert!(c.engine_events > 0);
            assert!(c.events_per_sec > 0.0);
            let Some(lattice) = c.lattice.as_ref() else {
                // The stepper row drives a boxed registry scheduler, so
                // its lattice counters are unreachable through the trait
                // object; every other row must expose them.
                assert!(c.name.starts_with("serve/step_overhead/stepper"), "{}", c.name);
                continue;
            };
            assert!(lattice.settles > 0);
            assert!(lattice.sim_starts > 0);
        }
        assert!(report.summary.speedup_vs_reference > 0.0);
        // The trajectory rows: one per sample count, each with both
        // evaluators measured and the dedup'd point count.
        assert_eq!(report.timeline.len(), 3);
        for t in &report.timeline {
            assert!(t.streaming_wall_ns_min > 0);
            assert!(t.oracle_wall_ns_min > 0);
            assert!(t.points > 0 && t.points <= t.samples);
            assert!(t.final_unfairness >= 0.0);
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("fairsched-bench-lattice/v1"));
        assert!(json.contains("events_per_sec"));
        assert!(json.contains("timeline/k=8/s=1024"));
        assert!(json.contains("speedup_vs_oracle"));
    }

    /// A fresh report against a synthetic committed tree: shared cases are
    /// matched by name, the tolerance decides `regressed`, sub-floor cells
    /// are exempt, and names only one side knows are skipped.
    #[test]
    fn compare_gate_flags_only_real_regressions() {
        let fresh_case = |name: &str, ns: u64| CaseResult {
            name: name.to_string(),
            scheduler: "x".to_string(),
            k: 8,
            n_jobs: 1,
            horizon: 1,
            samples: 1,
            wall_ns_min: ns,
            wall_ns_mean: ns,
            engine_events: 1,
            events_per_sec: 1.0,
            lattice: None,
        };
        let fresh = BaselineReport {
            schema: SCHEMA.to_string(),
            mode: "quick".to_string(),
            reference: ReferencePoint { label: "t".to_string(), ref_k8_wall_ns_min: 1 },
            cases: vec![
                fresh_case("slow", 2_000_000_000), // 2x committed: regressed
                fresh_case("ok", 1_050_000_000),   // +5%: inside tolerance
                fresh_case("tiny", 9_000_000),     // committed below floor
                fresh_case("fresh-only", 1_000_000_000), // no committed row
            ],
            timeline: Vec::new(),
            summary: Summary { ref_k8_wall_ns_min: 1, speedup_vs_reference: 1.0 },
        };
        let committed_json = r#"{
            "schema": "fairsched-bench-lattice/v1",
            "cases": [
                {"name": "slow", "wall_ns_min": 1000000000},
                {"name": "ok", "wall_ns_min": 1000000000},
                {"name": "tiny", "wall_ns_min": 500000},
                {"name": "committed-only", "wall_ns_min": 1000000000}
            ]
        }"#;
        let committed = serde_json::parse_value(committed_json).unwrap();
        let cmp = compare_reports(&committed, &fresh, 15.0).unwrap();
        let by_name = |n: &str| cmp.iter().find(|c| c.name == n);
        assert_eq!(cmp.len(), 3, "one-sided names are skipped: {cmp:?}");
        assert!(by_name("slow").unwrap().regressed);
        assert!(!by_name("ok").unwrap().regressed);
        assert!(!by_name("tiny").unwrap().regressed, "sub-floor cell exempt");
        assert!(by_name("fresh-only").is_none());
        assert!(by_name("committed-only").is_none());
        // A looser tolerance (the BENCH_TOLERANCE escape hatch) clears it.
        let loose = compare_reports(&committed, &fresh, 150.0).unwrap();
        assert!(loose.iter().all(|c| !c.regressed));
        // Malformed committed trees are typed errors, not panics.
        let bad = serde_json::parse_value(r#"{"schema": "x"}"#).unwrap();
        assert!(compare_reports(&bad, &fresh, 15.0).is_err());
    }

    /// The scale-tier workload is deterministic and actually million-job
    /// sized. (Scheduling it is the `million_jobs_smoke` integration
    /// test's job — ignored by default, run in CI's bench-smoke.)
    #[test]
    #[ignore = "builds a 10^6-job trace (~seconds); covered by CI bench-smoke"]
    fn scale_workload_is_million_job_sized() {
        let t = scale_workload(SCALE_SEED);
        assert!(t.n_jobs() >= SCALE_MIN_JOBS, "{} jobs", t.n_jobs());
        assert_eq!(t.n_orgs(), SCALE_K);
        assert_eq!(t, scale_workload(SCALE_SEED), "must be deterministic");
        t.validate().unwrap();
    }
}
