//! Regenerates **Figure 2**: the worked `ψ_sp` example — 9 jobs of O(1)
//! and one job of O(2) on 3 machines — reproducing every number quoted in
//! the paper's caption (utilities 262 and 297, flow time 70, and the three
//! marginal what-ifs).
//!
//! `cargo run -p fairsched-bench --release --bin fig2`

use fairsched_core::model::Time;
use fairsched_core::utility::sp_value_of_parts;

fn main() {
    // O(1)'s jobs as (start, processing time), reconstructed from Figure 2;
    // J9 starts at 10 because O(2)'s job occupies a machine at 9.
    let o1: Vec<(Time, Time)> = vec![
        (0, 3),  // J1
        (0, 4),  // J2
        (0, 3),  // J3
        (3, 6),  // J4
        (3, 3),  // J5
        (4, 6),  // J6
        (6, 3),  // J7
        (9, 3),  // J8
        (10, 4), // J9
    ];
    let flow_time: Time = o1.iter().map(|&(s, p)| s + p).sum(); // releases all 0

    println!("Figure 2 — the strategy-proof utility ψ_sp vs flow time");
    println!("O(1): 9 jobs on 3 machines (one machine also runs O(2)'s 5-unit job)\n");
    println!("{:<44}{:>8}{:>8}", "quantity", "paper", "ours");
    let rows: Vec<(&str, i128, i128)> = vec![
        (
            "ψ_sp(O1) at t=13 (J9's last unit not counted)",
            262,
            sp_value_of_parts(&o1, 13),
        ),
        ("ψ_sp(O1) at t=14 (all parts counted)", 297, sp_value_of_parts(&o1, 14)),
        ("flow time at t=14", 70, flow_time as i128),
    ];
    let mut all_match = true;
    for (label, paper, ours) in &rows {
        println!("{label:<44}{paper:>8}{ours:>8}");
        all_match &= paper == ours;
    }

    // Marginal what-ifs from the caption.
    let mut early9 = o1.clone();
    *early9.last_mut().unwrap() = (9, 4);
    let gain9 = sp_value_of_parts(&early9, 14) - sp_value_of_parts(&o1, 14);
    println!("{:<44}{:>8}{:>8}", "Δψ if J9 started at 9 instead of 10", 4, gain9);
    all_match &= gain9 == 4;

    let mut late6 = o1.clone();
    late6[5] = (5, 6);
    let loss6 = sp_value_of_parts(&o1, 14) - sp_value_of_parts(&late6, 14);
    println!("{:<44}{:>8}{:>8}", "Δψ if J6 started one unit later", 6, loss6);
    all_match &= loss6 == 6;

    let drop9 = sp_value_of_parts(&o1, 14) - sp_value_of_parts(&o1[..8], 14);
    println!("{:<44}{:>8}{:>8}", "Δψ if J9 not scheduled at all", 10, drop9);
    all_match &= drop9 == 10;

    println!(
        "\n{}",
        if all_match {
            "all six quantities match the paper exactly ✓"
        } else {
            "MISMATCH against the paper ✗"
        }
    );
    std::process::exit(if all_match { 0 } else { 1 });
}
