//! Ablation of the **within-time-step utility bump** — the one documented
//! deviation our implementation makes from the published pseudo-code
//! (DESIGN.md §2): when several machines free in the same discrete time
//! moment, `ψ_sp` cannot see jobs started *in* that moment, so without a
//! one-unit bump the top-surplus organization monopolizes the whole batch
//! of machines.
//!
//! This binary measures Δψ/p_tot with bumps on and off, for REF-as-policy
//! and DIRECTCONTR, against the (bumped) REF reference. The expected shape:
//! disabling bumps hurts fairness, most visibly on bursty workloads where
//! many machines free simultaneously.
//!
//! `cargo run -p fairsched-bench --release --bin ablation`
//! Flags: --instances N --orgs K --scale F --horizon T --seed S

use fairsched_bench::cli::Cli;
use fairsched_bench::parallel::parallel_map;
use fairsched_core::fairness::FairnessReport;
use fairsched_core::scheduler::{DirectContrScheduler, RefScheduler, Scheduler};
use fairsched_core::Trace;
use fairsched_sim::Simulation;
use fairsched_workloads::{
    generate, preset, to_trace, MachineSplit, PresetName, SynthConfig,
};

type Variant = (&'static str, fn(&Trace, u64) -> Box<dyn Scheduler>);

fn variants() -> Vec<Variant> {
    vec![
        ("Ref (bumps on, self)", |t, _| Box::new(RefScheduler::new(t))),
        ("Ref (bumps off)", |t, _| Box::new(RefScheduler::new(t).without_step_bumps())),
        ("DirectContr (bumps on)", |_, s| Box::new(DirectContrScheduler::new(s))),
        ("DirectContr (bumps off)", |_, s| {
            Box::new(DirectContrScheduler::new(s).without_step_bumps())
        }),
    ]
}

fn run_block(
    label: &str,
    instances: usize,
    base_seed: u64,
    horizon: u64,
    make_trace: impl Fn(u64) -> Trace + Sync,
) {
    println!("\n{label}");
    println!("{:<26}{:>14}{:>14}", "variant", "mean Δψ/p_tot", "max Δψ/p_tot");
    for (name, build) in &variants() {
        let values: Vec<f64> = parallel_map((0..instances as u64).collect(), |i| {
            let seed = base_seed + i;
            let trace = make_trace(seed);
            let session = Simulation::new(&trace).horizon(horizon);
            let fair = session
                .run_matrix(&["ref".parse().expect("spec")])
                .expect("REF reference")
                .remove(0);
            // The bump-off variants are deliberately not registry specs —
            // they exist only for this ablation — so they go through the
            // session's instance escape hatch.
            let r = Simulation::new(&trace)
                .scheduler_instance(build(&trace, seed))
                .horizon(horizon)
                .run()
                .expect("variant run");
            FairnessReport::from_schedules(&trace, &r.schedule, &fair.schedule, horizon)
                .unfairness()
        });
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let max = values.iter().cloned().fold(0.0, f64::max);
        println!("{name:<26}{mean:>14.4}{max:>14.4}");
    }
}

fn main() {
    let cli = Cli::parse();
    let instances = cli.get_or("instances", 20usize);
    let orgs = cli.get_or("orgs", 5usize);
    let scale = cli.get_or("scale", 1.0f64);
    let horizon = cli.get_or("horizon", 50_000u64);
    let base_seed = cli.get_or("seed", 77u64);

    println!(
        "within-time-step bump ablation ({orgs} orgs, {instances} instances; reference = bumped REF)"
    );

    // Regime 1: heavy-tailed durations — machines almost never free
    // simultaneously, so the bump should be nearly irrelevant.
    run_block(
        &format!("heavy-tailed (LPC-EGEE scale {scale}, horizon {horizon}):"),
        instances,
        base_seed,
        horizon,
        |seed| {
            let p = preset(PresetName::LpcEgee, scale, horizon);
            let jobs = generate(&p.synth, seed);
            to_trace(&jobs, orgs, p.synth.n_machines, MachineSplit::Zipf(1.0), seed)
                .unwrap()
        },
    );

    // Regime 2: unit jobs at high load — every machine frees at every time
    // step, so without the bump one organization monopolizes each step's
    // whole batch of machines and fairness degrades.
    let unit_horizon = 2_000u64;
    let machines = 2 * orgs;
    run_block(
        &format!("unit jobs ({machines} machines, horizon {unit_horizon}, load 1.0):"),
        instances,
        base_seed ^ 0x1111,
        unit_horizon,
        |seed| {
            let config = SynthConfig {
                n_users: orgs * 4,
                horizon: unit_horizon,
                n_machines: machines,
                load: 1.0,
                ..SynthConfig::default()
            }
            .unit_jobs();
            let jobs = generate(&config, seed);
            to_trace(&jobs, orgs, machines, MachineSplit::Equal, seed).unwrap()
        },
    );

    println!(
        "\n(measured conclusion, recorded in EXPERIMENTS.md: the bump is essentially"
    );
    println!(" inert. Under heavy-tailed durations simultaneous machine frees are rare;");
    println!(" on unit-job workloads, where every step frees all machines, the recency");
    println!(" tie-break already rotates organizations whenever surpluses tie, leaving");
    println!(" only sub-1e-3 differences. The bump is kept because Figures 6 and 9");
    println!(" specify the +1-on-start updates, but it is not load-bearing.)");
}
