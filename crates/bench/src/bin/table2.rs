//! Regenerates **Table 2**: the Table 1 experiment at horizon 5·10⁵ —
//! showing that unfairness grows with trace length, so the gap between
//! Shapley-based schedulers and fair share widens on long-running systems.
//!
//! `cargo run -p fairsched-bench --release --bin table2`
//! Flags: as table1 (default instances 10; use --instances to override).

use fairsched_bench::cli::Cli;
use fairsched_bench::experiments::run_delay_table;

fn main() {
    let cli = Cli::parse();
    let horizon = cli.get_or("horizon", 500_000u64);
    run_delay_table(&cli, "Table 2", horizon, 10);
}
