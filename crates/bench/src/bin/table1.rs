//! Regenerates **Table 1**: average Δψ/p_tot (± sd) for six scheduling
//! algorithms over the four workloads, horizon 5·10⁴, 5 organizations,
//! REF as the fairness reference.
//!
//! `cargo run -p fairsched-bench --release --bin table1`
//! Flags: --instances N --orgs K --scale F --paper-scale --extended
//!        --uniform-split --workload NAME --seed S --json

use fairsched_bench::cli::Cli;
use fairsched_bench::experiments::run_delay_table;

fn main() {
    let cli = Cli::parse();
    let horizon = cli.get_or("horizon", 50_000u64);
    run_delay_table(&cli, "Table 1", horizon, 20);
}
