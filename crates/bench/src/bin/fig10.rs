//! Regenerates **Figure 10**: the effect of the number of organizations on
//! Δψ/p_tot (LPC-EGEE workload). As organizations are added, unfairness
//! grows for every polynomial algorithm and the gap between the
//! Shapley-based heuristics and the fair-share family widens.
//!
//! `cargo run -p fairsched-bench --release --bin fig10`
//! Flags: --min-orgs K --max-orgs K --instances N --scale F --horizon T
//!        --seed S --json

use fairsched_bench::cli::Cli;
use fairsched_bench::format_sig;
use fairsched_bench::runner::{run_delay_experiment, Algo, DelayExperiment};
use fairsched_workloads::{synth_spec, MachineSplit, PresetName};
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Point {
    n_orgs: usize,
    series: Vec<(String, f64)>,
}

fn main() {
    let cli = Cli::parse();
    let min_orgs = cli.get_or("min-orgs", 2usize);
    let max_orgs = cli.get_or("max-orgs", 10usize);
    assert!(min_orgs >= 1 && max_orgs >= min_orgs && max_orgs <= 14);
    let instances = cli.get_or("instances", 5usize);
    let scale = cli.get_or("scale", 1.0f64);
    let horizon = cli.get_or("horizon", 50_000u64);
    let seed = cli.get_or("seed", 42u64);

    // The figure's five series.
    let algos = vec![
        Algo::RoundRobin,
        Algo::CurrFairShare,
        Algo::FairShare,
        Algo::DirectContr,
        Algo::Rand(15),
    ];

    let mut points = Vec::new();
    for n_orgs in min_orgs..=max_orgs {
        eprintln!("orgs = {n_orgs} ({instances} instances)...");
        // The x-axis sweep is pure data: one workload spec per point.
        let exp = DelayExperiment {
            workload: synth_spec(
                PresetName::LpcEgee,
                scale,
                n_orgs,
                MachineSplit::Zipf(1.0),
                horizon,
            ),
            horizon,
            n_instances: instances,
            base_seed: seed,
            algos: algos.clone(),
            metric: DelayExperiment::delay_metric(),
        };
        let stats = run_delay_experiment(&exp);
        points.push(Fig10Point {
            n_orgs,
            series: stats.into_iter().map(|s| (s.label, s.mean)).collect(),
        });
    }

    if cli.has("json") {
        println!("{}", serde_json::to_string_pretty(&points).unwrap());
        return;
    }
    println!(
        "Figure 10 — Δψ/p_tot vs number of organizations (LPC-EGEE, horizon {horizon}, {instances} instances)"
    );
    print!("{:<16}", "algorithm");
    for p in &points {
        print!("{:>10}", format!("k={}", p.n_orgs));
    }
    println!();
    for (ai, (label, _)) in points[0].series.iter().enumerate() {
        print!("{label:<16}");
        for p in &points {
            print!("{:>10}", format_sig(p.series[ai].1));
        }
        println!();
    }
    println!("\n(expected shape: every series grows with k; RoundRobin on top,");
    println!(" CurrFairShare > FairShare > DirectContr ≳ Rand at every k)");
}
