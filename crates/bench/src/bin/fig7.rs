//! Regenerates **Figure 7 / Theorem 6.2**: resource utilization of greedy
//! algorithms.
//!
//! Three parts:
//! 1. the Figure 7 adversarial family, where the best greedy schedule
//!    achieves 100% utilization and the worst exactly 75% — the theorem's
//!    bound is tight;
//! 2. random small instances, exhaustively enumerating every greedy
//!    schedule: the worst/best ratio never drops below 3/4;
//! 3. the actual schedulers (REF, fair-share family, round robin) on the
//!    adversarial family — all greedy, hence all within the bound.
//!
//! `cargo run -p fairsched-bench --release --bin fig7`
//! Flags: --random N (random instances, default 50) --seed S

use fairsched_bench::cli::Cli;
use fairsched_core::scheduler::SchedulerSpec;
use fairsched_sim::exhaustive::{figure7_family, greedy_envelope};
use fairsched_sim::Simulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cli = Cli::parse();
    let n_random = cli.get_or("random", 50usize);
    let seed = cli.get_or("seed", 7u64);

    println!("Part 1 — the Figure 7 family (2m machines, 2m jobs of size p, m jobs of 2p, T = 2p)");
    println!(
        "{:>4}{:>6}{:>10}{:>12}{:>12}{:>10}",
        "m", "p", "capacity", "best", "worst", "ratio"
    );
    for (m_half, p) in [(1u64, 2u64), (2, 3), (2, 10), (3, 4)] {
        let (trace, t) = figure7_family(m_half as usize, p);
        let env = greedy_envelope(&trace, t);
        let capacity = 2 * m_half * t;
        println!(
            "{:>4}{:>6}{:>10}{:>12}{:>12}{:>10.4}",
            m_half,
            p,
            capacity,
            env.max_units,
            env.min_units,
            env.min_units as f64 / env.max_units as f64
        );
        assert_eq!(env.max_units, capacity);
        assert_eq!(env.min_units * 4, capacity * 3, "the 3/4 bound is tight");
    }

    println!("\nPart 2 — {n_random} random small instances, exhaustive greedy envelope");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst_ratio = 1.0f64;
    for _ in 0..n_random {
        let mut b = fairsched_core::Trace::builder();
        let o1 = b.org("a", rng.random_range(1..3));
        let o2 = b.org("b", rng.random_range(1..3));
        for _ in 0..rng.random_range(2..6) {
            b.job(o1, rng.random_range(0..5), rng.random_range(1..6));
        }
        for _ in 0..rng.random_range(1..5) {
            b.job(o2, rng.random_range(0..5), rng.random_range(1..8));
        }
        let trace = b.build().unwrap();
        let horizon = rng.random_range(5..16);
        let env = greedy_envelope(&trace, horizon);
        if env.max_units > 0 {
            let r = env.min_units as f64 / env.max_units as f64;
            worst_ratio = worst_ratio.min(r);
            assert!(
                env.min_units * 4 >= env.max_units * 3,
                "Theorem 6.2 violated: {env:?}"
            );
        }
    }
    println!("worst observed worst/best greedy ratio: {worst_ratio:.4} (bound: 0.7500)");

    println!("\nPart 3 — real schedulers on the family (m=2, p=10): utilization at T");
    let (trace, t) = figure7_family(2, 10);
    let specs: [SchedulerSpec; 3] = [
        SchedulerSpec::bare("ref"),
        SchedulerSpec::bare("fairshare"),
        SchedulerSpec::bare("roundrobin"),
    ];
    let runs =
        Simulation::new(&trace).horizon(t).run_matrix(&specs).expect("figure 7 runs");
    for r in runs {
        println!("{:<14}{:>8.4}", r.scheduler, r.utilization);
        assert!(
            r.utilization >= 0.75 - 1e-9,
            "{} fell below the greedy bound",
            r.scheduler
        );
    }
    println!("\nall greedy schedules stay within the 3/4-competitive bound ✓");
}
