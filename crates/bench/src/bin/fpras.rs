//! Validates **Theorem 5.6 (FPRAS)**: for unit-size jobs, RAND with
//! `N = ⌈k²/ε² ln(k/(1−λ))⌉` sampled permutations produces a schedule whose
//! utility vector is within `ε·‖ψ*‖` of the exact fair schedule's with
//! probability ≥ λ.
//!
//! The binary sweeps N (including the paper's heuristic settings 15 and
//! 75), measures the realized relative error `‖ψ−ψ*‖ / ‖ψ*‖` over many
//! seeded instances, and reports it against the ε guaranteed by the
//! Hoeffding bound at that N — the measured error should sit far below the
//! (loose) guarantee and shrink as N grows.
//!
//! `cargo run -p fairsched-bench --release --bin fpras`
//! Flags: --orgs K --instances N --machines M --horizon T --seed S

use fairsched_bench::cli::Cli;
use fairsched_bench::parallel::parallel_map;
use fairsched_core::scheduler::SchedulerSpec;
use fairsched_sim::Simulation;
use fairsched_workloads::{to_trace, MachineSplit, SynthConfig};

fn main() {
    let cli = Cli::parse();
    let k = cli.get_or("orgs", 5usize);
    let instances = cli.get_or("instances", 30usize);
    let machines = cli.get_or("machines", 10usize);
    let horizon = cli.get_or("horizon", 2_000u64);
    let seed = cli.get_or("seed", 17u64);
    let lambda = 0.9;

    let config = SynthConfig {
        n_users: k * 4,
        horizon,
        n_machines: machines,
        load: 0.9,
        ..SynthConfig::default()
    }
    .unit_jobs();

    println!(
        "FPRAS validation: unit jobs, k={k} orgs, {machines} machines, horizon {horizon}, {instances} instances"
    );
    println!(
        "{:>6}{:>16}{:>16}{:>18}",
        "N", "mean ‖ψ−ψ*‖/‖ψ*‖", "max ‖ψ−ψ*‖/‖ψ*‖", "Hoeffding ε (λ=0.9)"
    );

    let mut last_mean = f64::INFINITY;
    for n_perms in [1usize, 3, 15, 75, 300] {
        let errors: Vec<f64> = parallel_map((0..instances as u64).collect(), |i| {
            let inst_seed = seed + i;
            let jobs = fairsched_workloads::generate(&config, inst_seed);
            let trace =
                to_trace(&jobs, k, machines, MachineSplit::Equal, inst_seed).unwrap();
            let specs: [SchedulerSpec; 2] = [
                SchedulerSpec::bare("ref"),
                SchedulerSpec::bare("rand").with("perms", n_perms),
            ];
            let mut runs = Simulation::new(&trace)
                .horizon(horizon)
                .seed(inst_seed ^ 0xabcd)
                .run_matrix(&specs)
                .expect("FPRAS instance runs");
            let result = runs.remove(1);
            let ref_result = runs.remove(0);
            let norm: i128 = ref_result.psi.iter().map(|v| v.abs()).sum();
            if norm == 0 {
                return 0.0;
            }
            let delta: i128 =
                result.psi.iter().zip(&ref_result.psi).map(|(a, b)| (a - b).abs()).sum();
            delta as f64 / norm as f64
        });
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let max = errors.iter().cloned().fold(0.0, f64::max);
        let eps_bound = coopgame::sampling::hoeffding_epsilon(k, n_perms, lambda);
        println!("{n_perms:>6}{mean:>16.5}{max:>16.5}{eps_bound:>18.3}");
        assert!(
            max <= eps_bound + 1e-9,
            "measured error {max} exceeded the Hoeffding guarantee {eps_bound}"
        );
        // Errors should not grow as N does (monotone in expectation; allow
        // sampling noise with a generous factor).
        assert!(mean <= last_mean * 2.0 + 1e-6, "error grew with N");
        last_mean = mean.max(1e-9);
    }
    println!("\nmeasured errors sit below the Theorem 5.6 guarantee at every N ✓");
}
