//! Emits the tracked lattice perf baseline (`BENCH_lattice.json`).
//!
//! ```text
//! cargo run --release -p fairsched-bench --bin bench_baseline -- \
//!     [--paper-scale] [--scale] [--samples N] [--out PATH] \
//!     [--compare PATH] [--quiet]
//! ```
//!
//! See `fairsched_bench::baseline` for the report format. The summary
//! (REF `k=8` wall time and speedup against the committed pre-fast-path
//! reference) is printed to stderr; the JSON goes to `--out`
//! (default `BENCH_lattice.json`).
//!
//! `--scale` appends the million-job tier (`scale/` rows: 10⁶ jobs over
//! 100 organizations, non-lattice schedulers). `--compare PATH` turns the
//! run into a regression gate: every case name shared with the committed
//! report at `PATH` is compared on `wall_ns_min`, and the process exits
//! non-zero if any is slower by more than the tolerance (15% by default;
//! override with the `BENCH_TOLERANCE` environment variable, in percent —
//! the escape hatch for noisy runners).

use fairsched_bench::baseline::{compare_reports, run_baseline, DEFAULT_TOLERANCE_PCT};
use fairsched_bench::cli::Cli;

/// Prints an operator-facing error and exits with a distinct status so CI
/// can tell an environment failure (2) from a perf regression (1).
fn fail(msg: String) -> ! {
    eprintln!("bench_baseline: {msg}");
    std::process::exit(2);
}

fn main() {
    let cli = Cli::parse();
    let paper_scale = cli.has("paper-scale");
    let scale = cli.has("scale");
    let samples = cli.get_or("samples", 5usize).max(1);
    let out = cli.get_or("out", "BENCH_lattice.json".to_string());
    let compare = cli.get("compare");

    let report = run_baseline(paper_scale, scale, samples);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| fail(format!("report does not serialize: {e}")));
    fairsched_core::journal::atomic_write(
        std::path::Path::new(&out),
        &format!("{json}\n"),
    )
    .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));

    if !cli.has("quiet") {
        for c in &report.cases {
            eprintln!(
                "{:<22} min {:>10.3} ms  mean {:>10.3} ms  {:>12.0} events/s",
                c.name,
                c.wall_ns_min as f64 / 1e6,
                c.wall_ns_mean as f64 / 1e6,
                c.events_per_sec,
            );
        }
        eprintln!(
            "ref/k=8: {:.3} ms vs reference {:.3} ms -> {:.2}x ({} written)",
            report.summary.ref_k8_wall_ns_min as f64 / 1e6,
            report.reference.ref_k8_wall_ns_min as f64 / 1e6,
            report.summary.speedup_vs_reference,
            out,
        );
    }

    if let Some(committed_path) = compare {
        let tolerance = std::env::var("BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(DEFAULT_TOLERANCE_PCT);
        let text = std::fs::read_to_string(committed_path)
            .unwrap_or_else(|e| fail(format!("cannot read {committed_path}: {e}")));
        let committed = serde_json::parse_value(&text)
            .unwrap_or_else(|e| fail(format!("cannot parse {committed_path}: {e}")));
        let comparisons =
            compare_reports(&committed, &report, tolerance).unwrap_or_else(|e| {
                fail(format!("cannot compare against {committed_path}: {e}"))
            });
        let mut regressed = false;
        for c in &comparisons {
            eprintln!(
                "{:<22} committed {:>10.3} ms  fresh {:>10.3} ms  {:>6.2}x{}",
                c.name,
                c.committed_wall_ns_min as f64 / 1e6,
                c.fresh_wall_ns_min as f64 / 1e6,
                c.ratio,
                if c.regressed { "  REGRESSED" } else { "" },
            );
            regressed |= c.regressed;
        }
        if regressed {
            eprintln!(
                "bench regression gate: wall time regressed beyond {tolerance}% \
                 (set BENCH_TOLERANCE to loosen)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench regression gate: {} shared case(s) within {tolerance}%",
            comparisons.len()
        );
    }
}
