//! Emits the tracked lattice perf baseline (`BENCH_lattice.json`).
//!
//! ```text
//! cargo run --release -p fairsched-bench --bin bench_baseline -- \
//!     [--paper-scale] [--samples N] [--out PATH] [--quiet]
//! ```
//!
//! See `fairsched_bench::baseline` for the report format. The summary
//! (REF `k=8` wall time and speedup against the committed pre-fast-path
//! reference) is printed to stderr; the JSON goes to `--out`
//! (default `BENCH_lattice.json`).

use fairsched_bench::baseline::run_baseline;
use fairsched_bench::cli::Cli;

fn main() {
    let cli = Cli::parse();
    let paper_scale = cli.has("paper-scale");
    let samples = cli.get_or("samples", 5usize).max(1);
    let out = cli.get_or("out", "BENCH_lattice.json".to_string());

    let report = run_baseline(paper_scale, samples);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    if !cli.has("quiet") {
        for c in &report.cases {
            eprintln!(
                "{:<18} min {:>10.3} ms  mean {:>10.3} ms  {:>12.0} events/s",
                c.name,
                c.wall_ns_min as f64 / 1e6,
                c.wall_ns_mean as f64 / 1e6,
                c.events_per_sec,
            );
        }
        eprintln!(
            "ref/k=8: {:.3} ms vs reference {:.3} ms -> {:.2}x ({} written)",
            report.summary.ref_k8_wall_ns_min as f64 / 1e6,
            report.reference.ref_k8_wall_ns_min as f64 / 1e6,
            report.summary.speedup_vs_reference,
            out,
        );
    }
}
