//! Regenerates the **unfairness trajectory**: `Δψ(t)/p_tot(t)` per sample
//! time for each algorithm — Definition 3.1's "fair at every moment" view
//! that the endpoint tables (1–2) cannot show. The final row of every
//! column equals the algorithm's Table 1-style delay cell bit for bit.
//!
//! ```text
//! cargo run -p fairsched-bench --release --bin trajectory -- \
//!     [--workload SPEC] [--horizon T] [--samples N] [--seed S] \
//!     [--algos SPEC,SPEC,...] [--json|--csv]
//! ```
//!
//! Defaults: the `fpt:k=8` lattice-bench workload at horizon 2000, 32
//! samples, the paper's Table 1 algorithm set.

use fairsched_bench::cli::Cli;
use fairsched_bench::trajectory::{run_trajectory, TrajectoryExperiment};
use fairsched_bench::Algo;

fn main() {
    let cli = Cli::parse();
    let workload = cli.get_or("workload", "fpt:k=8".to_string());
    let horizon: u64 = cli.get_or("horizon", 2_000);
    let samples: usize = cli.get_or("samples", 32usize).max(1);
    let seed: u64 = cli.get_or("seed", 42);
    let algos: Vec<Algo> = match cli.get("algos") {
        None => Algo::TABLE_SET.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                Algo::parse(s.trim())
                    .unwrap_or_else(|e| panic!("--algos entry {s:?} is not a spec: {e}"))
            })
            .collect(),
    };

    let exp = TrajectoryExperiment {
        workload: workload.parse().unwrap_or_else(|e| {
            panic!("--workload {workload:?} is not a valid spec: {e}")
        }),
        horizon,
        seed,
        samples,
        algos,
    };
    eprintln!(
        "running trajectory ({}, horizon {horizon}, {samples} samples, seed {seed})...",
        exp.workload
    );
    let trajectory = run_trajectory(&exp).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1)
    });
    if cli.has("json") {
        println!("{}", trajectory.to_json());
    } else if cli.has("csv") {
        println!("{}", trajectory.to_csv());
    } else {
        println!("{}", trajectory.render());
    }
}
