//! The unfairness-trajectory experiment: `Δψ(t)/p_tot(t)` *per sample
//! time* for each algorithm on one workload — the time axis the paper's
//! Definition 3.1 demands ("fair at every time moment") that the endpoint
//! tables (1–2) cannot show.
//!
//! Each algorithm's trajectory is evaluated through the metric-registry
//! pipeline (`timeline:samples=N` over a [`Simulation`] session, the REF
//! reference run automatically), so the numbers are the same ones the CLI
//! and grid sweeps report; the final point of every trajectory equals the
//! algorithm's Table 1-style `delay` cell bit for bit.

use crate::runner::Algo;
use fairsched_core::model::Time;
use fairsched_sim::report::{csv_field, render_time_table, TimeSeriesColumn};
use fairsched_sim::{SimError, Simulation};
use fairsched_workloads::spec::WorkloadSpec;

/// Configuration of one trajectory experiment: one workload, one sample
/// grid, many algorithms.
#[derive(Clone, Debug)]
pub struct TrajectoryExperiment {
    /// The workload spec (built through the shared registry with `seed`).
    pub workload: WorkloadSpec,
    /// Evaluation horizon (also the final sample time).
    pub horizon: Time,
    /// Workload/scheduler seed.
    pub seed: u64,
    /// Requested sample count (the emitted grid dedups to at most this
    /// many strictly increasing times in `(0, horizon]`).
    pub samples: usize,
    /// Algorithms to trace.
    pub algos: Vec<Algo>,
}

/// One algorithm's measured trajectory.
#[derive(Clone, Debug)]
pub struct TrajectoryRow {
    /// The algorithm's display label.
    pub label: String,
    /// Its full time series (per-organization values included).
    pub series: TimeSeriesColumn,
}

/// The experiment outcome: a shared sample grid and one row per
/// algorithm.
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// The canonical `timeline` spec the rows were evaluated with.
    pub metric: String,
    /// The workload the trajectories ran on.
    pub workload: String,
    /// The shared sample times.
    pub times: Vec<Time>,
    /// One trajectory per algorithm, in request order.
    pub rows: Vec<TrajectoryRow>,
}

/// Runs the trajectory experiment through the session + metric-registry
/// pipeline.
pub fn run_trajectory(exp: &TrajectoryExperiment) -> Result<Trajectory, SimError> {
    let metric = format!("timeline:samples={}", exp.samples);
    let session = Simulation::session()
        .workload_spec(exp.workload.clone())
        .horizon(exp.horizon)
        .seed(exp.seed)
        .metrics(&[metric.as_str()])?;
    let specs: Vec<_> = exp.algos.iter().map(Algo::spec).collect();
    let reports = session.run_matrix_reports(&specs)?;
    let rows: Vec<TrajectoryRow> = exp
        .algos
        .iter()
        .zip(reports)
        .map(|(algo, report)| TrajectoryRow {
            label: algo.label(),
            series: report.series.first().cloned().expect("timeline evaluates a series"),
        })
        .collect();
    let times = rows.first().map(|r| r.series.times.clone()).unwrap_or_default();
    Ok(Trajectory { metric, workload: exp.workload.to_string(), times, rows })
}

impl Trajectory {
    /// A paper-figure-style aligned table: one row per sample time, one
    /// column per algorithm, the cluster aggregate `Δψ(t)/p_tot(t)` in
    /// each cell (3 significant digits; the machine sinks carry exact
    /// values).
    pub fn render(&self) -> String {
        let mut out = format!(
            "unfairness trajectory — {} on {} ({} points)\n",
            self.metric,
            self.workload,
            self.times.len()
        );
        let labels: Vec<&str> = self.rows.iter().map(|r| r.label.as_str()).collect();
        let columns: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.series.aggregate.iter().map(|v| v.render_sig()).collect::<Vec<_>>()
            })
            .collect();
        out.push_str(&render_time_table(&self.times, &labels, &columns));
        out
    }

    /// CSV: `t` plus one exact-valued aggregate column per algorithm.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t");
        for r in &self.rows {
            out.push(',');
            out.push_str(&csv_field(&r.label));
        }
        out.push('\n');
        for (i, t) in self.times.iter().enumerate() {
            out.push_str(&t.to_string());
            for r in &self.rows {
                out.push(',');
                out.push_str(&r.series.aggregate[i].render());
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON with exact round-trippable values:
    /// provenance (`metric`, `workload`), the shared `times`, and per
    /// algorithm the aggregate trajectory plus the final point.
    pub fn to_json(&self) -> String {
        use serde::Value;
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("label".to_string(), Value::String(r.label.clone())),
                    (
                        "aggregate".to_string(),
                        Value::Array(
                            r.series
                                .aggregate
                                .iter()
                                .map(serde::Serialize::to_value)
                                .collect(),
                        ),
                    ),
                    (
                        "final".to_string(),
                        r.series
                            .final_aggregate()
                            .as_ref()
                            .map(serde::Serialize::to_value)
                            .unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("metric".to_string(), Value::String(self.metric.clone())),
            ("workload".to_string(), Value::String(self.workload.clone())),
            (
                "times".to_string(),
                Value::Array(
                    self.times.iter().map(|t| Value::Number(t.to_string())).collect(),
                ),
            ),
            ("rows".to_string(), Value::Array(rows)),
        ])
        .to_json_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::DelayExperiment;
    use fairsched_sim::report::MetricValue;

    fn tiny() -> TrajectoryExperiment {
        TrajectoryExperiment {
            workload: "fpt:horizon=600,k=2".parse().unwrap(),
            horizon: 600,
            seed: 7,
            samples: 8,
            algos: vec![Algo::RoundRobin, Algo::FairShare],
        }
    }

    #[test]
    fn trajectory_runs_and_renders() {
        let t = run_trajectory(&tiny()).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(*t.times.last().unwrap(), 600);
        assert!(t.times.windows(2).all(|w| w[0] < w[1]));
        for r in &t.rows {
            assert_eq!(r.series.times, t.times);
            assert_eq!(r.series.aggregate.len(), t.times.len());
        }
        let table = t.render();
        assert!(table.contains("RoundRobin"));
        assert!(table.contains("FairShare"));
        let csv = t.to_csv();
        assert!(csv.starts_with("t,RoundRobin,FairShare"));
        assert_eq!(csv.lines().count(), 1 + t.times.len());
        let json = t.to_json();
        assert!(json.contains("timeline:samples=8"));
        assert!(json.contains("\"final\""));
    }

    /// The trajectory's final point is the Table 1-style delay cell.
    #[test]
    fn trajectory_endpoint_matches_delay_experiment() {
        let t = run_trajectory(&tiny()).unwrap();
        let exp = DelayExperiment {
            workload: "fpt:horizon=600,k=2".parse().unwrap(),
            horizon: 600,
            n_instances: 1,
            base_seed: 7,
            algos: vec![Algo::RoundRobin, Algo::FairShare],
            metric: DelayExperiment::delay_metric(),
        };
        let delays = crate::runner::run_instance(&exp, 7).unwrap();
        for (row, (label, delay)) in t.rows.iter().zip(&delays) {
            assert_eq!(&row.label, label);
            let final_point = row.series.final_aggregate().unwrap();
            match final_point {
                MetricValue::Float(v) => assert_eq!(
                    v.to_bits(),
                    delay.to_bits(),
                    "trajectory endpoint drifted for {label}"
                ),
                other => panic!("unfairness must be a float, got {other:?}"),
            }
        }
    }
}
