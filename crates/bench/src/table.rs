//! Table formatting for experiment output (plain text + JSON).

use crate::runner::AlgoStats;
use serde::Serialize;

/// A table-1-style grid: one row per algorithm, one (avg, sd) column pair
/// per workload.
#[derive(Clone, Debug, Serialize)]
pub struct DelayTable {
    /// Table title.
    pub title: String,
    /// Column (workload) labels.
    pub workloads: Vec<String>,
    /// `cells[w]` = per-algorithm stats for workload `w`.
    pub cells: Vec<Vec<AlgoStats>>,
}

impl DelayTable {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let algo_w = 16;
        let col_w = 11;
        // Header.
        out.push_str(&format!("{:<algo_w$}", ""));
        for w in &self.workloads {
            out.push_str(&format!("{:>width$}", w, width = 2 * col_w));
        }
        out.push('\n');
        out.push_str(&format!("{:<algo_w$}", "algorithm"));
        for _ in &self.workloads {
            out.push_str(&format!("{:>col_w$}{:>col_w$}", "Avg", "St.dev"));
        }
        out.push('\n');
        let n_algos = self.cells.first().map_or(0, |c| c.len());
        for a in 0..n_algos {
            out.push_str(&format!("{:<algo_w$}", self.cells[0][a].label));
            for w in 0..self.workloads.len() {
                let s = &self.cells[w][a];
                out.push_str(&format!(
                    "{:>col_w$}{:>col_w$}",
                    format_sig(s.mean),
                    format_sig(s.sd)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }
}

/// Formats with 3 significant-ish digits like the paper's tables (e.g.
/// `238`, `0.014`, `2839`).
pub fn format_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(label: &str, mean: f64) -> AlgoStats {
        AlgoStats { label: label.into(), mean, sd: mean / 2.0, values: vec![mean] }
    }

    #[test]
    fn renders_grid() {
        let t = DelayTable {
            title: "Table 1".into(),
            workloads: vec!["LPC-EGEE".into(), "RICC".into()],
            cells: vec![
                vec![stats("RoundRobin", 238.0), stats("FairShare", 16.0)],
                vec![stats("RoundRobin", 2839.0), stats("FairShare", 626.0)],
            ],
        };
        let r = t.render();
        assert!(r.contains("RoundRobin"));
        assert!(r.contains("LPC-EGEE"));
        assert!(r.contains("238"));
        assert!(r.contains("2839"));
        let json = t.to_json();
        assert!(json.contains("\"mean\""));
    }

    #[test]
    fn significant_formatting() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(0.0144), "0.014");
        assert_eq!(format_sig(6.04), "6.0");
        assert_eq!(format_sig(238.4), "238");
    }
}
