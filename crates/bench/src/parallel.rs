//! Instance-level parallelism on `std::thread::scope` scoped threads.
//!
//! Experiment instances (one seeded workload × all schedulers) are
//! embarrassingly parallel; a chunked scoped-thread map keeps the
//! dependency footprint minimal (DESIGN.md §6 explains why not rayon).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `available_parallelism` worker
/// threads, preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Work-stealing by index over a shared immutable Vec of inputs.
    let inputs: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item taken twice");
                let result = f(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    slots.into_iter().map(|m| m.into_inner().unwrap().expect("missing result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let out = parallel_map((0..50).collect(), |i: usize| table[i * 10]);
        assert_eq!(out[5], 50);
        assert_eq!(out[49], 490);
    }
}
