//! Instance-level parallelism — re-exported from `fairsched-sim`.
//!
//! The scoped-thread [`parallel_map`] moved into `fairsched_sim::parallel`
//! so the `Simulation` session API can fan `run_matrix` out over specs
//! without a dependency cycle; this module keeps the historical
//! `fairsched_bench::parallel::parallel_map` path working.

pub use fairsched_sim::parallel::parallel_map;
