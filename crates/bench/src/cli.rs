//! A minimal `--key value` / `--flag` argument parser for the experiment
//! binaries (kept dependency-free on purpose; see DESIGN.md §6).

use std::collections::{HashMap, HashSet};

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    values: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Cli {
    /// Parses `std::env::args()` (skipping the program name). A token
    /// `--key` followed by a non-`--` token is a key/value pair; a `--key`
    /// followed by another `--key` (or nothing) is a boolean flag.
    pub fn parse() -> Cli {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (for tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Cli {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut cli = Cli::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    cli.values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    cli.flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1; // ignore stray positionals
            }
        }
        cli
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains(flag)
    }

    /// A string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// A parsed value with a default.
    ///
    /// # Panics
    /// Panics with a clear message when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key) {
            None => default,
            Some(v) => {
                v.parse().unwrap_or_else(|_| panic!("--{key}: cannot parse {v:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let c = cli(&["--instances", "10", "--json", "--scale", "0.5"]);
        assert_eq!(c.get_or("instances", 0usize), 10);
        assert!((c.get_or("scale", 0.0f64) - 0.5).abs() < 1e-12);
        assert!(c.has("json"));
        assert!(!c.has("paper-scale"));
    }

    #[test]
    fn defaults_apply() {
        let c = cli(&[]);
        assert_eq!(c.get_or("instances", 7usize), 7);
        assert_eq!(c.get("missing"), None);
    }

    #[test]
    fn flag_before_pair() {
        let c = cli(&["--verbose", "--n", "3"]);
        assert!(c.has("verbose"));
        assert_eq!(c.get_or("n", 0u32), 3);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        let c = cli(&["--n", "abc"]);
        let _ = c.get_or("n", 0u32);
    }
}
