//! `fairsched-analyze`: the offline static-analysis lint suite for the
//! fairsched workspace.
//!
//! Run as `cargo run -p fairsched-analyze -- check`. The tool scans every
//! workspace `.rs` file plus the golden/bench JSON artifacts, entirely
//! offline, and enforces seven rule families (see [`rules`]):
//! panic-freedom in library code, `Time`-overflow widening, spec-literal
//! validity against the live registries, golden/bench hygiene, and —
//! built on the [workspace symbol graph](symbols) — replay determinism,
//! journaled-write durability, and schema-version registration.
//!
//! Three committed files govern the verdict:
//!
//! * `lint_allow.toml` — file-scoped suppressions, each with a mandatory
//!   one-line justification;
//! * `lint_ratchet.toml` — per-rule violation ceilings that may only
//!   decrease (`--update-ratchet` rewrites them to the current counts);
//! * `schema_registry.toml` — the on-disk format registry the
//!   `schema-version` rule enforces.
//!
//! Exit codes: `0` clean (stale ratchets and unused allowlist entries are
//! warnings), `1` lint failure (some rule exceeds its ratchet), `2`
//! configuration or I/O error.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod symbols;

use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::path::{Path, PathBuf};

use config::{Allowlist, Ratchet, SchemaRegistry};
use lexer::LexedFile;
use rules::{
    determinism, durability, hygiene, panic_free, schema_version, spec_literals,
    time_arith, ALL_RULES,
};
use symbols::SymbolGraph;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see [`rules::ALL_RULES`]).
    pub rule: String,
    /// Workspace-relative path (forward slashes), or `workspace` for
    /// findings not tied to a file.
    pub path: String,
    /// 1-based line; 0 when not line-addressable (JSON artifacts).
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

impl Finding {
    /// Constructs a finding.
    pub fn new(rule: &str, path: &str, line: u32, message: String) -> Self {
        Finding { rule: rule.to_string(), path: path.to_string(), line, message }
    }
}

/// One lexed workspace source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Raw text (orphan detection does substring search on it).
    pub text: String,
    /// The lexed token stream.
    pub lexed: LexedFile,
}

/// The crate source trees held to the library-code rules (`panic-free`,
/// `time-arith`). Tests, benches, the CLI facade, the compat stubs, and
/// this analyzer are exempt.
pub const LIBRARY_PREFIXES: [&str; 6] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/workloads/src/",
    "crates/bench/src/",
    "crates/experiment/src/",
    "crates/serve/src/",
];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "testdata", ".github"];

/// Whether a workspace-relative path is library code.
pub fn is_library(rel: &str) -> bool {
    LIBRARY_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Options for [`run_check`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Workspace root.
    pub root: PathBuf,
    /// Rewrite `lint_ratchet.toml` to the current counts.
    pub update_ratchet: bool,
}

/// The result of a full check.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Findings that survived the allowlist.
    pub findings: Vec<Finding>,
    /// Per-rule counts after allowlist suppression.
    pub totals: BTreeMap<String, u64>,
    /// Committed ratchet ceilings in effect.
    pub ratchet: BTreeMap<String, u64>,
    /// Non-fatal observations (stale ratchets, unused allowlist entries).
    pub warnings: Vec<String>,
    /// Ratchet violations (non-empty ⇒ exit 1).
    pub failures: Vec<String>,
    /// Findings suppressed by `lint_allow.toml`.
    pub suppressed: u64,
}

impl Outcome {
    /// Whether the workspace passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the machine-readable JSON report (uploaded as a CI
    /// artifact).
    pub fn report(&self) -> serde::Value {
        use serde::Value;
        let num = |n: u64| Value::Number(n.to_string());
        let strings =
            |v: &[String]| Value::Array(v.iter().cloned().map(Value::String).collect());
        let mut rules = Vec::new();
        for rule in ALL_RULES {
            let count = self.totals.get(rule).copied().unwrap_or(0);
            let limit = self.ratchet.get(rule).copied().unwrap_or(0);
            let status = if count > limit {
                "over"
            } else if count < limit {
                "stale"
            } else {
                "ok"
            };
            rules.push((
                rule.to_string(),
                Value::Object(vec![
                    ("count".into(), num(count)),
                    ("ratchet".into(), num(limit)),
                    ("status".into(), Value::String(status.into())),
                ]),
            ));
        }
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("rule".into(), Value::String(f.rule.clone())),
                    ("path".into(), Value::String(f.path.clone())),
                    ("line".into(), num(u64::from(f.line))),
                    ("message".into(), Value::String(f.message.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::String("fairsched-analyze-report/v1".into())),
            ("rules".into(), Value::Object(rules)),
            ("findings".into(), Value::Array(findings)),
            ("suppressed".into(), num(self.suppressed)),
            ("warnings".into(), strings(&self.warnings)),
            ("failures".into(), strings(&self.failures)),
            ("ok".into(), Value::Bool(self.ok())),
        ])
    }
}

/// Runs the full check over a workspace root.
pub fn run_check(opts: &Options) -> Result<Outcome, Box<dyn Error>> {
    let sources = load_sources(&opts.root)?;
    let graph = SymbolGraph::build(&sources);
    let mut findings = Vec::new();

    // Library-code rules.
    let library: Vec<&SourceFile> =
        sources.iter().filter(|s| is_library(&s.rel)).collect();
    for src in &library {
        panic_free::check(&src.rel, &src.lexed, &mut findings);
        durability::check(&src.rel, &src.lexed, &graph, &mut findings);
    }
    let lexed_refs: Vec<(&str, &LexedFile)> =
        library.iter().map(|s| (s.rel.as_str(), &s.lexed)).collect();
    let time_names = time_arith::collect_time_names(&lexed_refs);
    for src in &library {
        time_arith::check(&src.rel, &src.lexed, &time_names, &mut findings);
    }

    // The strict determinism tier: replay-critical crates only.
    for src in &sources {
        if determinism::is_replay_critical(&src.rel) {
            determinism::check(&src.rel, &src.lexed, &graph, &mut findings);
        }
    }

    // Spec literals: all Rust sources + golden artifacts, validated
    // against the live registries.
    let mut literals = spec_literals::literals_from_rust(&sources);
    let goldens = collect_goldens(&opts.root, &mut findings, &mut literals)?;
    let snap = spec_literals::RegistrySnapshot::live();
    let referenced = spec_literals::check(&snap, &literals, &mut findings);
    spec_literals::coverage(&snap, &referenced, &mut findings);

    // Schema versions: the literal pool against the committed registry.
    let registry_path = opts.root.join(schema_version::REGISTRY_PATH);
    let registry = if registry_path.exists() {
        Some(SchemaRegistry::parse(
            schema_version::REGISTRY_PATH,
            &fs::read_to_string(&registry_path)?,
        )?)
    } else {
        None
    };
    schema_version::check(registry.as_ref(), &literals, &graph, &mut findings);

    // Hygiene: orphan goldens (schema checks ran during collection).
    hygiene::check_orphans(&goldens, &sources, &mut findings);

    findings.sort_by(|a, b| (&a.rule, &a.path, a.line).cmp(&(&b.rule, &b.path, b.line)));

    // Allowlist, then ratchet.
    let mut outcome = Outcome::default();
    let allow = read_allowlist(&opts.root)?;
    let (kept, suppressed) = apply_allowlist(findings, &allow, &mut outcome.warnings);
    outcome.findings = kept;
    outcome.suppressed = suppressed;
    for rule in ALL_RULES {
        let count = outcome.findings.iter().filter(|f| f.rule == rule).count() as u64;
        outcome.totals.insert(rule.to_string(), count);
    }

    let ratchet_path = opts.root.join("lint_ratchet.toml");
    let mut ratchet = if ratchet_path.exists() {
        Ratchet::parse("lint_ratchet.toml", &fs::read_to_string(&ratchet_path)?)?
    } else {
        outcome.warnings.push(
            "lint_ratchet.toml missing: all ceilings default to 0 (run --update-ratchet)"
                .to_string(),
        );
        Ratchet::default()
    };
    if opts.update_ratchet {
        ratchet.limits =
            ALL_RULES.iter().map(|r| (r.to_string(), outcome.totals[*r])).collect();
        fs::write(&ratchet_path, ratchet.render())?;
    }
    for (rule, limit) in &ratchet.limits {
        if !ALL_RULES.contains(&rule.as_str()) {
            outcome
                .warnings
                .push(format!("lint_ratchet.toml names unknown rule {rule:?}"));
            continue;
        }
        let count = outcome.totals.get(rule).copied().unwrap_or(0);
        if count < *limit {
            outcome.warnings.push(format!(
                "ratchet for {rule} is stale: {limit} committed, {count} current — \
                 tighten it with --update-ratchet"
            ));
        }
    }
    for rule in ALL_RULES {
        let limit = ratchet.limits.get(rule).copied().unwrap_or(0);
        let count = outcome.totals[rule];
        if count > limit {
            outcome.failures.push(format!(
                "{rule}: {count} findings exceed the committed ratchet of {limit}"
            ));
        }
    }
    outcome.ratchet = ratchet.limits;
    Ok(outcome)
}

/// Reads `lint_allow.toml` if present.
fn read_allowlist(root: &Path) -> Result<Allowlist, Box<dyn Error>> {
    let path = root.join("lint_allow.toml");
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    Ok(Allowlist::parse("lint_allow.toml", &fs::read_to_string(path)?)?)
}

/// Applies file-scoped allowlist suppression: per `(rule, path)` group,
/// up to the granted allowance of findings is dropped (earliest first, so
/// newly introduced sites at the bottom of a file surface first).
fn apply_allowlist(
    findings: Vec<Finding>,
    allow: &Allowlist,
    warnings: &mut Vec<String>,
) -> (Vec<Finding>, u64) {
    let mut used: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut kept = Vec::new();
    let mut suppressed = 0u64;
    for f in findings {
        let key = (f.rule.clone(), f.path.clone());
        let granted = allow.allowance(&f.rule, &f.path);
        let u = used.entry(key).or_insert(0);
        if *u < granted {
            *u += 1;
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }
    for e in &allow.entries {
        let consumed = used.get(&(e.rule.clone(), e.path.clone())).copied().unwrap_or(0);
        let granted = allow.allowance(&e.rule, &e.path);
        if consumed < granted {
            warnings.push(format!(
                "lint_allow.toml:{} grants {} for {} in {} but only {} matched — \
                 shrink or delete the entry",
                e.line, granted, e.rule, e.path, consumed
            ));
        }
    }
    (kept, suppressed)
}

/// Recursively collects and lexes every workspace `.rs` file.
fn load_sources(root: &Path) -> Result<Vec<SourceFile>, Box<dyn Error>> {
    let mut files = Vec::new();
    walk(root, root, &mut |abs, rel| {
        if rel.ends_with(".rs") {
            files.push((abs.to_path_buf(), rel.to_string()));
        }
        Ok(())
    })?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    let mut out = Vec::new();
    for (abs, rel) in files {
        let text = fs::read_to_string(&abs)?;
        let lexed = lexer::lex(&text);
        out.push(SourceFile { rel, text, lexed });
    }
    Ok(out)
}

/// Collects golden/bench artifacts, runs their schema checks, and feeds
/// their strings into the spec-literal pool. Returns the golden paths
/// (for orphan detection).
fn collect_goldens(
    root: &Path,
    findings: &mut Vec<Finding>,
    literals: &mut Vec<spec_literals::Literal>,
) -> Result<Vec<String>, Box<dyn Error>> {
    let mut goldens = Vec::new();
    let golden_root = root.join("tests/golden");
    if golden_root.exists() {
        walk(&golden_root, root, &mut |abs, rel| {
            goldens.push(rel.to_string());
            let text = fs::read_to_string(abs)?;
            if rel.ends_with(".json") {
                match serde_json::parse_value(&text) {
                    Ok(doc) => {
                        hygiene::check_report(rel, &doc, findings);
                        spec_literals::literals_from_json(rel, &doc, literals);
                    }
                    Err(e) => findings.push(Finding::new(
                        rules::HYGIENE,
                        rel,
                        0,
                        format!("golden JSON does not parse: {e:?}"),
                    )),
                }
            } else if rel.starts_with("tests/golden/workloads/") {
                hygiene::check_workload_golden(rel, &text, findings);
                literals.extend(spec_literals::literal_from_workload_golden(rel, &text));
            } else if rel.ends_with(".txt") {
                hygiene::check_schedule_golden(rel, &text, findings);
            }
            Ok(())
        })?;
    }
    goldens.sort();
    let bench = root.join("BENCH_lattice.json");
    if bench.exists() {
        let text = fs::read_to_string(&bench)?;
        match serde_json::parse_value(&text) {
            Ok(doc) => {
                hygiene::check_bench_lattice("BENCH_lattice.json", &doc, findings);
                spec_literals::literals_from_json("BENCH_lattice.json", &doc, literals);
            }
            Err(e) => findings.push(Finding::new(
                rules::HYGIENE,
                "BENCH_lattice.json",
                0,
                format!("bench artifact does not parse: {e:?}"),
            )),
        }
    }
    // Committed experiment specs, wherever they live: every
    // `*.experiment.json` must load through the real spec parser, and its
    // spec strings join the literal pool so an unknown scheduler or
    // workload name in a fixture fails the lint, not the nightly run.
    walk(root, root, &mut |abs, rel| {
        if !rel.ends_with(".experiment.json") {
            return Ok(());
        }
        let text = fs::read_to_string(abs)?;
        match serde_json::parse_value(&text) {
            Ok(doc) => {
                hygiene::check_experiment_spec(rel, &doc, findings);
                spec_literals::literals_from_json(rel, &doc, literals);
            }
            Err(e) => findings.push(Finding::new(
                rules::HYGIENE,
                rel,
                0,
                format!("experiment spec does not parse as JSON: {e:?}"),
            )),
        }
        Ok(())
    })?;
    Ok(goldens)
}

/// A file visitor for [`walk`]: `(absolute, workspace_relative)`.
type Visitor<'a> = dyn FnMut(&Path, &str) -> Result<(), Box<dyn Error>> + 'a;

/// Depth-first walk calling `visit(abs, workspace_relative)` on files.
fn walk(dir: &Path, root: &Path, visit: &mut Visitor<'_>) -> Result<(), Box<dyn Error>> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, root, visit)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_else(|_| name.clone());
            visit(&path, &rel)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_scope_is_the_five_crates() {
        assert!(is_library("crates/core/src/fairness.rs"));
        assert!(is_library("crates/bench/src/baseline.rs"));
        assert!(is_library("crates/experiment/src/runner.rs"));
        assert!(!is_library("crates/core/tests/x.rs"));
        assert!(!is_library("tests/end_to_end.rs"));
        assert!(!is_library("crates/compat/serde/src/lib.rs"));
        assert!(!is_library("crates/analyze/src/lib.rs"));
    }

    #[test]
    fn allowlist_drops_earliest_findings_and_flags_unused() {
        let allow = Allowlist::parse(
            "lint_allow.toml",
            "[[allow]]\nrule = \"panic-free\"\npath = \"a.rs\"\ncount = 2\nreason = \"x\"\n\
             [[allow]]\nrule = \"panic-free\"\npath = \"b.rs\"\ncount = 1\nreason = \"y\"\n",
        )
        .unwrap();
        let findings = vec![
            Finding::new("panic-free", "a.rs", 1, "one".into()),
            Finding::new("panic-free", "a.rs", 5, "two".into()),
            Finding::new("panic-free", "a.rs", 9, "three".into()),
        ];
        let mut warnings = Vec::new();
        let (kept, suppressed) = apply_allowlist(findings, &allow, &mut warnings);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed, 2);
        assert_eq!(kept[0].line, 9);
        // The b.rs entry matched nothing: flagged as unused.
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("b.rs"));
    }
}
