//! A small comment/string-aware Rust lexer with test-scope tracking.
//!
//! The lint rules need three things no plain `grep` can give them:
//!
//! * **string/comment awareness** — `panic!` inside a doc comment or a
//!   string literal is not a panic site, and spec strings live *inside*
//!   literals;
//! * **test-scope tracking** — `#[cfg(test)]`-gated items and `mod tests`
//!   blocks are exempt from the library-code rules;
//! * **inline allow annotations** — a `lint:allow(rule-a,rule-b)` comment
//!   suppresses those rules on its own line and the following line.
//!
//! This is deliberately *not* a full Rust grammar: it tokenizes
//! identifiers, numbers, string/char literals, lifetimes, and single-char
//! punctuation with line numbers, and layers a brace-depth scanner on top
//! for `#[cfg(test)]` / `#[test]` / `mod tests` scopes. That is exactly
//! enough for token-pattern rules, and small enough to audit.

use std::collections::{BTreeMap, BTreeSet};

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal (verbatim text).
    Num(String),
    /// A cooked or raw string literal (unquoted contents; escape
    /// sequences are left verbatim — rules only need substring checks and
    /// spec strings never contain escapes).
    Str(String),
    /// A character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus its location and scope classification.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// Whether the token sits in test-only code (`#[cfg(test)]` item,
    /// `#[test]` function, or a `mod tests` block).
    pub in_test: bool,
}

/// A fully lexed source file.
#[derive(Clone, Debug, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Per-line rule suppressions from `lint:allow(...)` comments: an
    /// annotation covers its own line and the next line, so it can sit at
    /// the end of the offending line or on a line of its own above it.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
}

impl LexedFile {
    /// Whether `rule` is suppressed on `line` by an inline annotation.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|rules| rules.contains(rule))
    }
}

/// Lexes Rust source text.
pub fn lex(source: &str) -> LexedFile {
    let mut raw = RawLexer::new(source);
    raw.run();
    let tokens = mark_test_scopes(raw.tokens);
    LexedFile { tokens, allows: raw.allows }
}

struct RawLexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl<'a> RawLexer<'a> {
    fn new(source: &'a str) -> Self {
        RawLexer {
            bytes: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            allows: BTreeMap::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.tokens.push(Token { tok, line, in_test: false });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.cooked_string(),
                b'r' | b'b' => {
                    if !self.raw_or_byte_string() {
                        self.ident();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(c as char), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        self.record_allow(text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        self.record_allow(text, line);
    }

    /// Parses `lint:allow(rule-a, rule-b)` out of a comment and registers
    /// the rules for the comment's line and the next line.
    fn record_allow(&mut self, comment: &str, line: u32) {
        let Some(idx) = comment.find("lint:allow(") else { return };
        let rest = &comment[idx + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for rule in rest[..end].split(',') {
            let rule = rule.trim().to_string();
            if rule.is_empty() {
                continue;
            }
            for l in [line, line + 1] {
                self.allows.entry(l).or_default().insert(rule.clone());
            }
        }
    }

    fn cooked_string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek() {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => break,
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.bump(); // closing quote
        self.push(Tok::Str(text), line);
    }

    /// Attempts `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`; returns
    /// false if the lookahead is a plain identifier starting with r/b.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut off = 1; // past the r/b
        if self.peek() == Some(b'b') && self.peek_at(1) == Some(b'r') {
            off = 2;
        }
        let mut hashes = 0usize;
        while self.peek_at(off + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek_at(off + hashes) != Some(b'"') {
            // `b'x'` byte char: let char lexing handle it.
            if off == 1 && self.peek() == Some(b'b') && self.peek_at(1) == Some(b'\'') {
                self.bump();
                self.char_or_lifetime();
                return true;
            }
            return false;
        }
        let is_raw = self.peek() == Some(b'r') || self.peek_at(1) == Some(b'r');
        let line = self.line;
        for _ in 0..off + hashes + 1 {
            self.bump();
        }
        let start = self.pos;
        let end;
        loop {
            match self.peek() {
                None => {
                    end = self.pos;
                    break;
                }
                Some(b'\\') if !is_raw => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    // Raw strings close only on `"` + the right number of
                    // hashes.
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek_at(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        end = self.pos;
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..end]).unwrap_or("").to_string();
        self.push(Tok::Str(text), line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening '
                     // Lifetime: 'ident not followed by a closing quote.
        if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
            let mut off = 1;
            while matches!(self.peek_at(off), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
            {
                off += 1;
            }
            if self.peek_at(off) != Some(b'\'') {
                for _ in 0..off {
                    self.bump();
                }
                self.push(Tok::Lifetime, line);
                return;
            }
        }
        loop {
            match self.peek() {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        self.push(Tok::Char, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(Tok::Ident(text), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
        {
            // Stop a range expression `0..n` from being eaten as a float.
            if self.peek() == Some(b'.') && self.peek_at(1) == Some(b'.') {
                break;
            }
            self.bump();
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(Tok::Num(text), line);
    }
}

/// Marks tokens inside test-only scopes: `#[cfg(test)]` items, `#[test]`
/// functions, and `mod tests` blocks. A pending marker attaches to the
/// next `{...}` block at the same depth; an item that ends with `;`
/// before opening a block (e.g. `#[cfg(test)] use x;`) drops it.
fn mark_test_scopes(mut tokens: Vec<Token>) -> Vec<Token> {
    let mut depth: i32 = 0;
    let mut test_until: Vec<i32> = Vec::new(); // depths owning a test block
    let mut pending_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let is_test_attr = matches!(&tokens[i].tok, Tok::Punct('#'))
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            && match tokens.get(i + 2).map(|t| &t.tok) {
                // #[test], #[cfg(test)], #[cfg(all(test, ...))] ...
                Some(Tok::Ident(name)) if name == "test" => true,
                Some(Tok::Ident(name)) if name == "cfg" => {
                    attr_mentions_test(&tokens, i + 3)
                }
                _ => false,
            };
        if is_test_attr {
            pending_test = true;
        }
        // `mod tests` / `mod test` without an attribute.
        if let Tok::Ident(kw) = &tokens[i].tok {
            if kw == "mod" {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    if name == "tests" || name == "test" {
                        pending_test = true;
                    }
                }
            }
        }
        match &tokens[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending_test {
                    test_until.push(depth);
                    pending_test = false;
                }
            }
            Tok::Punct('}') => {
                if test_until.last() == Some(&depth) {
                    test_until.pop();
                    // The closing brace itself is still test scope.
                    tokens[i].in_test = true;
                    depth -= 1;
                    i += 1;
                    continue;
                }
                depth -= 1;
            }
            Tok::Punct(';') => {
                // An item that never opened a block consumes the marker.
                pending_test = false;
            }
            _ => {}
        }
        tokens[i].in_test = !test_until.is_empty() || pending_test || is_test_attr;
        i += 1;
    }
    tokens
}

/// Whether the parenthesized attribute arguments starting at `start`
/// (expected `(`) mention the bare ident `test`.
fn attr_mentions_test(tokens: &[Token], start: usize) -> bool {
    if !matches!(tokens.get(start).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return false;
    }
    let mut depth = 0i32;
    for t in &tokens[start..] {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(name) if name == "test" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexedFile) -> Vec<(String, bool)> {
        file.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.clone(), t.in_test)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // panic! in a comment
            /* unwrap() in a block comment */
            fn f() { let s = "panic!(\"no\")"; }
        "##;
        let file = lex(src);
        assert!(idents(&file).iter().all(|(s, _)| s != "panic" && s != "unwrap"));
        // The string literal itself is a token with its contents.
        assert!(file
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("panic!"))));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src =
            r###"fn f<'a>(x: &'a str) -> &'a str { let _ = r#"spec "x:y=1""#; x }"###;
        let file = lex(src);
        assert!(file
            .tokens
            .iter()
            // lint:allow(spec-literal) lexer fixture, not a real spec.
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("x:y=1"))));
        assert!(file.tokens.iter().any(|t| matches!(&t.tok, Tok::Lifetime)));
    }

    #[test]
    fn cfg_test_mod_is_test_scope() {
        let src = r#"
            fn lib() { work(); }
            #[cfg(test)]
            mod tests {
                fn helper() { broken(); }
            }
            fn lib2() { more(); }
        "#;
        let file = lex(src);
        let ids = idents(&file);
        let of = |name: &str| ids.iter().find(|(s, _)| s == name).unwrap().1;
        assert!(!of("work"));
        assert!(of("broken"));
        assert!(!of("more"));
    }

    #[test]
    fn test_attr_fn_is_test_scope() {
        let src = r#"
            #[test]
            fn a_test() { boom(); }
            fn lib() { fine(); }
        "#;
        let file = lex(src);
        let ids = idents(&file);
        assert!(ids.iter().find(|(s, _)| s == "boom").unwrap().1);
        assert!(!ids.iter().find(|(s, _)| s == "fine").unwrap().1);
    }

    #[test]
    fn cfg_test_use_item_does_not_poison_rest_of_file() {
        let src = r#"
            #[cfg(test)]
            use std::fmt;
            fn lib() { fine(); }
        "#;
        let file = lex(src);
        let ids = idents(&file);
        assert!(!ids.iter().find(|(s, _)| s == "fine").unwrap().1);
    }

    #[test]
    fn allow_annotations_cover_their_line_and_the_next() {
        let src =
            "fn f() {\n    // lint:allow(panic-free) justified\n    g();\n    h();\n}\n";
        let file = lex(src);
        assert!(file.allowed("panic-free", 2));
        assert!(file.allowed("panic-free", 3));
        assert!(!file.allowed("panic-free", 4));
        assert!(!file.allowed("time-arith", 3));
    }

    #[test]
    fn nested_block_comments() {
        let file = lex("/* a /* nested */ still comment */ fn f() {}");
        assert_eq!(
            idents(&file).iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["fn", "f"]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let file = lex("for i in 0..10 { let x = 1.5; }");
        let nums: Vec<String> = file
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "10", "1.5"]);
    }
}
