//! CLI entry point: `fairsched-analyze check [--root DIR] [--report FILE]
//! [--format json|sarif] [--update-ratchet]`.

use std::path::PathBuf;
use std::process::ExitCode;

use fairsched_analyze::{run_check, sarif, Options};

const USAGE: &str = "\
usage: fairsched-analyze check [--root DIR] [--report FILE]
                               [--format json|sarif] [--update-ratchet]

Offline static analysis of the fairsched workspace: panic-freedom,
Time-overflow widening, spec-literal validity, golden/bench hygiene,
replay determinism, journaled-write durability, and schema-version
registration.

  --root DIR        workspace root (default: current directory)
  --report FILE     also write the machine-readable report here
  --format FMT      report format: json (default) or sarif (2.1.0, for
                    CI code-scanning upload)
  --update-ratchet  rewrite lint_ratchet.toml to the current counts

exit status: 0 clean, 1 lint failure (over a ratchet), 2 usage/config error
";

/// Report output format.
enum Format {
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut opts = Options { root: PathBuf::from("."), update_ratchet: false };
    let mut report_path: Option<PathBuf> = None;
    let mut format = Format::Json;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => opts.root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage_error("--report needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!(
                        "unknown format {other:?} (expected json or sarif)"
                    ))
                }
                None => return usage_error("--format needs a value"),
            },
            "--update-ratchet" => opts.update_ratchet = true,
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let outcome = match run_check(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fairsched-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &outcome.findings {
        if f.line > 0 {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        } else {
            println!("{}: [{}] {}", f.path, f.rule, f.message);
        }
    }
    for w in &outcome.warnings {
        println!("warning: {w}");
    }
    println!("--");
    for (rule, count) in &outcome.totals {
        let limit = outcome.ratchet.get(rule).copied().unwrap_or(0);
        println!("{rule}: {count} findings (ratchet {limit})");
    }
    if outcome.suppressed > 0 {
        println!("{} findings suppressed by lint_allow.toml", outcome.suppressed);
    }

    if let Some(path) = report_path {
        let rendered = match format {
            Format::Json => outcome.report().to_json_pretty(),
            Format::Sarif => sarif::render(&outcome).to_json_pretty(),
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("fairsched-analyze: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }

    if outcome.ok() {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fairsched-analyze: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
