//! The seven lint rule families.
//!
//! Every rule produces [`crate::Finding`]s with a stable rule id — the id
//! is what `lint_allow.toml`, `lint_ratchet.toml`, and inline
//! `lint:allow(...)` comments key on:
//!
//! | id               | family                                              |
//! |------------------|-----------------------------------------------------|
//! | `panic-free`     | panic sites in non-test library code                |
//! | `time-arith`     | raw `*`/`+` on `Time`/`Frac`-typed values           |
//! | `spec-literal`   | spec-string literals vs the live registries         |
//! | `hygiene`        | golden / bench JSON schema and orphan goldens       |
//! | `determinism`    | clock/entropy reads and hash iteration in replay-   |
//! |                  | critical code (semantic, symbol-graph-backed)       |
//! | `durability`     | raw fs writes that bypass `fairsched_core::journal` |
//! | `schema-version` | `fairsched-*/vN` literals vs `schema_registry.toml` |
//!
//! The last three are the *semantic* passes: they consult the
//! [workspace symbol graph](crate::symbols) (imports, item tables,
//! test classification) rather than raw token shapes alone.

pub mod determinism;
pub mod durability;
pub mod hygiene;
pub mod panic_free;
pub mod schema_version;
pub mod spec_literals;
pub mod time_arith;

/// Rule id for the panic-freedom family.
pub const PANIC_FREE: &str = "panic-free";
/// Rule id for the `Time` arithmetic widening family.
pub const TIME_ARITH: &str = "time-arith";
/// Rule id for the spec-literal validity family.
pub const SPEC_LITERAL: &str = "spec-literal";
/// Rule id for golden/bench hygiene.
pub const HYGIENE: &str = "hygiene";
/// Rule id for the replay-determinism family.
pub const DETERMINISM: &str = "determinism";
/// Rule id for the journaled-write durability family.
pub const DURABILITY: &str = "durability";
/// Rule id for the schema-version registry family.
pub const SCHEMA_VERSION: &str = "schema-version";

/// All rule ids, in reporting order.
pub const ALL_RULES: [&str; 7] = [
    PANIC_FREE,
    TIME_ARITH,
    SPEC_LITERAL,
    HYGIENE,
    DETERMINISM,
    DURABILITY,
    SCHEMA_VERSION,
];

/// One-line description per rule id (SARIF `rules` metadata and docs).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        PANIC_FREE => "panic sites (unwrap/expect/panic!/indexing) in non-test library code",
        TIME_ARITH => "raw `*`/`+` on Time/Frac-typed values without widening",
        SPEC_LITERAL => "spec-string literals validated against the live registries",
        HYGIENE => "golden/bench artifact schema validity and orphan detection",
        DETERMINISM => {
            "wall-clock reads, unseeded RNG, and hash-ordered iteration in replay-critical code"
        }
        DURABILITY => "raw filesystem writes bypassing the fairsched_core::journal discipline",
        SCHEMA_VERSION => "fairsched-*/vN format literals registered in schema_registry.toml",
        _ => "unknown rule",
    }
}
