//! The four lint rule families.
//!
//! Every rule produces [`crate::Finding`]s with a stable rule id — the id
//! is what `lint_allow.toml`, `lint_ratchet.toml`, and inline
//! `lint:allow(...)` comments key on:
//!
//! | id             | family                                             |
//! |----------------|----------------------------------------------------|
//! | `panic-free`   | panic sites in non-test library code               |
//! | `time-arith`   | raw `*`/`+` on `Time`/`Frac`-typed values          |
//! | `spec-literal` | spec-string literals vs the live registries        |
//! | `hygiene`      | golden / bench JSON schema and orphan goldens      |

pub mod hygiene;
pub mod panic_free;
pub mod spec_literals;
pub mod time_arith;

/// Rule id for the panic-freedom family.
pub const PANIC_FREE: &str = "panic-free";
/// Rule id for the `Time` arithmetic widening family.
pub const TIME_ARITH: &str = "time-arith";
/// Rule id for the spec-literal validity family.
pub const SPEC_LITERAL: &str = "spec-literal";
/// Rule id for golden/bench hygiene.
pub const HYGIENE: &str = "hygiene";

/// All rule ids, in reporting order.
pub const ALL_RULES: [&str; 4] = [PANIC_FREE, TIME_ARITH, SPEC_LITERAL, HYGIENE];
