//! `spec-literal`: every `"family:key=value,..."` literal in the
//! workspace must be valid against the *live* registries.
//!
//! The analyzer links the fairsched crates, so the source of truth is the
//! same [`Registry`](fairsched_core::scheduler::Registry) /
//! [`WorkloadRegistry`](fairsched_workloads::spec::WorkloadRegistry) /
//! [`MetricRegistry`](fairsched_sim::report::MetricRegistry) singletons
//! the CLI resolves at runtime — a renamed family or parameter breaks the
//! lint before it breaks a user.
//!
//! Checked sources: string literals in every workspace `.rs` file
//! (library *and* test code — deliberately malformed fixtures carry
//! `lint:allow(spec-literal)`), strings and object keys in
//! `tests/golden/**/*.json` and `BENCH_lattice.json` (report metric maps
//! are keyed by spec strings), and `spec=` header lines in
//! `tests/golden/workloads/*.txt`.
//!
//! A string is *claimed* as a spec literal when it has the shape
//! `ident:...=...` with no whitespace. Claimed literals must parse as
//! [`SpecBody`], name a registered family, use only that family's
//! accepted parameter keys, and round-trip canonically (sorted params).
//! Bare literals equal to a registered name count as references. Finally,
//! the rule doubles as a static registry-coverage gate: a registered
//! family that no literal anywhere references is itself a finding.

use std::collections::{BTreeMap, BTreeSet};

use fairsched_core::spec::SpecBody;

use crate::lexer::Tok;
use crate::rules::SPEC_LITERAL;
use crate::{Finding, SourceFile};

/// One registry family as seen by the lint: where it is registered and
/// which parameter keys it accepts (merged across registries when the
/// same name exists in more than one).
#[derive(Clone, Debug, Default)]
pub struct Family {
    /// Registry labels (`scheduler` / `workload` / `metric`).
    pub registries: Vec<&'static str>,
    /// Union of accepted parameter keys.
    pub params: BTreeSet<String>,
}

/// Snapshot of the three live registries.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Family name → metadata.
    pub families: BTreeMap<String, Family>,
}

impl RegistrySnapshot {
    /// Reads the shared singletons the rest of the workspace uses.
    pub fn live() -> Self {
        let mut snap = RegistrySnapshot::default();
        let sched = fairsched_core::scheduler::Registry::shared();
        for name in sched.names() {
            let params = sched
                .get(name)
                .map(|f| f.accepted_params().iter().map(|p| p.to_string()).collect())
                .unwrap_or_default();
            snap.add("scheduler", name, params);
        }
        let wl = fairsched_workloads::spec::WorkloadRegistry::shared();
        for name in wl.names() {
            let params = wl
                .get(name)
                .map(|f| f.accepted_params().iter().map(|p| p.to_string()).collect())
                .unwrap_or_default();
            snap.add("workload", name, params);
        }
        let metrics = fairsched_sim::report::MetricRegistry::shared();
        for name in metrics.names() {
            let params = metrics
                .get(name)
                .map(|f| f.accepted_params().iter().map(|p| p.to_string()).collect())
                .unwrap_or_default();
            snap.add("metric", name, params);
        }
        snap
    }

    /// Registers one family (test seam; `live()` uses it too).
    pub fn add(&mut self, registry: &'static str, name: &str, params: BTreeSet<String>) {
        let fam = self.families.entry(name.to_string()).or_default();
        fam.registries.push(registry);
        fam.params.extend(params);
    }
}

/// A candidate literal extracted from some source.
#[derive(Clone, Debug)]
pub struct Literal {
    /// The literal text.
    pub text: String,
    /// Workspace-relative source path.
    pub path: String,
    /// 1-based line; 0 for JSON sources (not line-addressable).
    pub line: u32,
    /// Whether an inline `lint:allow(spec-literal)` covers it.
    pub allowed: bool,
    /// Whether the literal sits in test-only Rust code (always false for
    /// JSON/golden sources). The `schema-version` rule skips test-scope
    /// literals for the registration requirement while still counting
    /// them as usage.
    pub in_test: bool,
}

/// Extracts candidate literals from lexed Rust sources.
pub fn literals_from_rust(sources: &[SourceFile]) -> Vec<Literal> {
    let mut out = Vec::new();
    for src in sources {
        for t in &src.lexed.tokens {
            if let Tok::Str(s) = &t.tok {
                out.push(Literal {
                    text: s.clone(),
                    path: src.rel.clone(),
                    line: t.line,
                    allowed: src.lexed.allowed(SPEC_LITERAL, t.line),
                    in_test: t.in_test,
                });
            }
        }
    }
    out
}

/// Extracts candidate literals (strings *and* object keys) from a parsed
/// JSON document.
pub fn literals_from_json(path: &str, value: &serde::Value, out: &mut Vec<Literal>) {
    fn push(out: &mut Vec<Literal>, path: &str, text: &str) {
        out.push(Literal {
            text: text.to_string(),
            path: path.to_string(),
            line: 0,
            allowed: false,
            in_test: false,
        });
    }
    match value {
        serde::Value::String(s) => push(out, path, s),
        serde::Value::Array(items) => {
            for v in items {
                literals_from_json(path, v, out);
            }
        }
        serde::Value::Object(entries) => {
            for (k, v) in entries {
                push(out, path, k);
                literals_from_json(path, v, out);
            }
        }
        _ => {}
    }
}

/// Extracts the `spec=` header literal from a workload golden's text.
pub fn literal_from_workload_golden(path: &str, text: &str) -> Option<Literal> {
    let first = text.lines().next()?;
    let spec = first.strip_prefix("spec=")?;
    Some(Literal {
        text: spec.to_string(),
        path: path.to_string(),
        line: 1,
        allowed: false,
        in_test: false,
    })
}

/// Whether a string is *claimed* as a spec literal: `ident:...` with at
/// least one `=` and no whitespace. Claimed literals must validate.
fn claimed(text: &str) -> bool {
    let Some((name, rest)) = text.split_once(':') else { return false };
    fairsched_core::spec::valid_ident(name)
        && rest.contains('=')
        && !text.chars().any(char::is_whitespace)
}

/// Validates all literals against a registry snapshot, appending findings
/// and returning the set of referenced family names.
pub fn check(
    snap: &RegistrySnapshot,
    literals: &[Literal],
    out: &mut Vec<Finding>,
) -> BTreeSet<String> {
    let mut referenced = BTreeSet::new();
    for lit in literals {
        if snap.families.contains_key(&lit.text) {
            // Bare family name: a reference, nothing to validate.
            referenced.insert(lit.text.clone());
            continue;
        }
        if !claimed(&lit.text) {
            continue;
        }
        if lit.allowed {
            continue;
        }
        let mut fail = |message: String| {
            out.push(Finding::new(SPEC_LITERAL, &lit.path, lit.line, message));
        };
        let body: SpecBody = match lit.text.parse() {
            Ok(b) => b,
            Err(e) => {
                fail(format!("spec literal {:?} does not parse: {e:?}", lit.text));
                continue;
            }
        };
        let Some(family) = snap.families.get(body.name()) else {
            fail(format!(
                "spec literal {:?} names unknown family {:?} (not in any registry)",
                lit.text,
                body.name()
            ));
            continue;
        };
        referenced.insert(body.name().to_string());
        for (key, _) in body.params() {
            if !family.params.contains(key) {
                fail(format!(
                    "spec literal {:?}: family {:?} ({}) does not accept param {:?} \
                     (accepted: {})",
                    lit.text,
                    body.name(),
                    family.registries.join("+"),
                    key,
                    family.params.iter().cloned().collect::<Vec<_>>().join(", "),
                ));
            }
        }
        let canonical = body.to_string();
        if canonical != lit.text {
            fail(format!(
                "spec literal {:?} is not canonical (expected {canonical:?}; params \
                 sort by key)",
                lit.text
            ));
        }
    }
    referenced
}

/// The registry-coverage gate: every registered family must be referenced
/// by at least one literal somewhere in the workspace or goldens.
pub fn coverage(
    snap: &RegistrySnapshot,
    referenced: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for (name, family) in &snap.families {
        if !referenced.contains(name) {
            out.push(Finding::new(
                SPEC_LITERAL,
                "workspace",
                0,
                format!(
                    "registry family {:?} ({}) is never referenced by any spec \
                     literal, test, or golden — dead registration or missing coverage",
                    name,
                    family.registries.join("+"),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> RegistrySnapshot {
        let mut s = RegistrySnapshot::default();
        s.add(
            "workload",
            "fpt",
            ["horizon", "k", "maxdur"].iter().map(|p| p.to_string()).collect(),
        );
        s.add("scheduler", "rr", BTreeSet::new());
        s
    }

    fn lit(text: &str) -> Literal {
        Literal {
            text: text.to_string(),
            path: "x.rs".into(),
            line: 3,
            allowed: false,
            in_test: false,
        }
    }

    #[test]
    fn valid_literals_pass_and_reference() {
        let mut out = Vec::new();
        let refs = check(&snap(), &[lit("fpt:horizon=800,k=3"), lit("rr")], &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(refs.contains("fpt") && refs.contains("rr"));
    }

    #[test]
    fn unknown_family_param_and_noncanonical_fail() {
        let mut out = Vec::new();
        check(
            &snap(),
            &[lit("ftp:k=3"), lit("fpt:cores=2"), lit("fpt:k=3,horizon=800")],
            &mut out,
        );
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("unknown family"));
        assert!(msgs[1].contains("does not accept param"));
        assert!(msgs[2].contains("not canonical"));
    }

    #[test]
    fn unclaimed_strings_are_ignored() {
        let mut out = Vec::new();
        check(
            &snap(),
            &[lit("error: bad thing"), lit("a/b/c.rs"), lit("k=3"), lit("https://x")],
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn malformed_claimed_literal_fails_unless_allowed() {
        let mut out = Vec::new();
        check(&snap(), &[lit("fpt:k=1,k=1")], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        let mut allowed = lit("fpt:k=1,k=1");
        allowed.allowed = true;
        out.clear();
        check(&snap(), &[allowed], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn coverage_gate_flags_unreferenced_families() {
        let mut out = Vec::new();
        let refs = check(&snap(), &[lit("fpt:k=3")], &mut out);
        coverage(&snap(), &refs, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("\"rr\""));
    }
}
