//! `hygiene`: golden / bench artifact schema checks and orphan detection.
//!
//! The golden corpus is the regression anchor for the whole workspace, so
//! it gets its own lint family:
//!
//! * `tests/golden/reports/*.json` must parse and carry the report
//!   schema's load-bearing keys (`workload_spec`, `scheduler_spec`,
//!   `metric_specs`, `orgs`, `aggregates`), with `orgs` entries holding
//!   `name` + `metrics`;
//! * `tests/golden/workloads/*.txt` must open with a `spec=` header and
//!   list at least one `org=` line;
//! * `tests/golden/*.txt` (schedule goldens) must open with `scheduler=`
//!   and carry a `horizon=` line;
//! * `BENCH_lattice.json` must declare `schema =
//!   "fairsched-bench-lattice/v1"` with non-empty `cases`, a `timeline`
//!   array, and a `summary` object;
//! * every committed `*.experiment.json` fixture must load through the
//!   real [`fairsched_experiment::ExperimentSpec`] parser (and its spec
//!   strings are validated against the live registries by the
//!   spec-literal rule);
//! * every golden file must be referenced by name from some workspace
//!   `.rs` file — an unreferenced golden is dead weight that silently
//!   stops guarding anything (reported as an orphan).

use crate::rules::HYGIENE;
use crate::{Finding, SourceFile};

/// The expected `schema` tag in `BENCH_lattice.json`.
pub const BENCH_SCHEMA: &str = "fairsched-bench-lattice/v1";

/// Keys every golden report JSON must carry.
const REPORT_KEYS: [&str; 5] =
    ["workload_spec", "scheduler_spec", "metric_specs", "orgs", "aggregates"];

fn get<'a>(v: &'a serde::Value, key: &str) -> Option<&'a serde::Value> {
    match v {
        serde::Value::Object(entries) => {
            entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
        _ => None,
    }
}

/// Checks one golden report JSON (already parsed; parse failures are
/// reported by the caller, which owns the file I/O).
pub fn check_report(path: &str, doc: &serde::Value, out: &mut Vec<Finding>) {
    for key in REPORT_KEYS {
        if get(doc, key).is_none() {
            out.push(Finding::new(
                HYGIENE,
                path,
                0,
                format!("golden report is missing required key {key:?}"),
            ));
        }
    }
    if let Some(serde::Value::Array(orgs)) = get(doc, "orgs") {
        for (i, org) in orgs.iter().enumerate() {
            if get(org, "name").is_none() || get(org, "metrics").is_none() {
                out.push(Finding::new(
                    HYGIENE,
                    path,
                    0,
                    format!("golden report orgs[{i}] is missing name/metrics"),
                ));
            }
        }
    }
}

/// Checks one workload golden's text.
pub fn check_workload_golden(path: &str, text: &str, out: &mut Vec<Finding>) {
    let first = text.lines().next().unwrap_or("");
    if !first.starts_with("spec=") {
        out.push(Finding::new(
            HYGIENE,
            path,
            1,
            "workload golden must open with a `spec=` header".to_string(),
        ));
    }
    if !text.lines().any(|l| l.starts_with("org=")) {
        out.push(Finding::new(
            HYGIENE,
            path,
            0,
            "workload golden lists no `org=` lines".to_string(),
        ));
    }
}

/// Checks one schedule golden's text (`tests/golden/*.txt`).
pub fn check_schedule_golden(path: &str, text: &str, out: &mut Vec<Finding>) {
    let first = text.lines().next().unwrap_or("");
    if !first.starts_with("scheduler=") {
        out.push(Finding::new(
            HYGIENE,
            path,
            1,
            "schedule golden must open with a `scheduler=` header".to_string(),
        ));
    }
    if !text.lines().any(|l| l.starts_with("horizon=")) {
        out.push(Finding::new(
            HYGIENE,
            path,
            0,
            "schedule golden carries no `horizon=` line".to_string(),
        ));
    }
}

/// Checks the bench lattice artifact (already parsed).
pub fn check_bench_lattice(path: &str, doc: &serde::Value, out: &mut Vec<Finding>) {
    match get(doc, "schema") {
        Some(serde::Value::String(s)) if s == BENCH_SCHEMA => {}
        other => out.push(Finding::new(
            HYGIENE,
            path,
            0,
            format!("bench artifact schema must be {BENCH_SCHEMA:?}, found {other:?}"),
        )),
    }
    match get(doc, "cases") {
        Some(serde::Value::Array(cases)) if !cases.is_empty() => {
            for (i, case) in cases.iter().enumerate() {
                for key in ["name", "scheduler", "lattice"] {
                    if get(case, key).is_none() {
                        out.push(Finding::new(
                            HYGIENE,
                            path,
                            0,
                            format!("bench cases[{i}] is missing {key:?}"),
                        ));
                    }
                }
                if let Some(serde::Value::String(name)) = get(case, "name") {
                    if name.starts_with("scale/") {
                        check_scale_case(path, i, name, case, out);
                    }
                }
            }
        }
        _ => out.push(Finding::new(
            HYGIENE,
            path,
            0,
            "bench artifact must carry a non-empty `cases` array".to_string(),
        )),
    }
    if !matches!(get(doc, "timeline"), Some(serde::Value::Array(_))) {
        out.push(Finding::new(
            HYGIENE,
            path,
            0,
            "bench artifact must carry a `timeline` array".to_string(),
        ));
    }
    if !matches!(get(doc, "summary"), Some(serde::Value::Object(_))) {
        out.push(Finding::new(
            HYGIENE,
            path,
            0,
            "bench artifact must carry a `summary` object".to_string(),
        ));
    }
}

/// Job-count floor a committed `scale/` bench row must report — the
/// million-job tier's reason to exist.
pub const SCALE_MIN_JOBS: u64 = 1_000_000;

/// Validates one `scale/` case of the bench artifact: the million-job
/// tier's rows must carry the full numeric timing schema, report a
/// million-job trace (`scale/` at toy sizes would gate nothing), and have
/// a `null` lattice — the coalition lattice is 2^k and the tier runs at
/// `k = 100`, so a non-null lattice means the row was mislabeled.
fn check_scale_case(
    path: &str,
    i: usize,
    name: &str,
    case: &serde::Value,
    out: &mut Vec<Finding>,
) {
    let numeric = |key: &str| -> Option<u64> {
        match get(case, key) {
            Some(serde::Value::Number(n)) => n.parse::<u64>().ok(),
            _ => None,
        }
    };
    for key in [
        "k",
        "n_jobs",
        "horizon",
        "samples",
        "wall_ns_min",
        "wall_ns_mean",
        "engine_events",
    ] {
        if numeric(key).is_none() {
            out.push(Finding::new(
                HYGIENE,
                path,
                0,
                format!("bench cases[{i}] ({name}): scale row lacks numeric {key:?}"),
            ));
        }
    }
    if let Some(n_jobs) = numeric("n_jobs") {
        if n_jobs < SCALE_MIN_JOBS {
            out.push(Finding::new(
                HYGIENE,
                path,
                0,
                format!(
                    "bench cases[{i}] ({name}): scale row reports {n_jobs} jobs, \
                     below the {SCALE_MIN_JOBS} tier floor"
                ),
            ));
        }
    }
    if !matches!(get(case, "lattice"), Some(serde::Value::Null) | None) {
        out.push(Finding::new(
            HYGIENE,
            path,
            0,
            format!(
                "bench cases[{i}] ({name}): scale rows must have a null lattice \
                 (no 2^100 coalition lattice exists)"
            ),
        ));
    }
}

/// Checks one committed `*.experiment.json` fixture (already parsed)
/// against the real loader — the exact code `fairsched experiment run`
/// uses — so a fixture that drifts from the spec schema fails the lint
/// with the loader's own typed diagnostic.
pub fn check_experiment_spec(path: &str, doc: &serde::Value, out: &mut Vec<Finding>) {
    if let Err(e) = fairsched_experiment::ExperimentSpec::from_json_value(doc) {
        out.push(Finding::new(HYGIENE, path, 0, e.to_string()));
    }
}

/// Orphan detection: a golden (workspace-relative path) is an orphan when
/// no workspace `.rs` source mentions its file name — or its extensionless
/// stem, since the golden test tables name cases by stem and append the
/// extension when resolving the path.
pub fn check_orphans(
    golden_paths: &[String],
    sources: &[SourceFile],
    out: &mut Vec<Finding>,
) {
    for path in golden_paths {
        let name = path.rsplit('/').next().unwrap_or(path);
        let stem = name.rsplit_once('.').map_or(name, |(s, _)| s);
        let referenced =
            sources.iter().any(|s| s.text.contains(name) || s.text.contains(stem));
        if !referenced {
            out.push(Finding::new(
                HYGIENE,
                path,
                0,
                "orphan golden: no workspace source references this file".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(json: &str) -> serde::Value {
        serde_json::parse_value(json).expect("test json")
    }

    #[test]
    fn report_schema_violations_are_found() {
        let doc = parse(r#"{"workload_spec": "fpt:k=3", "orgs": [{"name": "org0"}]}"#);
        let mut out = Vec::new();
        check_report("tests/golden/reports/x.json", &doc, &mut out);
        // Missing scheduler_spec, metric_specs, aggregates + org without
        // metrics.
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn good_report_passes() {
        let doc = parse(
            r#"{"workload_spec": "w", "scheduler_spec": "s", "metric_specs": ["m"],
                "orgs": [{"name": "org0", "metrics": {"m": 1}}], "aggregates": {"m": 1}}"#,
        );
        let mut out = Vec::new();
        check_report("r.json", &doc, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn workload_and_schedule_golden_headers() {
        let mut out = Vec::new();
        check_workload_golden(
            "w.txt",
            "spec=fpt:k=3\nseed=1\norg=org0 machines=2\n",
            &mut out,
        );
        check_schedule_golden("s.txt", "scheduler=Ref\nhorizon=40\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
        check_workload_golden("w.txt", "seed=1\n", &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn bench_schema_and_cases_are_checked() {
        let mut out = Vec::new();
        let good = parse(
            r#"{"schema": "fairsched-bench-lattice/v1",
                "cases": [{"name": "c", "scheduler": "ref", "lattice": {}}],
                "timeline": [], "summary": {}}"#,
        );
        check_bench_lattice("BENCH_lattice.json", &good, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let bad = parse(r#"{"schema": "v0", "cases": []}"#);
        check_bench_lattice("BENCH_lattice.json", &bad, &mut out);
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn scale_rows_get_schema_and_size_checks() {
        let mut out = Vec::new();
        let good = parse(
            r#"{"schema": "fairsched-bench-lattice/v1",
                "cases": [{"name": "scale/fifo/k=100", "scheduler": "Fifo",
                           "k": 100, "n_jobs": 1047934, "horizon": 9999999,
                           "samples": 2, "wall_ns_min": 1, "wall_ns_mean": 2,
                           "engine_events": 3, "lattice": null}],
                "timeline": [], "summary": {}}"#,
        );
        check_bench_lattice("BENCH_lattice.json", &good, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Sub-tier job count, missing timing key, non-null lattice: all
        // reported; non-scale rows are untouched by the extra checks.
        let bad = parse(
            r#"{"schema": "fairsched-bench-lattice/v1",
                "cases": [{"name": "scale/fifo/k=100", "scheduler": "Fifo",
                           "k": 100, "n_jobs": 10, "horizon": 1,
                           "samples": 2, "wall_ns_mean": 2,
                           "engine_events": 3, "lattice": {"settles": 1}},
                          {"name": "ref/k=8", "scheduler": "Ref",
                           "lattice": {"settles": 1}}],
                "timeline": [], "summary": {}}"#,
        );
        check_bench_lattice("BENCH_lattice.json", &bad, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("wall_ns_min")), "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("tier floor")), "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("null lattice")), "{out:?}");
    }

    #[test]
    fn experiment_specs_go_through_the_real_loader() {
        let mut out = Vec::new();
        let good = parse(
            r#"{"schema": "fairsched-experiment/v1", "name": "t",
                "workloads": ["fpt:k=2"], "schedulers": ["fifo"]}"#,
        );
        check_experiment_spec("t.experiment.json", &good, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let bad = parse(
            r#"{"schema": "fairsched-experiment/v1", "name": "t",
                "workloads": ["fpt:k="], "schedulers": ["fifo"]}"#,
        );
        check_experiment_spec("t.experiment.json", &bad, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("workloads[0]"), "{out:?}");
    }

    #[test]
    fn orphans_are_reported() {
        let src = SourceFile {
            rel: "tests/t.rs".into(),
            text: "load(\"tests/golden/used.txt\")".into(),
            lexed: lex("load(\"tests/golden/used.txt\")"),
        };
        let mut out = Vec::new();
        check_orphans(
            &["tests/golden/used.txt".into(), "tests/golden/unused.txt".into()],
            &[src],
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "tests/golden/unused.txt");
    }
}
