//! `determinism`: nondeterminism sources in replay-critical library code.
//!
//! The paper's guarantee — and everything PRs 7–9 built on it — is that a
//! fair-share schedule is a *deterministic function of the trace*: journal
//! replay must reproduce the batch schedule bit-for-bit, and crash-resumed
//! experiment runs must be byte-identical. Three source-level constructs
//! silently break that contract, and this rule flags all of them in
//! non-test library code of the replay-critical crates:
//!
//! * **wall-clock reads** — `SystemTime::now()` / `Instant::now()`
//!   (including through `use ... as` aliases, resolved via the
//!   [symbol graph](crate::symbols));
//! * **unseeded RNG construction** — `thread_rng()`, `from_entropy()`,
//!   `OsRng`: entropy that replay cannot reproduce (the workspace `rand`
//!   stub deliberately ships only `SeedableRng`/`StdRng`, so any hit here
//!   means someone widened the stub without thinking about replay);
//! * **`HashMap`/`HashSet` iteration** — `.iter()` / `.keys()` /
//!   `for x in map` on values *declared* with a hash-ordered type:
//!   iteration order varies per process, so anything order-dependent
//!   (output files, tie-breaks, floating-point accumulation) forks on
//!   replay. Keyed lookup (`map[k]`, `map.get(k)`) is fine and not
//!   flagged.
//!
//! Like `time-arith` this is a declared-name heuristic, not a type
//! checker: a `HashMap` that escapes through a function boundary under
//! another name is invisible, and a `BTreeMap` locally renamed `HashMap`
//! would false-positive (nobody does this). Genuine exceptions carry
//! `lint:allow(determinism)` with a reason — e.g. the serve queue's
//! submission stamp, where wall time only pre-orders inbox files and the
//! journal sequence number assigns the replayed total order.

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, Tok};
use crate::rules::DETERMINISM;
use crate::symbols::SymbolGraph;
use crate::Finding;

/// The crate source trees held to the strict determinism tier: the crates
/// whose behavior must be a pure function of trace + seed. `crates/bench`
/// is deliberately absent — measuring wall time is its purpose.
pub const REPLAY_CRITICAL_PREFIXES: [&str; 5] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/workloads/src/",
    "crates/experiment/src/",
    "crates/serve/src/",
];

/// Whether a workspace-relative path is in the strict tier.
pub fn is_replay_critical(rel: &str) -> bool {
    REPLAY_CRITICAL_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Clock types whose `::now()` is a wall-clock read.
const CLOCK_TYPES: [&str; 2] = ["SystemTime", "Instant"];

/// Identifiers that construct or name unseeded entropy sources.
const ENTROPY_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// Method names that observe a hash collection's iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
    "into_keys",
    "into_values",
];

/// Scans one replay-critical file.
pub fn check(rel: &str, file: &LexedFile, graph: &SymbolGraph, out: &mut Vec<Finding>) {
    let hash_types = hash_type_names(rel, graph);
    let hash_names = collect_hash_names(file, &hash_types);
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else { continue };
        if toks[i].in_test || file.allowed(DETERMINISM, toks[i].line) {
            continue;
        }
        let line = toks[i].line;

        // Wall-clock reads: `Clock::now(` where `Clock` is a std::time
        // type (literally, via a full `std::time::SystemTime` path, or
        // through a `use ... as` alias).
        if is_clock_type(rel, name, graph)
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "now")
            && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct('(')))
        {
            out.push(Finding::new(
                DETERMINISM,
                rel,
                line,
                format!(
                    "wall-clock read `{name}::now()` in replay-critical library code — \
                     schedules must be functions of the trace; inject the value or \
                     lint:allow(determinism) with a reason"
                ),
            ));
            continue;
        }

        // Unseeded RNG: replay cannot reproduce entropy.
        if ENTROPY_IDENTS.contains(&name.as_str()) {
            out.push(Finding::new(
                DETERMINISM,
                rel,
                line,
                format!(
                    "unseeded randomness `{name}` in replay-critical library code — \
                     use SeedableRng with a trace-derived seed"
                ),
            ));
            continue;
        }

        // Hash-collection iteration, method form: `name.iter()` etc.
        if hash_names.contains(name.as_str())
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
        {
            if let Some(Tok::Ident(method)) = toks.get(i + 2).map(|t| &t.tok) {
                if ITER_METHODS.contains(&method.as_str())
                    && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('(')))
                {
                    out.push(Finding::new(
                        DETERMINISM,
                        rel,
                        line,
                        format!(
                            "iteration `.{method}()` over hash-ordered `{name}` — \
                             order varies per process and forks replay; use BTreeMap/\
                             BTreeSet or sort before observing order"
                        ),
                    ));
                    continue;
                }
            }
        }

        // Hash-collection iteration, for-loop form: `for pat in [&]name {`.
        if name == "in" {
            if let Some((subject, at)) = for_subject(toks, i + 1) {
                if hash_names.contains(subject.as_str())
                    && matches!(toks.get(at).map(|t| &t.tok), Some(Tok::Punct('{')))
                {
                    out.push(Finding::new(
                        DETERMINISM,
                        rel,
                        toks[i].line,
                        format!(
                            "for-loop over hash-ordered `{subject}` — order varies \
                             per process and forks replay; use BTreeMap/BTreeSet or \
                             sort before observing order"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether `name` denotes `std::time::SystemTime` / `std::time::Instant`
/// in `rel`: either the literal type name or an import alias resolving to
/// one (`use std::time::SystemTime as Clock`).
fn is_clock_type(rel: &str, name: &str, graph: &SymbolGraph) -> bool {
    if CLOCK_TYPES.contains(&name) {
        return true;
    }
    graph
        .resolve(rel, name)
        .is_some_and(|full| CLOCK_TYPES.iter().any(|c| full == format!("std::time::{c}")))
}

/// The hash-ordered type names in scope in `rel`: the canonical two plus
/// any import alias resolving to them.
fn hash_type_names(rel: &str, graph: &SymbolGraph) -> BTreeSet<String> {
    let mut names: BTreeSet<String> =
        ["HashMap", "HashSet"].iter().map(|s| s.to_string()).collect();
    if let Some(f) = graph.file(rel) {
        for (alias, full) in &f.imports {
            if full.ends_with("::HashMap") || full.ends_with("::HashSet") {
                names.insert(alias.clone());
            }
        }
    }
    names
}

/// Collects identifiers declared with a hash-ordered type in this file:
/// `name: [&][mut] HashMap<...>` (fields, params, lets with annotation)
/// and `let [mut] name = HashMap::new()/with_capacity(...)/default()`.
fn collect_hash_names(
    file: &LexedFile,
    hash_types: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else { continue };
        // Test-scope declarations stay out of the name set: a test-local
        // `m: HashMap` must not taint an identically named library
        // binding (usage sites in test scope are already exempt).
        if toks[i].in_test {
            continue;
        }
        // Annotated form: `name : [&'a][mut] Hash…`.
        if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            && !matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
        {
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                match &t.tok {
                    Tok::Punct('&') | Tok::Lifetime => j += 1,
                    Tok::Ident(m) if m == "mut" => j += 1,
                    _ => break,
                }
            }
            if let Some(Tok::Ident(ty)) = toks.get(j).map(|t| &t.tok) {
                if hash_types.contains(ty.as_str()) {
                    names.insert(name.clone());
                }
            }
        }
        // Constructor form: `let [mut] name = Hash…::… (`.
        if name == "let" {
            let mut j = i + 1;
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
                j += 1;
            }
            let Some(Tok::Ident(bound)) = toks.get(j).map(|t| &t.tok) else { continue };
            if !matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('='))) {
                continue;
            }
            if let Some(Tok::Ident(ty)) = toks.get(j + 2).map(|t| &t.tok) {
                if hash_types.contains(ty.as_str()) {
                    names.insert(bound.clone());
                }
            }
        }
    }
    names
}

/// Resolves the subject of `for pat in <subject> {`: skips `&`/`mut`,
/// takes the identifier, and follows `.field` chains to the final name.
/// Returns `(final_name, index_after)`. A trailing `(` (method call) at
/// the chain end is the caller's problem — it checks for `{` and so never
/// fires on `for x in map.keys() {` (the method form already flagged it).
fn for_subject(toks: &[crate::lexer::Token], mut i: usize) -> Option<(String, usize)> {
    while let Some(t) = toks.get(i) {
        match &t.tok {
            Tok::Punct('&') => i += 1,
            Tok::Ident(m) if m == "mut" => i += 1,
            _ => break,
        }
    }
    let Some(Tok::Ident(first)) = toks.get(i).map(|t| &t.tok) else { return None };
    let mut name = first.clone();
    while matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.'))) {
        match toks.get(i + 2).map(|t| &t.tok) {
            Some(Tok::Ident(n)) => {
                name = n.clone();
                i += 2;
            }
            _ => break,
        }
    }
    Some((name, i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::SourceFile;

    fn run_at(rel: &str, src: &str) -> Vec<Finding> {
        let sources = vec![SourceFile {
            rel: rel.to_string(),
            text: src.to_string(),
            lexed: lex(src),
        }];
        let graph = SymbolGraph::build(&sources);
        let mut out = Vec::new();
        check(rel, &sources[0].lexed, &graph, &mut out);
        out
    }

    fn run(src: &str) -> Vec<Finding> {
        run_at("crates/sim/src/lib.rs", src)
    }

    #[test]
    fn flags_clock_reads_including_aliases() {
        let src = r#"
            use std::time::{SystemTime, Instant as Tick};
            fn stamp() -> u128 {
                let a = SystemTime::now();
                let b = Tick::now();
                let c = std::time::Instant::now();
                0
            }
        "#;
        let found = run(src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("wall-clock")));
    }

    #[test]
    fn flags_unseeded_rng() {
        let src =
            "fn f() { let mut rng = thread_rng(); let r2 = StdRng::from_entropy(); }";
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("unseeded")));
    }

    #[test]
    fn flags_hash_iteration_but_not_keyed_lookup() {
        let src = r#"
            use std::collections::HashMap;
            fn f(hits: &HashMap<String, u64>) -> u64 {
                let mut total = 0;
                for (_k, v) in hits {
                    total += v;
                }
                total + hits.values().sum::<u64>() + hits.get("x").copied().unwrap_or(0)
            }
        "#;
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn hash_alias_and_constructor_bindings_are_tracked() {
        let src = r#"
            use std::collections::HashMap as Map;
            fn f(seen: Map<u64, u64>) {
                let mut local = Map::new();
                local.insert(1, 2);
                for k in seen.keys() {
                    let _ = k;
                }
                local.drain();
            }
        "#;
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn btree_collections_tests_and_allows_are_exempt() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f(m: &BTreeMap<u64, u64>) -> Vec<u64> { m.keys().copied().collect() }
            fn g() -> u128 {
                // lint:allow(determinism) inbox pre-order only; journal seq is the real order
                let t = std::time::SystemTime::now();
                0
            }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn t(m: &HashMap<u64, u64>) { for _ in m.iter() {} }
            }
        "#;
        let found = run(src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn strict_tier_is_the_five_replay_critical_crates() {
        assert!(is_replay_critical("crates/core/src/fairness.rs"));
        assert!(is_replay_critical("crates/serve/src/queue.rs"));
        assert!(!is_replay_critical("crates/bench/src/runner.rs"));
        assert!(!is_replay_critical("crates/analyze/src/lib.rs"));
        assert!(!is_replay_critical("crates/core/tests/x.rs"));
    }
}
