//! `time-arith`: raw `*`/`+` on `Time`/`Frac`-typed values.
//!
//! `Time` is a bare `u64`, and the workspace's worst historical bug class
//! is narrow arithmetic on it (`horizon * i` wrapping in release builds —
//! see `tests/overflow_guard.rs`). Library code must route `Time`
//! products and `Time + Time` sums through `fairsched_core::checked_time`
//! or widen explicitly (`x as u128 * y as u128`).
//!
//! This is a token-level *heuristic*, not a type checker:
//!
//! 1. A first pass over every library file collects identifiers declared
//!    with `: Time` or `: Frac` (struct fields, fn params, let bindings —
//!    they all lex as `name : Time`).
//! 2. A second pass flags `a * b` where either chain-final operand
//!    identifier is such a name, and `a + b` where **both** are (sums
//!    with literals are overwhelmingly clock steps; products are the
//!    dangerous shape even with one literal).
//!
//! An operand immediately widened with `as u128` / `as i128` / `as f64` /
//! `as Util` is approved; `as u64` is *not* (it stays narrow). Method
//! calls as operands are skipped (their type is unknowable here), as is
//! `checked_time.rs` itself — it is the approved vocabulary.

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, Tok, Token};
use crate::rules::TIME_ARITH;
use crate::Finding;

/// Casting to one of these immediately after an operand counts as the
/// approved widening idiom. (`Util` is the workspace's `i128` alias.)
const WIDE_TYPES: [&str; 4] = ["u128", "i128", "f64", "Util"];

/// The time-like type names whose declarations seed the identifier set.
const TIME_TYPES: [&str; 2] = ["Time", "Frac"];

/// Pass 1: collect identifiers declared `name: Time` / `name: &Frac` /
/// `name: mut Time` across a set of lexed files.
pub fn collect_time_names(files: &[(&str, &LexedFile)]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (_, file) in files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let Tok::Ident(name) = &toks[i].tok else { continue };
            if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
                continue;
            }
            // `a::b` paths lex as `a : : b` — skip those.
            let mut j = i + 2;
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(':'))) {
                continue;
            }
            // Skip reference/mut/lifetime noise between `:` and the type.
            while let Some(t) = toks.get(j) {
                match &t.tok {
                    Tok::Punct('&') | Tok::Lifetime => j += 1,
                    Tok::Ident(m) if m == "mut" => j += 1,
                    _ => break,
                }
            }
            if let Some(Tok::Ident(ty)) = toks.get(j).map(|t| &t.tok) {
                if TIME_TYPES.contains(&ty.as_str()) {
                    names.insert(name.clone());
                }
            }
        }
    }
    names
}

/// Pass 2: scan one library file against the collected name set.
pub fn check(
    rel_path: &str,
    file: &LexedFile,
    time_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if rel_path.ends_with("core/src/checked_time.rs") {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let op = match &toks[i].tok {
            Tok::Punct(c @ ('*' | '+')) => *c,
            _ => continue,
        };
        if toks[i].in_test || file.allowed(TIME_ARITH, toks[i].line) {
            continue;
        }
        // `*=` / `+=` compound assignment and `**`-style noise: skip.
        if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('=' | '*'))) {
            continue;
        }
        // Left operand must be a value token right before the operator
        // (anything else is deref, glob import, generics, `&x + …`, ...).
        let Some(prev) = (i > 0).then(|| &toks[i - 1]) else { continue };
        let left = operand_name(prev);
        if left.is_none() && !matches!(prev.tok, Tok::Num(_)) {
            continue;
        }
        let left_widened = left.is_some()
            && i >= 3
            && matches!(&toks[i - 2].tok, Tok::Ident(a) if a == "as")
            && matches!(&toks[i - 1].tok, Tok::Ident(ty) if WIDE_TYPES.contains(&ty.as_str()));
        // After a cast the adjacent ident is the *type*; the value name
        // sits before `as`.
        let left_name = if left_widened { None } else { left };

        // Right operand: resolve `recv.field.final` chains to the final
        // identifier; bail on calls and non-value tokens.
        let Some((right_name, after)) = right_operand(toks, i + 1) else { continue };
        if matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue; // method/function call operand: type unknown.
        }
        let right_widened = matches!(
            toks.get(after).map(|t| &t.tok), Some(Tok::Ident(a)) if a == "as")
            && matches!(
                toks.get(after + 1).map(|t| &t.tok),
                Some(Tok::Ident(ty)) if WIDE_TYPES.contains(&ty.as_str()));
        let right_name = if right_widened { None } else { right_name };

        let is_time =
            |n: &Option<String>| n.as_deref().is_some_and(|n| time_names.contains(n));
        let (left_time, right_time) = (is_time(&left_name), is_time(&right_name));
        let hit = match op {
            '*' => left_time || right_time,
            _ => left_time && right_time,
        };
        if hit {
            let name = left_name.filter(|_| left_time).or(right_name).unwrap_or_default();
            out.push(Finding::new(
                TIME_ARITH,
                rel_path,
                toks[i].line,
                format!(
                    "raw `{op}` on `Time`/`Frac`-typed `{name}` — use \
                     fairsched_core::checked_time or widen with `as u128`"
                ),
            ));
        }
    }
}

/// The identifier named by a single operand token, if any.
fn operand_name(t: &Token) -> Option<String> {
    match &t.tok {
        Tok::Ident(n) => Some(n.clone()),
        _ => None,
    }
}

/// Resolves the token(s) starting at `start` as a right operand. Returns
/// `(chain_final_ident, index_after_operand)`; numbers yield `(None, _)`.
fn right_operand(toks: &[Token], start: usize) -> Option<(Option<String>, usize)> {
    match toks.get(start).map(|t| &t.tok) {
        Some(Tok::Num(_)) => Some((None, start + 1)),
        Some(Tok::Ident(first)) => {
            let mut name = first.clone();
            let mut j = start;
            while matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('.'))) {
                match toks.get(j + 2).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => {
                        name = n.clone();
                        j += 2;
                    }
                    _ => break,
                }
            }
            Some((Some(name), j + 1))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let file = lex(src);
        let names = collect_time_names(&[("lib.rs", &file)]);
        let mut out = Vec::new();
        check("lib.rs", &file, &names, &mut out);
        out
    }

    #[test]
    fn flags_raw_time_products_and_sums() {
        let src = r#"
            pub struct J { pub start: Time, pub proc_time: Time }
            fn f(horizon: Time, i: u64) -> Time { horizon * i }
            fn g(j: &J) -> Time { j.start + j.proc_time }
            fn h(horizon: Time) -> Time { 2 * horizon }
        "#;
        let found = run(src);
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn widening_and_helpers_are_approved() {
        let src = r#"
            fn f(horizon: Time, i: u64) -> u128 { horizon as u128 * i as u128 }
            fn g(start: Time, d: Time) -> Time { checked_time::completion(start, d) }
            fn h(x: Time) -> f64 { x as f64 * 0.5 }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn non_time_math_clock_steps_and_tests_are_exempt() {
        let src = r#"
            fn f(a: usize, b: usize) -> usize { a * b + a }
            fn step(t: Time) -> Time { t + 1 }
            fn call(h: Time) -> Time { h * len() }
            #[cfg(test)]
            mod tests {
                fn t(h: Time) -> Time { h * 2 }
            }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn inline_allow_and_helper_file_are_exempt() {
        let src = "fn f(h: Time, i: u64) -> Time {\n    // lint:allow(time-arith) bounded by caller\n    h * i\n}\n";
        assert!(run(src).is_empty());
        let file = lex("fn f(h: Time, i: u64) -> Time { h * i }");
        let names = collect_time_names(&[("x", &file)]);
        let mut out = Vec::new();
        check("crates/core/src/checked_time.rs", &file, &names, &mut out);
        assert!(out.is_empty());
    }
}
