//! `durability`: raw filesystem writes in library code must route through
//! `fairsched_core::journal`.
//!
//! The workspace's durability story (PRs 7–9) is scratch-write +
//! commit-rename: a reader never observes a torn file, and crash replay
//! can trust everything it finds on disk. A raw `std::fs::write` (or
//! `File::create` / `OpenOptions` open-for-write) in library code
//! sidesteps that discipline — exactly the bug class this PR fixes in
//! `crates/bench/src/runner.rs` and `crates/workloads/src/spec.rs`.
//!
//! Flagged call shapes in non-test library code:
//!
//! * `fs::write(...)` / `std::fs::write(...)` — including through
//!   aliases (`use std::fs as filesystem`, `use std::fs::write as w`),
//!   resolved via the [symbol graph](crate::symbols);
//! * `File::create(...)` / `File::create_new(...)`;
//! * `OpenOptions::new(...)` — any options-builder open is assumed to be
//!   a write (read-only opens use `File::open`).
//!
//! `crates/core/src/journal.rs` is the approved vocabulary and is exempt
//! wholesale; everything else either uses the journal helpers
//! (`atomic_write` / `write_scratch` + `commit_scratch` / `append_line`)
//! or carries `lint:allow(durability)` with a reason.

use crate::lexer::{LexedFile, Tok, Token};
use crate::rules::DURABILITY;
use crate::symbols::SymbolGraph;
use crate::Finding;

/// Full call paths that constitute a raw write.
const RAW_WRITE_PATHS: [&str; 3] =
    ["std::fs::write", "std::fs::File::create", "std::fs::OpenOptions::new"];

/// Scans one library file. `rel` = `crates/core/src/journal.rs` is exempt
/// (it is the approved vocabulary these findings point at).
pub fn check(rel: &str, file: &LexedFile, graph: &SymbolGraph, out: &mut Vec<Finding>) {
    if rel == "crates/core/src/journal.rs" {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        // Call sites only: `ident (`.
        let Tok::Ident(_) = &toks[i].tok else { continue };
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        if toks[i].in_test || file.allowed(DURABILITY, toks[i].line) {
            continue;
        }
        let path = call_path(toks, i);
        let Some(full) = resolve_path(rel, &path, graph) else { continue };
        if full == "std::fs::File::create_new" || RAW_WRITE_PATHS.contains(&full.as_str())
        {
            let spelled = path.join("::");
            out.push(Finding::new(
                DURABILITY,
                rel,
                toks[i].line,
                format!(
                    "raw write `{spelled}(…)` resolves to `{full}` — library code must \
                     route writes through fairsched_core::journal (atomic_write, \
                     write_scratch+commit_scratch, append_line) or carry \
                     lint:allow(durability) with a reason"
                ),
            ));
        }
    }
}

/// Reconstructs the `a::b::c` path whose final segment is the identifier
/// at `end` (walking `:: ident` pairs backwards).
fn call_path(toks: &[Token], end: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let Tok::Ident(last) = &toks[end].tok else { return segs };
    segs.push(last.clone());
    let mut i = end;
    while i >= 2
        && matches!(toks[i - 1].tok, Tok::Punct(':'))
        && matches!(toks[i - 2].tok, Tok::Punct(':'))
    {
        // Generic turbofish (`Vec::<u8>::new`) never occurs on the fs
        // paths this rule targets; a plain ident is required.
        match (i >= 3).then(|| &toks[i - 3].tok) {
            Some(Tok::Ident(seg)) => {
                segs.push(seg.clone());
                i -= 3;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Resolves a spelled path to its full form using `rel`'s imports: the
/// first segment is looked up in the file's `use` map (`fs` →
/// `std::fs`), and the remaining segments are appended. An unimported
/// first segment is kept as spelled (covers the literal `std::fs::write`
/// spelling).
fn resolve_path(rel: &str, path: &[String], graph: &SymbolGraph) -> Option<String> {
    let first = path.first()?;
    let base = match graph.resolve(rel, first) {
        Some(full) => full.to_string(),
        None => first.clone(),
    };
    let mut full = base;
    for seg in &path[1..] {
        full.push_str("::");
        full.push_str(seg);
    }
    Some(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::SourceFile;

    fn run_at(rel: &str, src: &str) -> Vec<Finding> {
        let sources = vec![SourceFile {
            rel: rel.to_string(),
            text: src.to_string(),
            lexed: lex(src),
        }];
        let graph = SymbolGraph::build(&sources);
        let mut out = Vec::new();
        check(rel, &sources[0].lexed, &graph, &mut out);
        out
    }

    fn run(src: &str) -> Vec<Finding> {
        run_at("crates/bench/src/runner.rs", src)
    }

    #[test]
    fn flags_raw_writes_in_all_spellings() {
        let src = r#"
            use std::fs;
            use std::fs::File;
            fn f(p: &std::path::Path, text: &str) {
                fs::write(p, text).unwrap();
                std::fs::write(p, text).unwrap();
                let _ = File::create(p);
                let _ = std::fs::OpenOptions::new().append(true).open(p);
            }
        "#;
        let found = run(src);
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("fairsched_core::journal")));
    }

    #[test]
    fn aliased_write_is_resolved_through_the_symbol_graph() {
        let src = "use std::fs::write as raw;\nfn f(p: &std::path::Path) { raw(p, \"x\").unwrap(); }\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("std::fs::write"));
    }

    #[test]
    fn reads_journal_helpers_tests_and_allows_are_exempt() {
        let src = r#"
            use fairsched_core::journal::atomic_write;
            use std::fs::File;
            fn f(p: &std::path::Path) {
                atomic_write(p, "x").unwrap();
                let _ = File::open(p);
                let _ = std::fs::read_to_string(p);
                // lint:allow(durability) lock file is advisory, torn is fine
                std::fs::write(p, "lock").unwrap();
            }
            #[cfg(test)]
            mod tests {
                fn t(p: &std::path::Path) { std::fs::write(p, "fixture").unwrap(); }
            }
        "#;
        let found = run(src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn journal_rs_itself_is_exempt() {
        let src = "fn f(p: &std::path::Path) { std::fs::write(p, \"x\").unwrap(); }";
        let found = run_at("crates/core/src/journal.rs", src);
        assert!(found.is_empty(), "{found:?}");
    }
}
