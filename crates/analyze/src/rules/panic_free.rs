//! `panic-free`: no panic sites in non-test library code.
//!
//! The library crates (`core`, `sim`, `workloads`, `bench`) promise typed
//! errors — PR 6 converted the last engine-contract panics in the
//! `simulate*` wrappers to [`SimError`] — so a `panic!`, `.unwrap()`,
//! `.expect(...)`, `unreachable!`, `todo!`, or `unimplemented!` in
//! library code is either a bug or a deliberate, *documented* invariant.
//! Deliberate sites carry an inline `lint:allow(panic-free)` comment or a
//! `lint_allow.toml` entry with a justification; everything else counts
//! against the `panic-free` ratchet, which may only go down.
//!
//! Test code (`#[cfg(test)]`, `#[test]`, `mod tests`) is exempt: tests
//! *should* unwrap.

use crate::lexer::{LexedFile, Tok};
use crate::rules::PANIC_FREE;
use crate::Finding;

/// Panic-taking macros matched as `name` followed by `!`.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Panic-taking methods matched as `.name(`.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Scans one library file.
pub fn check(rel_path: &str, file: &LexedFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || file.allowed(PANIC_FREE, t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let next = toks.get(i + 1).map(|n| &n.tok);
        if PANIC_MACROS.contains(&name.as_str()) && matches!(next, Some(Tok::Punct('!')))
        {
            out.push(Finding::new(
                PANIC_FREE,
                rel_path,
                t.line,
                format!("`{name}!` in non-test library code"),
            ));
            continue;
        }
        if PANIC_METHODS.contains(&name.as_str())
            && matches!(next, Some(Tok::Punct('(')))
            && i > 0
            && matches!(&toks[i - 1].tok, Tok::Punct('.'))
        {
            out.push(Finding::new(
                PANIC_FREE,
                rel_path,
                t.line,
                format!("`.{name}(...)` in non-test library code"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check("lib.rs", &lex(src), &mut out);
        out
    }

    #[test]
    fn flags_macros_and_methods() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                if x.is_none() { panic!("boom"); }
                x.unwrap() + y.expect("set")
            }
            fn g() { unreachable!() }
        "#;
        let msgs: Vec<String> = run(src).into_iter().map(|f| f.message).collect();
        assert_eq!(msgs.len(), 4, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("panic!")));
        assert!(msgs.iter().any(|m| m.contains(".unwrap(")));
        assert!(msgs.iter().any(|m| m.contains(".expect(")));
        assert!(msgs.iter().any(|m| m.contains("unreachable!")));
    }

    #[test]
    fn ignores_tests_strings_comments_and_lookalikes() {
        let src = r#"
            // panic! here is prose
            fn f() -> u32 { x.unwrap_or(0) + s.parse().unwrap_or_default() }
            fn g() { let msg = "call panic!() maybe"; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); panic!("fine in tests"); }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn inline_allow_suppresses() {
        let src = "fn f() {\n    // lint:allow(panic-free) documented invariant\n    x.unwrap();\n    y.unwrap();\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }
}
