//! `schema-version`: every on-disk format version must be registered and
//! provably decodable.
//!
//! The workspace persists a growing family of versioned formats —
//! session snapshots, experiment cells and reports, serve config and
//! snapshots, the bench lattice, the analyzer's own report — each tagged
//! with a `fairsched-<name>/vN` literal. Nothing stopped a format from
//! forking silently: bump the string, forget the migration, and old
//! journals stop decoding with no test to notice.
//!
//! This rule closes the loop through the committed
//! `schema_registry.toml` ([`SchemaRegistry`]):
//!
//! * every schema-shaped literal in non-test code (and in golden/bench
//!   JSON artifacts) must have a `[[schema]]` entry, or carry
//!   `lint:allow(schema-version)`;
//! * every entry's `decode_test` pointer (`file.rs::test_fn`) must name
//!   a real `#[test]` function — verified against the
//!   [symbol graph](crate::symbols), so a renamed test breaks the lint,
//!   not the archaeology;
//! * every entry must still be *used*: an id no literal anywhere mentions
//!   (test usage counts) is a stale registration;
//! * ids must match the `fairsched-<name>/vN` shape on both sides.
//!
//! Retired versions stay registered with a `note` and a decode test that
//! proves the current decoder *rejects* them (e.g.
//! `fairsched-experiment/v2`'s negative fixture) — the registry records
//! format history, not just the live set.

use std::collections::BTreeSet;

use crate::config::SchemaRegistry;
use crate::rules::spec_literals::Literal;
use crate::rules::SCHEMA_VERSION;
use crate::symbols::SymbolGraph;
use crate::Finding;

/// The committed registry's workspace-relative path.
pub const REGISTRY_PATH: &str = "schema_registry.toml";

/// Whether a string is a schema version id: `fairsched-<name>/vN` with a
/// kebab-case name and a decimal version, full-string.
pub fn is_schema_id(text: &str) -> bool {
    let Some(rest) = text.strip_prefix("fairsched-") else { return false };
    let Some((name, version)) = rest.split_once("/v") else { return false };
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && !name.starts_with('-')
        && !name.ends_with('-')
        && !version.is_empty()
        && version.chars().all(|c| c.is_ascii_digit())
}

/// Validates the literal pool and the registry against each other.
/// `registry` is `None` when `schema_registry.toml` is missing, which
/// turns every non-test schema literal into a finding.
pub fn check(
    registry: Option<&SchemaRegistry>,
    literals: &[Literal],
    graph: &SymbolGraph,
    out: &mut Vec<Finding>,
) {
    // Pass 1: literals → registration requirement; collect all usage
    // (test usage keeps an entry alive — negative fixtures are usage).
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for lit in literals {
        if !is_schema_id(&lit.text) {
            continue;
        }
        used.insert(lit.text.as_str());
        if lit.in_test || lit.allowed {
            continue;
        }
        match registry {
            None => out.push(Finding::new(
                SCHEMA_VERSION,
                &lit.path,
                lit.line,
                format!(
                    "schema version {:?} used but {REGISTRY_PATH} is missing — commit \
                     the registry with a [[schema]] entry and a decode test",
                    lit.text
                ),
            )),
            Some(reg) if reg.get(&lit.text).is_none() => out.push(Finding::new(
                SCHEMA_VERSION,
                &lit.path,
                lit.line,
                format!(
                    "schema version {:?} is not registered in {REGISTRY_PATH} — add a \
                     [[schema]] entry with a decode_test proving the format still reads",
                    lit.text
                ),
            )),
            Some(_) => {}
        }
    }

    // Pass 2: registry entries → pointer validity and staleness.
    let Some(reg) = registry else { return };
    for entry in &reg.entries {
        if !is_schema_id(&entry.id) {
            out.push(Finding::new(
                SCHEMA_VERSION,
                REGISTRY_PATH,
                entry.line,
                format!(
                    "registered id {:?} does not match the fairsched-<name>/vN shape",
                    entry.id
                ),
            ));
        }
        // decode_test = "path/to/file.rs::test_fn" (parser guarantees a
        // `::` separator; split on the last one).
        let (file, test_fn) = match entry.decode_test.rsplit_once("::") {
            Some(parts) => parts,
            None => continue,
        };
        if graph.file(file).is_none() {
            out.push(Finding::new(
                SCHEMA_VERSION,
                REGISTRY_PATH,
                entry.line,
                format!(
                    "decode_test for {:?} points at {file:?}, which is not a workspace \
                     source file",
                    entry.id
                ),
            ));
        } else if !graph.has_test_fn(file, test_fn) {
            out.push(Finding::new(
                SCHEMA_VERSION,
                REGISTRY_PATH,
                entry.line,
                format!(
                    "decode_test for {:?} names {test_fn:?} in {file:?}, but no #[test] \
                     fn with that name exists there",
                    entry.id
                ),
            ));
        }
        if !used.contains(entry.id.as_str()) {
            out.push(Finding::new(
                SCHEMA_VERSION,
                REGISTRY_PATH,
                entry.line,
                format!(
                    "registered schema {:?} no longer appears anywhere in the tree — \
                     delete the entry or keep the literal in the decode test",
                    entry.id
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::SourceFile;

    fn source(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), text: src.to_string(), lexed: lex(src) }
    }

    fn lit(text: &str, in_test: bool) -> Literal {
        Literal {
            text: text.to_string(),
            path: "crates/sim/src/stepper.rs".into(),
            line: 7,
            allowed: false,
            in_test,
        }
    }

    const DECODER: &str = r#"
        pub const SCHEMA: &str = "fairsched-session-snapshot/v1";
        #[cfg(test)]
        mod tests {
            #[test]
            fn snapshot_round_trips() {}
        }
    "#;

    fn graph() -> SymbolGraph {
        SymbolGraph::build(&[source("crates/sim/src/stepper.rs", DECODER)])
    }

    fn registry(text: &str) -> SchemaRegistry {
        SchemaRegistry::parse(REGISTRY_PATH, text).unwrap()
    }

    #[test]
    fn schema_id_shape() {
        assert!(is_schema_id("fairsched-session-snapshot/v1"));
        assert!(is_schema_id("fairsched-experiment/v12"));
        assert!(!is_schema_id("fairsched-/v1"));
        assert!(!is_schema_id("fairsched-x/v"));
        assert!(!is_schema_id("fairsched-X/v1"));
        assert!(!is_schema_id("other-thing/v1"));
        assert!(!is_schema_id("fairsched-x/v1 trailing"));
    }

    #[test]
    fn registered_literal_with_live_test_is_clean() {
        let reg = registry(
            "[[schema]]\nid = \"fairsched-session-snapshot/v1\"\n\
             decode_test = \"crates/sim/src/stepper.rs::snapshot_round_trips\"\n",
        );
        let mut out = Vec::new();
        check(
            Some(&reg),
            &[lit("fairsched-session-snapshot/v1", false)],
            &graph(),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unregistered_literal_and_missing_registry_are_findings() {
        let mut out = Vec::new();
        check(None, &[lit("fairsched-session-snapshot/v1", false)], &graph(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("missing"));

        let reg = registry("");
        out.clear();
        check(
            Some(&reg),
            &[lit("fairsched-session-snapshot/v1", false)],
            &graph(),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("not registered"));
    }

    #[test]
    fn test_scope_and_allowed_literals_are_exempt_but_count_as_usage() {
        let reg = registry(
            "[[schema]]\nid = \"fairsched-session-snapshot/v1\"\n\
             decode_test = \"crates/sim/src/stepper.rs::snapshot_round_trips\"\n",
        );
        let mut out = Vec::new();
        // Only a test-scope literal mentions the id: no unregistered
        // finding (test scope) and no stale finding (usage counted).
        check(
            Some(&reg),
            &[lit("fairsched-session-snapshot/v1", true)],
            &graph(),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");

        let mut allowed = lit("fairsched-rogue/v1", false);
        allowed.allowed = true;
        out.clear();
        check(
            Some(&reg),
            &[allowed, lit("fairsched-session-snapshot/v1", false)],
            &graph(),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn broken_pointers_and_stale_entries_are_findings() {
        let reg = registry(
            "[[schema]]\nid = \"fairsched-session-snapshot/v1\"\n\
             decode_test = \"crates/sim/src/stepper.rs::renamed_away\"\n\
             [[schema]]\nid = \"fairsched-gone/v1\"\n\
             decode_test = \"crates/nope/src/lib.rs::whatever\"\n",
        );
        let mut out = Vec::new();
        check(
            Some(&reg),
            &[lit("fairsched-session-snapshot/v1", false)],
            &graph(),
            &mut out,
        );
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("no #[test] fn")));
        assert!(msgs.iter().any(|m| m.contains("not a workspace source file")));
        assert!(msgs.iter().any(|m| m.contains("no longer appears")));
        assert!(out.iter().all(|f| f.path == REGISTRY_PATH));
    }

    #[test]
    fn non_test_library_fn_does_not_satisfy_decode_test() {
        let src = "pub fn decode_it() {}\n";
        let g = SymbolGraph::build(&[source("crates/sim/src/stepper.rs", src)]);
        let reg = registry(
            "[[schema]]\nid = \"fairsched-session-snapshot/v1\"\n\
             decode_test = \"crates/sim/src/stepper.rs::decode_it\"\n",
        );
        let mut out = Vec::new();
        check(Some(&reg), &[lit("fairsched-session-snapshot/v1", false)], &g, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no #[test] fn"));
    }
}
