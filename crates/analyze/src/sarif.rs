//! Minimal SARIF 2.1.0 rendering of an analysis [`Outcome`], so CI can
//! upload the run and annotate PRs with inline findings.
//!
//! Only the subset GitHub code scanning actually consumes is emitted:
//! `runs[0].tool.driver` with per-rule metadata, and one `result` per
//! finding with `ruleId`, `level`, `message.text`, and a physical
//! location. Findings of a rule that is **over** its committed ratchet
//! ceiling render at `error` level (the regression CI fails on); findings
//! within the ceiling — known debt being burned down — render as `note`.

use crate::rules::{describe, ALL_RULES};
use crate::Outcome;
use serde::Value;

/// SARIF schema/version constants.
const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the outcome as a SARIF 2.1.0 document.
pub fn render(outcome: &Outcome) -> Value {
    let rules: Vec<Value> = ALL_RULES
        .iter()
        .map(|rule| {
            Value::Object(vec![
                ("id".into(), Value::String((*rule).to_string())),
                (
                    "shortDescription".into(),
                    Value::Object(vec![(
                        "text".into(),
                        Value::String(describe(rule).to_string()),
                    )]),
                ),
            ])
        })
        .collect();

    let results: Vec<Value> = outcome
        .findings
        .iter()
        .map(|f| {
            let over = outcome.totals.get(&f.rule).copied().unwrap_or(0)
                > outcome.ratchet.get(&f.rule).copied().unwrap_or(0);
            let level = if over { "error" } else { "note" };
            let mut region = Vec::new();
            // SARIF regions are 1-based; line 0 (JSON artifacts) means
            // "whole file" and omits the region entirely.
            if f.line > 0 {
                region.push((
                    "region".into(),
                    Value::Object(vec![(
                        "startLine".into(),
                        Value::Number(f.line.to_string()),
                    )]),
                ));
            }
            let mut physical = vec![(
                "artifactLocation".into(),
                Value::Object(vec![
                    ("uri".into(), Value::String(f.path.clone())),
                    ("uriBaseId".into(), Value::String("SRCROOT".into())),
                ]),
            )];
            physical.extend(region);
            Value::Object(vec![
                ("ruleId".into(), Value::String(f.rule.clone())),
                ("level".into(), Value::String(level.into())),
                (
                    "message".into(),
                    Value::Object(vec![(
                        "text".into(),
                        Value::String(f.message.clone()),
                    )]),
                ),
                (
                    "locations".into(),
                    Value::Array(vec![Value::Object(vec![(
                        "physicalLocation".into(),
                        Value::Object(physical),
                    )])]),
                ),
            ])
        })
        .collect();

    let driver = Value::Object(vec![
        ("name".into(), Value::String("fairsched-analyze".into())),
        ("informationUri".into(), Value::String("docs/STATIC_ANALYSIS.md".into())),
        ("rules".into(), Value::Array(rules)),
    ]);
    let run = Value::Object(vec![
        ("tool".into(), Value::Object(vec![("driver".into(), driver)])),
        (
            "originalUriBaseIds".into(),
            Value::Object(vec![(
                "SRCROOT".into(),
                Value::Object(vec![("uri".into(), Value::String("file:///".into()))]),
            )]),
        ),
        ("results".into(), Value::Array(results)),
    ]);
    Value::Object(vec![
        ("$schema".into(), Value::String(SARIF_SCHEMA.into())),
        ("version".into(), Value::String(SARIF_VERSION.into())),
        ("runs".into(), Value::Array(vec![run])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn outcome() -> Outcome {
        let mut o = Outcome {
            findings: vec![
                Finding::new(
                    "determinism",
                    "crates/sim/src/lib.rs",
                    12,
                    "clock read".into(),
                ),
                Finding::new("panic-free", "crates/core/src/x.rs", 3, "unwrap".into()),
            ],
            ..Outcome::default()
        };
        o.totals.insert("determinism".into(), 1);
        o.ratchet.insert("determinism".into(), 0); // over: error level
        o.totals.insert("panic-free".into(), 1);
        o.ratchet.insert("panic-free".into(), 5); // within: note level
        o
    }

    #[test]
    fn sarif_document_shape_and_levels() {
        let doc = render(&outcome());
        let text = doc.to_json_pretty();
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("\"name\": \"fairsched-analyze\""));
        // All seven rules are described even when only two fire.
        for rule in ALL_RULES {
            assert!(text.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(text.contains("\"error\""), "over-ratchet finding must be error level");
        assert!(text.contains("\"note\""), "within-ratchet finding must be note level");
        assert!(text.contains("\"startLine\": 12"));
        assert!(text.contains("crates/sim/src/lib.rs"));
    }

    #[test]
    fn line_zero_findings_omit_the_region() {
        let mut o = Outcome {
            findings: vec![Finding::new(
                "hygiene",
                "BENCH_lattice.json",
                0,
                "bad schema".into(),
            )],
            ..Outcome::default()
        };
        o.totals.insert("hygiene".into(), 1);
        let text = render(&o).to_json_pretty();
        assert!(!text.contains("startLine"));
        assert!(text.contains("BENCH_lattice.json"));
    }
}
