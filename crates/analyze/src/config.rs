//! The committed lint configuration: `lint_allow.toml` (suppressions with
//! mandatory justifications) and `lint_ratchet.toml` (per-rule violation
//! ceilings that may only decrease).
//!
//! The build environment has no crates.io access, so a `toml` dependency
//! is not an option; [`toml_lite`] parses exactly the subset these two
//! files use — `[section]`, `[[array-of-table]]`, `key = "string"`,
//! `key = integer`, and `#` comments — and rejects everything else, so a
//! typo in a config file is a loud error, not a silently ignored entry.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation failure in a lint config file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The file the error is about.
    pub file: String,
    /// 1-based line (0 when the error is not line-anchored).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.file, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// Minimal TOML-subset parsing: just enough for the two lint files.
pub mod toml_lite {
    use super::ConfigError;

    /// A parsed value: the subset has only strings and integers.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Value {
        /// A quoted string.
        Str(String),
        /// A non-negative integer.
        Int(u64),
    }

    /// One `[section]` or `[[section]]` with its `key = value` pairs.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Table {
        /// The bracketed name.
        pub name: String,
        /// Whether it was declared `[[name]]` (array-of-tables entry).
        pub array: bool,
        /// The section's key/value pairs in file order.
        pub entries: Vec<(String, Value)>,
        /// 1-based line of the section header.
        pub line: u32,
    }

    /// Parses the TOML subset. Top-level keys before any section header
    /// are rejected (the lint files never use them).
    pub fn parse(file_label: &str, text: &str) -> Result<Vec<Table>, ConfigError> {
        let err = |line: u32, message: String| ConfigError {
            file: file_label.to_string(),
            line,
            message,
        };
        let mut tables: Vec<Table> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| err(lineno, "unterminated [[section]]".into()))?;
                tables.push(Table {
                    name: name.trim().to_string(),
                    array: true,
                    entries: Vec::new(),
                    line: lineno,
                });
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated [section]".into()))?;
                tables.push(Table {
                    name: name.trim().to_string(),
                    array: false,
                    entries: Vec::new(),
                    line: lineno,
                });
            } else {
                let (key, value) = line.split_once('=').ok_or_else(|| {
                    err(lineno, format!("expected key = value, got {line:?}"))
                })?;
                let value = parse_value(value.trim()).map_err(|m| {
                    err(lineno, format!("bad value for {}: {m}", key.trim()))
                })?;
                let table = tables.last_mut().ok_or_else(|| {
                    err(lineno, "key = value before any [section]".into())
                })?;
                table.entries.push((key.trim().to_string(), value));
            }
        }
        Ok(tables)
    }

    fn parse_value(text: &str) -> Result<Value, String> {
        if let Some(rest) = text.strip_prefix('"') {
            let inner = rest
                .strip_suffix('"')
                .ok_or_else(|| "unterminated string".to_string())?;
            if inner.contains('"') || inner.contains('\\') {
                return Err("escapes and embedded quotes are outside the subset".into());
            }
            return Ok(Value::Str(inner.to_string()));
        }
        text.parse::<u64>()
            .map(Value::Int)
            .map_err(|_| format!("expected a quoted string or an integer, got {text:?}"))
    }

    /// Strips a `#` comment, respecting `#` inside quoted strings.
    fn strip_comment(line: &str) -> &str {
        let mut in_str = false;
        for (i, c) in line.char_indices() {
            match c {
                '"' => in_str = !in_str,
                '#' if !in_str => return &line[..i],
                _ => {}
            }
        }
        line
    }
}

use toml_lite::{Table, Value};

/// One suppression: up to `count` findings of `rule` in `path` are
/// accepted, with a mandatory human justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: String,
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// How many findings the entry covers.
    pub count: u64,
    /// Why the findings are acceptable (must be non-empty — allowlist
    /// etiquette is enforced mechanically).
    pub reason: String,
    /// Source line in `lint_allow.toml`.
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// All entries, file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint_allow.toml` text. Every entry must be an `[[allow]]`
    /// table carrying `rule`, `path`, `count >= 1`, and a non-empty
    /// `reason`.
    pub fn parse(file_label: &str, text: &str) -> Result<Self, ConfigError> {
        let tables = toml_lite::parse(file_label, text)?;
        let mut entries = Vec::new();
        for t in tables {
            if !(t.array && t.name == "allow") {
                return Err(ConfigError {
                    file: file_label.to_string(),
                    line: t.line,
                    message: format!(
                        "unexpected section [{}{}{}] (only [[allow]] entries are defined)",
                        if t.array { "[" } else { "" },
                        t.name,
                        if t.array { "]" } else { "" },
                    ),
                });
            }
            entries.push(allow_entry(file_label, &t)?);
        }
        Ok(Allowlist { entries })
    }

    /// Total allowance for `(rule, path)`.
    pub fn allowance(&self, rule: &str, path: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.rule == rule && e.path == path)
            .map(|e| e.count)
            .sum()
    }
}

fn allow_entry(file_label: &str, t: &Table) -> Result<AllowEntry, ConfigError> {
    let err = |message: String| ConfigError {
        file: file_label.to_string(),
        line: t.line,
        message,
    };
    let mut rule = None;
    let mut path = None;
    let mut count = None;
    let mut reason = None;
    for (k, v) in &t.entries {
        match (k.as_str(), v) {
            ("rule", Value::Str(s)) => rule = Some(s.clone()),
            ("path", Value::Str(s)) => path = Some(s.clone()),
            ("count", Value::Int(n)) => count = Some(*n),
            ("reason", Value::Str(s)) => reason = Some(s.clone()),
            (k, _) => {
                return Err(err(format!("unknown or mistyped key {k:?} in [[allow]]")))
            }
        }
    }
    let rule = rule.ok_or_else(|| err("[[allow]] missing rule".into()))?;
    let path = path.ok_or_else(|| err("[[allow]] missing path".into()))?;
    let count = count.ok_or_else(|| err("[[allow]] missing count".into()))?;
    let reason = reason.ok_or_else(|| err("[[allow]] missing reason".into()))?;
    if count == 0 {
        return Err(
            err("[[allow]] count must be >= 1 (delete the entry instead)".into()),
        );
    }
    if reason.trim().is_empty() {
        return Err(err(
            "[[allow]] reason must be a non-empty justification (allowlist etiquette)"
                .into(),
        ));
    }
    Ok(AllowEntry { rule, path, count, reason, line: t.line })
}

/// The parsed ratchet: rule → maximum accepted violation count. The
/// committed counts may only decrease over time; `fairsched-analyze check
/// --update-ratchet` rewrites the file to the current (lower) counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Rule → ceiling.
    pub limits: BTreeMap<String, u64>,
}

impl Ratchet {
    /// Parses `lint_ratchet.toml` text: a single `[ratchet]` section of
    /// `rule = count` pairs.
    pub fn parse(file_label: &str, text: &str) -> Result<Self, ConfigError> {
        let tables = toml_lite::parse(file_label, text)?;
        let mut limits = BTreeMap::new();
        for t in tables {
            if t.array || t.name != "ratchet" {
                return Err(ConfigError {
                    file: file_label.to_string(),
                    line: t.line,
                    message: format!(
                        "unexpected section {:?} (only [ratchet] is defined)",
                        t.name
                    ),
                });
            }
            for (k, v) in &t.entries {
                let Value::Int(n) = v else {
                    return Err(ConfigError {
                        file: file_label.to_string(),
                        line: t.line,
                        message: format!("ratchet count for {k:?} must be an integer"),
                    });
                };
                if limits.insert(k.clone(), *n).is_some() {
                    return Err(ConfigError {
                        file: file_label.to_string(),
                        line: t.line,
                        message: format!("duplicate ratchet entry for {k:?}"),
                    });
                }
            }
        }
        Ok(Ratchet { limits })
    }

    /// Renders the canonical file text for `--update-ratchet`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Per-rule violation ceilings for `fairsched-analyze check`.\n\
             # Counts may only decrease: lower the number when you fix sites,\n\
             # never raise it. Regenerate with `fairsched-analyze check\n\
             # --update-ratchet` after a burn-down.\n\n[ratchet]\n",
        );
        for (rule, count) in &self.limits {
            out.push_str(&format!("{rule} = {count}\n"));
        }
        out
    }
}

/// One registered on-disk format version: the id as it appears in source
/// (`fairsched-<name>/vN`) and the decode test that proves the current
/// code still reads it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaEntry {
    /// The full version literal, e.g. `fairsched-session-snapshot/v1`.
    pub id: String,
    /// `workspace/relative/file.rs::test_fn_name` — the test that decodes
    /// (or, for retired versions, provably rejects) this format.
    pub decode_test: String,
    /// Optional free-form context (e.g. "negative fixture: decoder must
    /// reject unknown versions").
    pub note: Option<String>,
    /// Source line in `schema_registry.toml`.
    pub line: u32,
}

/// The parsed `schema_registry.toml`: every `fairsched-*/vN` format
/// literal in non-test library code must have an entry here, so
/// snapshot/journal/report formats cannot fork silently.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchemaRegistry {
    /// All entries, file order.
    pub entries: Vec<SchemaEntry>,
}

impl SchemaRegistry {
    /// Parses `schema_registry.toml` text: `[[schema]]` tables carrying
    /// `id`, `decode_test`, and an optional `note`. Duplicate ids are
    /// rejected at parse time.
    pub fn parse(file_label: &str, text: &str) -> Result<Self, ConfigError> {
        let tables = toml_lite::parse(file_label, text)?;
        let mut entries: Vec<SchemaEntry> = Vec::new();
        for t in tables {
            if !(t.array && t.name == "schema") {
                return Err(ConfigError {
                    file: file_label.to_string(),
                    line: t.line,
                    message: format!(
                        "unexpected section {:?} (only [[schema]] entries are defined)",
                        t.name
                    ),
                });
            }
            let entry = schema_entry(file_label, &t)?;
            if entries.iter().any(|e| e.id == entry.id) {
                return Err(ConfigError {
                    file: file_label.to_string(),
                    line: t.line,
                    message: format!("duplicate [[schema]] entry for id {:?}", entry.id),
                });
            }
            entries.push(entry);
        }
        Ok(SchemaRegistry { entries })
    }

    /// The entry registering `id`, if any.
    pub fn get(&self, id: &str) -> Option<&SchemaEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

fn schema_entry(file_label: &str, t: &Table) -> Result<SchemaEntry, ConfigError> {
    let err = |message: String| ConfigError {
        file: file_label.to_string(),
        line: t.line,
        message,
    };
    let mut id = None;
    let mut decode_test = None;
    let mut note = None;
    for (k, v) in &t.entries {
        match (k.as_str(), v) {
            ("id", Value::Str(s)) => id = Some(s.clone()),
            ("decode_test", Value::Str(s)) => decode_test = Some(s.clone()),
            ("note", Value::Str(s)) => note = Some(s.clone()),
            (k, _) => {
                return Err(err(format!("unknown or mistyped key {k:?} in [[schema]]")))
            }
        }
    }
    let id = id.ok_or_else(|| err("[[schema]] missing id".into()))?;
    let decode_test =
        decode_test.ok_or_else(|| err("[[schema]] missing decode_test".into()))?;
    if !decode_test.contains("::") {
        return Err(err(format!(
            "decode_test {decode_test:?} must be \"path/to/file.rs::test_fn\""
        )));
    }
    Ok(SchemaEntry { id, decode_test, note, line: t.line })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allowlist() {
        let text = r#"
# comment
[[allow]]
rule = "panic-free"
path = "crates/bench/src/baseline.rs"
count = 3
reason = "bench harness, trusted schedulers"

[[allow]]
rule = "spec-literal"
path = "crates/core/src/spec.rs"
count = 2
reason = "deliberate malformed fixtures"
"#;
        let a = Allowlist::parse("lint_allow.toml", text).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.allowance("panic-free", "crates/bench/src/baseline.rs"), 3);
        assert_eq!(a.allowance("panic-free", "crates/core/src/spec.rs"), 0);
    }

    #[test]
    fn allowlist_requires_reason() {
        let text = "[[allow]]\nrule = \"panic-free\"\npath = \"x.rs\"\ncount = 1\nreason = \"  \"\n";
        let e = Allowlist::parse("lint_allow.toml", text).unwrap_err();
        assert!(e.message.contains("reason"), "{e}");
        let text2 = "[[allow]]\nrule = \"panic-free\"\npath = \"x.rs\"\ncount = 1\n";
        assert!(Allowlist::parse("lint_allow.toml", text2).is_err());
    }

    #[test]
    fn allowlist_rejects_zero_count_and_unknown_keys() {
        let zero = "[[allow]]\nrule = \"r\"\npath = \"p\"\ncount = 0\nreason = \"x\"\n";
        assert!(Allowlist::parse("lint_allow.toml", zero).is_err());
        let unknown = "[[allow]]\nrule = \"r\"\npath = \"p\"\ncount = 1\nreason = \"x\"\nnote = \"y\"\n";
        assert!(Allowlist::parse("lint_allow.toml", unknown).is_err());
    }

    #[test]
    fn parses_ratchet_and_renders_canonically() {
        let text = "[ratchet]\npanic-free = 240 # ceiling\ntime-arith = 12\n";
        let r = Ratchet::parse("lint_ratchet.toml", text).unwrap();
        assert_eq!(r.limits.get("panic-free"), Some(&240));
        let rendered = r.render();
        let again = Ratchet::parse("lint_ratchet.toml", &rendered).unwrap();
        assert_eq!(again, r);
    }

    #[test]
    fn ratchet_rejects_duplicates_and_strings() {
        assert!(Ratchet::parse("r", "[ratchet]\na = 1\na = 2\n").is_err());
        assert!(Ratchet::parse("r", "[ratchet]\na = \"1\"\n").is_err());
        assert!(Ratchet::parse("r", "[other]\na = 1\n").is_err());
    }

    #[test]
    fn parses_schema_registry() {
        let text = r#"
[[schema]]
id = "fairsched-session-snapshot/v1"
decode_test = "crates/sim/src/stepper.rs::snapshot_restore_round_trips_mid_run"

[[schema]]
id = "fairsched-experiment/v2"
decode_test = "crates/experiment/src/spec.rs::bad_documents_are_typed_errors"
note = "negative fixture: decoder must reject unknown versions"
"#;
        let r = SchemaRegistry::parse("schema_registry.toml", text).unwrap();
        assert_eq!(r.entries.len(), 2);
        let e = r.get("fairsched-session-snapshot/v1").unwrap();
        assert!(e.decode_test.ends_with("::snapshot_restore_round_trips_mid_run"));
        assert!(e.note.is_none());
        assert!(r.get("fairsched-experiment/v2").unwrap().note.is_some());
        assert!(r.get("fairsched-nope/v1").is_none());
    }

    #[test]
    fn schema_registry_rejects_duplicates_and_malformed_entries() {
        let dup = "[[schema]]\nid = \"a/v1\"\ndecode_test = \"f.rs::t\"\n\
                   [[schema]]\nid = \"a/v1\"\ndecode_test = \"f.rs::t\"\n";
        assert!(SchemaRegistry::parse("s", dup)
            .unwrap_err()
            .message
            .contains("duplicate"));
        let no_sep = "[[schema]]\nid = \"a/v1\"\ndecode_test = \"not-a-pointer\"\n";
        assert!(SchemaRegistry::parse("s", no_sep).is_err());
        let missing = "[[schema]]\nid = \"a/v1\"\n";
        assert!(SchemaRegistry::parse("s", missing).is_err());
        let wrong_section = "[schema]\nid = \"a/v1\"\n";
        assert!(SchemaRegistry::parse("s", wrong_section).is_err());
    }

    #[test]
    fn toml_lite_rejects_garbage() {
        assert!(toml_lite::parse("f", "just words\n").is_err());
        assert!(toml_lite::parse("f", "[sec\n").is_err());
        assert!(toml_lite::parse("f", "a = 1\n").is_err());
    }
}
