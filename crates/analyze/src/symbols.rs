//! The workspace symbol graph: a second pass over the lexed token
//! streams that gives the semantic rules what token patterns alone
//! cannot.
//!
//! Three products, all per file:
//!
//! * an **item table** — every `fn` / `struct` / `enum` / `trait` /
//!   `mod` / `const` / `static` / `type` / `impl` declaration with its
//!   line and test-vs-library classification (inherited through
//!   `#[cfg(test)]` / `#[test]` / `mod tests` scopes by the lexer);
//! * an **import map** — `use` declarations resolved to full paths,
//!   including `{...}` groups, `as` renames, and glob imports, with
//!   `crate::` normalized to the owning `fairsched_*` crate name;
//! * a **name-resolution seam** — [`SymbolGraph::resolve`] answers "what
//!   does the first segment of this path mean in this file?", which is
//!   exactly enough for the semantic rules to ask questions like *does
//!   this call route through `fairsched_core::journal`?* or *is this
//!   `HashMap` really `std::collections::HashMap`?*
//!
//! This is deliberately not a type checker: it resolves names, not
//! types, and it only follows `use` declarations — method receivers stay
//! unknowable, which is why the rules built on top remain heuristics
//! with inline-allow escape hatches.

use std::collections::BTreeMap;

use crate::lexer::{LexedFile, Tok, Token};
use crate::SourceFile;

/// What kind of declaration an [`ItemDecl`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` declaration.
    Fn,
    /// A `struct` declaration.
    Struct,
    /// An `enum` declaration.
    Enum,
    /// A `trait` declaration.
    Trait,
    /// A `mod` declaration.
    Mod,
    /// A `const` declaration.
    Const,
    /// A `static` declaration.
    Static,
    /// A `type` alias.
    TypeAlias,
    /// An `impl` block (the name is the first type identifier after the
    /// generics, i.e. the trait for `impl Trait for Type`).
    Impl,
}

/// One declared item in one file.
#[derive(Clone, Debug)]
pub struct ItemDecl {
    /// The declaration kind.
    pub kind: ItemKind,
    /// The declared name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Whether the declaration sits in test-only code.
    pub in_test: bool,
}

/// The symbols of one source file.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    /// Declared items, source order.
    pub items: Vec<ItemDecl>,
    /// Local binding → full path, from `use` declarations (`use
    /// std::time::SystemTime as Clock` maps `Clock` →
    /// `std::time::SystemTime`; `use std::fs;` maps `fs` → `std::fs`).
    pub imports: BTreeMap<String, String>,
    /// Prefixes glob-imported with `use path::*;`.
    pub globs: Vec<String>,
}

impl FileSymbols {
    /// Whether any import (named or glob) brings in a path under
    /// `prefix` — e.g. `routes_through("fairsched_core::journal")` is
    /// true for `use fairsched_core::journal::atomic_write;`, `use
    /// fairsched_core::journal;`, and `use fairsched_core::journal::*;`.
    pub fn routes_through(&self, prefix: &str) -> bool {
        self.imports
            .values()
            .any(|p| p == prefix || p.starts_with(&format!("{prefix}::")))
            || self.globs.iter().any(|g| g == prefix)
    }
}

/// The workspace-wide symbol graph: file → symbols.
#[derive(Clone, Debug, Default)]
pub struct SymbolGraph {
    /// Workspace-relative path → that file's symbols.
    pub files: BTreeMap<String, FileSymbols>,
}

impl SymbolGraph {
    /// Builds the graph from the lexed sources.
    pub fn build(sources: &[SourceFile]) -> Self {
        let mut graph = SymbolGraph::default();
        for src in sources {
            graph.files.insert(src.rel.clone(), scan_file(&src.rel, &src.lexed));
        }
        graph
    }

    /// The symbols of one file, if it was scanned.
    pub fn file(&self, rel: &str) -> Option<&FileSymbols> {
        self.files.get(rel)
    }

    /// Resolves the first segment of a path as written in `rel`: the
    /// full path its `use` declarations bind it to, or `None` when the
    /// name is not imported (a local item, a prelude name, or something
    /// arriving through a glob).
    pub fn resolve(&self, rel: &str, first_segment: &str) -> Option<&str> {
        self.files.get(rel)?.imports.get(first_segment).map(String::as_str)
    }

    /// Whether `rel` declares a `#[test]` (or `mod tests`-scoped)
    /// function named `name` — the existence check behind
    /// `schema_registry.toml`'s `decode_test` pointers.
    pub fn has_test_fn(&self, rel: &str, name: &str) -> bool {
        self.files.get(rel).is_some_and(|f| {
            f.items.iter().any(|i| i.kind == ItemKind::Fn && i.in_test && i.name == name)
        })
    }
}

/// The crate a workspace-relative path belongs to, as a `crate::` path
/// prefix: `crates/core/src/journal.rs` → `fairsched_core`. The root
/// `src/` facade is the `fairsched` crate.
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        if name == "compat" {
            // Compat stubs keep their upstream crate names (second
            // component): crates/compat/rand/src/lib.rs → rand.
            return rest.split('/').nth(1).map(str::to_string);
        }
        return Some(format!("fairsched_{name}"));
    }
    if rel.starts_with("src/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
    {
        return Some("fairsched".to_string());
    }
    None
}

/// Scans one lexed file into its symbol table.
fn scan_file(rel: &str, file: &LexedFile) -> FileSymbols {
    let mut out = FileSymbols::default();
    let toks = &file.tokens;
    let crate_name = crate_of(rel);
    let mut i = 0;
    while i < toks.len() {
        let Tok::Ident(kw) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let kind = match kw.as_str() {
            "fn" => Some(ItemKind::Fn),
            "struct" => Some(ItemKind::Struct),
            "enum" => Some(ItemKind::Enum),
            "trait" => Some(ItemKind::Trait),
            "mod" => Some(ItemKind::Mod),
            "const" => Some(ItemKind::Const),
            "static" => Some(ItemKind::Static),
            "type" => Some(ItemKind::TypeAlias),
            _ => None,
        };
        if let Some(kind) = kind {
            // The name is the next identifier (`const FN: fn()` and
            // `fn()` pointer types have punctuation there instead and
            // are skipped).
            if let Some(Token { tok: Tok::Ident(name), line, in_test }) = toks.get(i + 1)
            {
                // `mod tests;` file declarations and `impl Trait for`
                // keywords never collide here: plain keyword + ident.
                if name != "for" && name != "mut" {
                    out.items.push(ItemDecl {
                        kind,
                        name: name.clone(),
                        line: *line,
                        in_test: *in_test,
                    });
                }
            }
            i += 1;
            continue;
        }
        if kw == "impl" {
            if let Some((name, line, in_test)) = impl_target(toks, i + 1) {
                out.items.push(ItemDecl { kind: ItemKind::Impl, name, line, in_test });
            }
            i += 1;
            continue;
        }
        if kw == "use" {
            i = parse_use(toks, i + 1, crate_name.as_deref(), &mut out);
            continue;
        }
        i += 1;
    }
    out
}

/// The first type identifier of an `impl` header, skipping a leading
/// `<...>` generic parameter list.
fn impl_target(toks: &[Token], mut i: usize) -> Option<(String, u32, bool)> {
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match &t.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Skip reference/lifetime noise (`impl<'a> &'a T` does not occur,
    // but `impl Trait for &T` headers do after the `for`).
    while let Some(t) = toks.get(i) {
        match &t.tok {
            Tok::Punct('&') | Tok::Lifetime => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| (&t.tok, t.line, t.in_test)) {
        Some((Tok::Ident(name), line, in_test)) => Some((name.clone(), line, in_test)),
        _ => None,
    }
}

/// Parses one `use` declaration starting at the token after `use`,
/// registering its bindings; returns the index after the closing `;`.
fn parse_use(
    toks: &[Token],
    mut i: usize,
    crate_name: Option<&str>,
    out: &mut FileSymbols,
) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    i = parse_use_tree(toks, i, &mut prefix, crate_name, out);
    // Consume through the terminating `;` (malformed input just runs to
    // the next statement; the lexer guarantees no infinite loop because
    // we always advance).
    while let Some(t) = toks.get(i) {
        i += 1;
        if matches!(t.tok, Tok::Punct(';')) {
            break;
        }
    }
    i
}

/// Recursively parses a use-tree (`a::b`, `a::{b, c as d}`, `a::*`),
/// accumulating `prefix` segments, and registers bindings into `out`.
/// Returns the index of the first token it did not consume.
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    crate_name: Option<&str>,
    out: &mut FileSymbols,
) -> usize {
    let depth_at_entry = prefix.len();
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(seg)) => {
                let seg = match (seg.as_str(), crate_name) {
                    // Normalize crate-relative paths to the owning
                    // crate's external name so cross-file questions
                    // ("does this route through fairsched_core::
                    // journal?") have one spelling.
                    ("crate", Some(name)) if prefix.is_empty() => name.to_string(),
                    _ => seg.clone(),
                };
                prefix.push(seg);
                i += 1;
                // `as` rename terminates this leaf.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(kw)) if kw == "as")
                {
                    if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                        out.imports.insert(alias.clone(), prefix.join("::"));
                        i += 2;
                    } else {
                        i += 1;
                    }
                    prefix.truncate(depth_at_entry);
                    return i;
                }
                // `::` continues the path; anything else ends the leaf.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                {
                    i += 2;
                    continue;
                }
                let leaf = prefix.last().cloned().unwrap_or_default();
                if leaf != "self" {
                    out.imports.insert(leaf, prefix.join("::"));
                } else {
                    // `use a::b::{self, c}`: `self` binds the prefix.
                    prefix.pop();
                    if let Some(name) = prefix.last().cloned() {
                        out.imports.insert(name, prefix.join("::"));
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            Some(Tok::Punct('{')) => {
                i += 1;
                loop {
                    match toks.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct('}')) => {
                            i += 1;
                            break;
                        }
                        Some(Tok::Punct(',')) => i += 1,
                        Some(_) => {
                            i = parse_use_tree(toks, i, prefix, crate_name, out);
                        }
                        None => break,
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            Some(Tok::Punct('*')) => {
                out.globs.push(prefix.join("::"));
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            _ => {
                prefix.truncate(depth_at_entry);
                return i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(rel: &str, src: &str) -> SymbolGraph {
        let sources = vec![SourceFile {
            rel: rel.to_string(),
            text: src.to_string(),
            lexed: lex(src),
        }];
        SymbolGraph::build(&sources)
    }

    #[test]
    fn item_table_records_decls_with_test_classification() {
        let src = r#"
            pub struct Engine { x: u32 }
            pub fn run() {}
            impl Engine { fn helper(&self) {} }
            #[cfg(test)]
            mod tests {
                #[test]
                fn engine_runs() {}
                fn helper_in_tests() {}
            }
        "#;
        let g = graph_of("crates/core/src/lib.rs", src);
        let f = g.file("crates/core/src/lib.rs").unwrap();
        let find = |name: &str| f.items.iter().find(|i| i.name == name).unwrap();
        assert_eq!(find("Engine").kind, ItemKind::Struct);
        assert!(!find("run").in_test);
        assert!(f.items.iter().any(|i| i.kind == ItemKind::Impl && i.name == "Engine"));
        assert!(g.has_test_fn("crates/core/src/lib.rs", "engine_runs"));
        assert!(g.has_test_fn("crates/core/src/lib.rs", "helper_in_tests"));
        assert!(!g.has_test_fn("crates/core/src/lib.rs", "run"));
        assert!(!g.has_test_fn("crates/core/src/lib.rs", "no_such_fn"));
    }

    #[test]
    fn imports_resolve_groups_renames_and_globs() {
        let src = r#"
            use std::collections::{BTreeMap, HashMap as Map};
            use std::time::SystemTime;
            use std::fs;
            use fairsched_core::journal::{self, atomic_write};
            use fairsched_core::spec::*;
        "#;
        let g = graph_of("crates/serve/src/queue.rs", src);
        assert_eq!(
            g.resolve("crates/serve/src/queue.rs", "Map"),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            g.resolve("crates/serve/src/queue.rs", "BTreeMap"),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(
            g.resolve("crates/serve/src/queue.rs", "SystemTime"),
            Some("std::time::SystemTime")
        );
        assert_eq!(g.resolve("crates/serve/src/queue.rs", "fs"), Some("std::fs"));
        assert_eq!(
            g.resolve("crates/serve/src/queue.rs", "atomic_write"),
            Some("fairsched_core::journal::atomic_write")
        );
        assert_eq!(
            g.resolve("crates/serve/src/queue.rs", "journal"),
            Some("fairsched_core::journal")
        );
        let f = g.file("crates/serve/src/queue.rs").unwrap();
        assert!(f.routes_through("fairsched_core::journal"));
        assert!(f.globs.contains(&"fairsched_core::spec".to_string()));
        assert!(!f.routes_through("fairsched_core::fairness"));
    }

    #[test]
    fn crate_relative_imports_normalize_to_the_crate_name() {
        let src = "use crate::journal::atomic_write;\n";
        let g = graph_of("crates/core/src/scheduler/lattice.rs", src);
        assert_eq!(
            g.resolve("crates/core/src/scheduler/lattice.rs", "atomic_write"),
            Some("fairsched_core::journal::atomic_write")
        );
        assert!(g
            .file("crates/core/src/scheduler/lattice.rs")
            .unwrap()
            .routes_through("fairsched_core::journal"));
    }

    #[test]
    fn crate_of_maps_workspace_layout() {
        assert_eq!(crate_of("crates/core/src/lib.rs").as_deref(), Some("fairsched_core"));
        assert_eq!(
            crate_of("crates/serve/src/queue.rs").as_deref(),
            Some("fairsched_serve")
        );
        assert_eq!(crate_of("crates/compat/rand/src/lib.rs").as_deref(), Some("rand"));
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("fairsched"));
        assert_eq!(crate_of("rogue.rs"), None);
    }

    #[test]
    fn nested_group_imports_bind_all_leaves() {
        let src = "use a::{b, c::{d, e as f}};\n";
        let g = graph_of("crates/core/src/x.rs", src);
        assert_eq!(g.resolve("crates/core/src/x.rs", "b"), Some("a::b"));
        assert_eq!(g.resolve("crates/core/src/x.rs", "d"), Some("a::c::d"));
        assert_eq!(g.resolve("crates/core/src/x.rs", "f"), Some("a::c::e"));
        assert_eq!(g.resolve("crates/core/src/x.rs", "e"), None);
    }
}
