//! Integration tests driving [`fairsched_analyze::run_check`] against the
//! seeded fixture workspaces under `testdata/` — each rule family must
//! fire on the violations fixture, the allowlist must suppress, and a
//! too-high ratchet must be reported as stale (not a failure).
//!
//! `testdata/` is a skipped directory name in the workspace walker, so
//! these deliberately broken files are invisible when the analyzer runs
//! over the real repository.

use std::path::PathBuf;

use fairsched_analyze::{run_check, Finding, Options, Outcome};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata").join(name)
}

fn check(name: &str) -> Outcome {
    run_check(&Options { root: fixture(name), update_ratchet: false })
        .expect("fixture check runs")
}

fn of_rule<'a>(o: &'a Outcome, rule: &str) -> Vec<&'a Finding> {
    o.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn violations_fixture_trips_every_rule_family() {
    let o = check("violations");
    assert!(!o.ok(), "seeded violations must fail: {:?}", o.failures);

    // panic-free: panic!, unwrap, expect, unreachable! — and nothing from
    // the #[cfg(test)] module.
    let pf = of_rule(&o, "panic-free");
    assert_eq!(pf.len(), 4, "{pf:?}");
    assert!(pf.iter().all(|f| f.path == "crates/core/src/lib.rs"));
    assert!(pf.iter().any(|f| f.message.contains("`panic!`")));
    assert!(pf.iter().any(|f| f.message.contains(".unwrap(")));
    assert!(pf.iter().any(|f| f.message.contains(".expect(")));
    assert!(pf.iter().any(|f| f.message.contains("`unreachable!`")));

    // time-arith: the raw product and the Time+Time sum, but not the
    // inline-allowed product.
    let ta = of_rule(&o, "time-arith");
    assert_eq!(ta.len(), 2, "{ta:?}");
    assert!(ta.iter().any(|f| f.message.contains("raw `*`")));
    assert!(ta.iter().any(|f| f.message.contains("raw `+`")));

    // spec-literal: the unknown family in library code (coverage-gate
    // findings about the tiny workspace land on the synthetic
    // `workspace` path and are ignored here).
    let sl: Vec<_> = of_rule(&o, "spec-literal")
        .into_iter()
        .filter(|f| f.path != "workspace")
        .collect();
    assert_eq!(sl.len(), 1, "{sl:?}");
    assert!(sl[0].message.contains("nosuchfamily"));

    // hygiene: bad report schema (missing keys + org without metrics),
    // workload golden without a spec= header, wrong bench schema, and
    // orphan goldens.
    let hy = of_rule(&o, "hygiene");
    assert!(
        hy.iter().any(|f| f.path.ends_with("bad_report.json")
            && f.message.contains("scheduler_spec")),
        "{hy:?}"
    );
    assert!(hy.iter().any(|f| f.message.contains("`spec=` header")), "{hy:?}");
    assert!(hy
        .iter()
        .any(|f| f.path == "BENCH_lattice.json" && f.message.contains("schema")));
    assert!(
        hy.iter()
            .any(|f| f.path.ends_with("orphan_schedule.txt")
                && f.message.contains("orphan"))
    );

    // With no committed ratchet every non-zero family is a failure.
    assert!(o.failures.iter().any(|f| f.contains("panic-free")));
    assert!(o.failures.iter().any(|f| f.contains("time-arith")));
}

#[test]
fn allowlist_suppresses_and_unused_entries_are_flagged() {
    let o = check("allowed");
    assert!(o.ok(), "fully covered fixture must pass: {:?}", o.failures);
    assert_eq!(o.suppressed, 2, "both seeded panic sites suppressed");
    assert_eq!(of_rule(&o, "panic-free").len(), 0);
    assert!(
        o.warnings
            .iter()
            .any(|w| w.contains("time-arith") && w.contains("only 0 matched")),
        "unused allowlist entry must be reported: {:?}",
        o.warnings
    );
}

#[test]
fn too_high_ratchet_is_reported_stale_but_passes() {
    let o = check("stale");
    assert!(o.ok(), "{:?}", o.failures);
    assert_eq!(of_rule(&o, "panic-free").len(), 0);
    assert!(
        o.warnings.iter().any(|w| w.contains("panic-free") && w.contains("stale")),
        "stale ratchet must be surfaced: {:?}",
        o.warnings
    );
}

#[test]
fn report_json_carries_rule_counts_and_verdict() {
    let o = check("violations");
    let report = o.report();
    let serde::Value::Object(entries) = &report else { panic!("object report") };
    let get = |k: &str| entries.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert!(matches!(get("ok"), Some(serde::Value::Bool(false))));
    let Some(serde::Value::Object(rules)) = get("rules") else { panic!("rules object") };
    assert_eq!(rules.len(), 4);
    // Round-trips through the JSON writer/parser.
    let text = report.to_json_pretty();
    let parsed = serde_json::parse_value(&text).expect("report parses");
    assert_eq!(format!("{parsed:?}"), format!("{report:?}"));
}
