//! Integration tests driving [`fairsched_analyze::run_check`] against the
//! seeded fixture workspaces under `testdata/` — each rule family must
//! fire on the violations fixture, the allowlist must suppress, and a
//! too-high ratchet must be reported as stale (not a failure).
//!
//! `testdata/` is a skipped directory name in the workspace walker, so
//! these deliberately broken files are invisible when the analyzer runs
//! over the real repository.

use std::path::PathBuf;

use fairsched_analyze::{run_check, Finding, Options, Outcome};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata").join(name)
}

fn check(name: &str) -> Outcome {
    run_check(&Options { root: fixture(name), update_ratchet: false })
        .expect("fixture check runs")
}

fn of_rule<'a>(o: &'a Outcome, rule: &str) -> Vec<&'a Finding> {
    o.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn violations_fixture_trips_every_rule_family() {
    let o = check("violations");
    assert!(!o.ok(), "seeded violations must fail: {:?}", o.failures);

    // panic-free: panic!, unwrap, expect, unreachable! — and nothing from
    // the #[cfg(test)] module.
    let pf = of_rule(&o, "panic-free");
    assert_eq!(pf.len(), 4, "{pf:?}");
    assert!(pf.iter().all(|f| f.path == "crates/core/src/lib.rs"));
    assert!(pf.iter().any(|f| f.message.contains("`panic!`")));
    assert!(pf.iter().any(|f| f.message.contains(".unwrap(")));
    assert!(pf.iter().any(|f| f.message.contains(".expect(")));
    assert!(pf.iter().any(|f| f.message.contains("`unreachable!`")));

    // time-arith: the raw product and the Time+Time sum, but not the
    // inline-allowed product.
    let ta = of_rule(&o, "time-arith");
    assert_eq!(ta.len(), 2, "{ta:?}");
    assert!(ta.iter().any(|f| f.message.contains("raw `*`")));
    assert!(ta.iter().any(|f| f.message.contains("raw `+`")));

    // spec-literal: the unknown family in library code (coverage-gate
    // findings about the tiny workspace land on the synthetic
    // `workspace` path and are ignored here).
    let sl: Vec<_> = of_rule(&o, "spec-literal")
        .into_iter()
        .filter(|f| f.path != "workspace")
        .collect();
    assert_eq!(sl.len(), 1, "{sl:?}");
    assert!(sl[0].message.contains("nosuchfamily"));

    // hygiene: bad report schema (missing keys + org without metrics),
    // workload golden without a spec= header, wrong bench schema, and
    // orphan goldens.
    let hy = of_rule(&o, "hygiene");
    assert!(
        hy.iter().any(|f| f.path.ends_with("bad_report.json")
            && f.message.contains("scheduler_spec")),
        "{hy:?}"
    );
    assert!(hy.iter().any(|f| f.message.contains("`spec=` header")), "{hy:?}");
    assert!(hy
        .iter()
        .any(|f| f.path == "BENCH_lattice.json" && f.message.contains("schema")));
    assert!(
        hy.iter()
            .any(|f| f.path.ends_with("orphan_schedule.txt")
                && f.message.contains("orphan"))
    );

    // determinism: the wall-clock read, the hash-map for-loop, and the
    // unseeded RNG in the replay-critical sim file — but neither the
    // inline-allowed clock read nor anything in the #[cfg(test)] module.
    let det = of_rule(&o, "determinism");
    assert_eq!(det.len(), 3, "{det:?}");
    assert!(det.iter().all(|f| f.path == "crates/sim/src/engine.rs"));
    assert!(det.iter().any(|f| f.message.contains("wall-clock")));
    assert!(det.iter().any(|f| f.message.contains("for-loop over hash-ordered")));
    assert!(det.iter().any(|f| f.message.contains("unseeded")));

    // durability: the raw fs::write, but not the inline-allowed one.
    let du = of_rule(&o, "durability");
    assert_eq!(du.len(), 1, "{du:?}");
    assert!(du[0].path == "crates/sim/src/engine.rs");
    assert!(du[0].message.contains("fairsched_core::journal"));

    // schema-version: the unregistered literal in library code, plus the
    // rotten registry entry (dead decode test + id used nowhere). The
    // healthy entry — live decode test, id kept alive by a test-scope
    // literal — produces nothing.
    let sv = of_rule(&o, "schema-version");
    assert_eq!(sv.len(), 3, "{sv:?}");
    assert!(sv.iter().any(|f| f.path == "crates/sim/src/engine.rs"
        && f.message.contains("fairsched-engine-state/v1")
        && f.message.contains("not registered")));
    assert!(
        sv.iter()
            .any(|f| f.path == "schema_registry.toml"
                && f.message.contains("no #[test] fn"))
    );
    assert!(sv
        .iter()
        .any(|f| f.path == "schema_registry.toml"
            && f.message.contains("no longer appears")));

    // With no committed ratchet every non-zero family is a failure.
    assert!(o.failures.iter().any(|f| f.contains("panic-free")));
    assert!(o.failures.iter().any(|f| f.contains("time-arith")));
    assert!(o.failures.iter().any(|f| f.contains("determinism")));
    assert!(o.failures.iter().any(|f| f.contains("durability")));
    assert!(o.failures.iter().any(|f| f.contains("schema-version")));
}

#[test]
fn allowlist_suppresses_and_unused_entries_are_flagged() {
    let o = check("allowed");
    assert!(o.ok(), "fully covered fixture must pass: {:?}", o.failures);
    assert_eq!(
        o.suppressed, 4,
        "both panic sites plus the determinism and durability sites suppressed"
    );
    assert_eq!(of_rule(&o, "panic-free").len(), 0);
    assert_eq!(of_rule(&o, "determinism").len(), 0);
    assert_eq!(of_rule(&o, "durability").len(), 0);
    // The registered schema literal with a live decode test is clean.
    assert_eq!(of_rule(&o, "schema-version").len(), 0);
    assert!(
        o.warnings
            .iter()
            .any(|w| w.contains("time-arith") && w.contains("only 0 matched")),
        "unused allowlist entry must be reported: {:?}",
        o.warnings
    );
}

#[test]
fn too_high_ratchet_is_reported_stale_but_passes() {
    let o = check("stale");
    assert!(o.ok(), "{:?}", o.failures);
    assert_eq!(of_rule(&o, "panic-free").len(), 0);
    assert!(
        o.warnings.iter().any(|w| w.contains("panic-free") && w.contains("stale")),
        "stale ratchet must be surfaced: {:?}",
        o.warnings
    );
    assert!(
        o.warnings.iter().any(|w| w.contains("determinism") && w.contains("stale")),
        "stale determinism ratchet must be surfaced: {:?}",
        o.warnings
    );
}

#[test]
fn report_json_carries_rule_counts_and_verdict() {
    let o = check("violations");
    let report = o.report();
    let serde::Value::Object(entries) = &report else { panic!("object report") };
    let get = |k: &str| entries.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert!(matches!(get("ok"), Some(serde::Value::Bool(false))));
    let Some(serde::Value::Object(rules)) = get("rules") else { panic!("rules object") };
    assert_eq!(rules.len(), 7);
    // Round-trips through the JSON writer/parser.
    let text = report.to_json_pretty();
    let parsed = serde_json::parse_value(&text).expect("report parses");
    assert_eq!(format!("{parsed:?}"), format!("{report:?}"));
}

#[test]
fn sarif_rendering_of_the_violations_fixture() {
    let o = check("violations");
    let text = fairsched_analyze::sarif::render(&o).to_json_pretty();
    let parsed = serde_json::parse_value(&text).expect("SARIF parses");
    let runs = match parsed.get("runs") {
        Some(serde::Value::Array(r)) => r,
        other => panic!("runs array, got {other:?}"),
    };
    assert_eq!(runs.len(), 1);
    let results = match runs[0].get("results") {
        Some(serde::Value::Array(r)) => r,
        other => panic!("results array, got {other:?}"),
    };
    assert_eq!(results.len(), o.findings.len());
    // Every rule over its (absent ⇒ 0) ratchet renders at error level.
    assert!(text.contains("\"level\": \"error\""));
    assert!(text.contains("\"ruleId\": \"determinism\""));
    assert!(text.contains("\"ruleId\": \"durability\""));
    assert!(text.contains("\"ruleId\": \"schema-version\""));
    assert!(text.contains("crates/sim/src/engine.rs"));
}
