//! Seeded semantic-rule violations: `determinism`, `durability`, and
//! `schema-version` must all fire on this replay-critical file. The
//! fixture is lexed, never compiled — undefined names are fine.

use std::collections::HashMap;
use std::time::SystemTime;

pub const ENGINE_SCHEMA: &str = "fairsched-engine-state/v1";

pub fn bad_clock() -> u128 {
    SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap_or(ZERO).as_nanos()
}

pub fn bad_hash_iteration(hits: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_site, n) in hits {
        total += n;
    }
    total
}

pub fn bad_entropy() -> u64 {
    thread_rng()
}

pub fn bad_raw_write(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text)
}

pub fn allowed_clock() -> u64 {
    // lint:allow(determinism) seeded inline-allow coverage
    let _ = SystemTime::now();
    0
}

pub fn allowed_write(path: &std::path::Path) {
    // lint:allow(durability) seeded inline-allow coverage
    let _ = std::fs::write(path, "advisory");
}

#[cfg(test)]
mod tests {
    #[test]
    fn journal_round_trips() {
        // Keeps the registered fairsched-engine-journal/v1 id alive and
        // is the decode test the fixture registry points at.
        assert!(decode("fairsched-engine-journal/v1").is_ok());
    }

    #[test]
    fn test_scope_is_exempt() {
        let t = std::time::SystemTime::now();
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        for _ in m.iter() {}
        std::fs::write("/tmp/x", "fixture").unwrap();
        let _ = t;
    }
}
