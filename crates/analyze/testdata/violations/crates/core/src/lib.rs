//! Seeded-violation fixture: every library-code rule must fire on this
//! file. Line positions matter to the integration tests — edit with care.

pub fn bad_panics(x: Option<u64>) -> u64 {
    if x.is_none() {
        panic!("seeded panic site");
    }
    x.unwrap()
}

pub fn bad_expect(x: Option<u64>) -> u64 {
    x.expect("seeded expect site")
}

pub fn bad_unreachable(x: u64) -> u64 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn bad_time_product(horizon: Time, i: u64) -> Time {
    horizon * i
}

pub fn bad_time_sum(start: Time, proc_time: Time) -> Time {
    start + proc_time
}

pub fn allowed_time_product(horizon: Time, i: u64) -> Time {
    // lint:allow(time-arith) seeded inline-allow coverage
    horizon * i
}

pub fn bad_spec() -> &'static str {
    "nosuchfamily:k=1"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scope_is_exempt() {
        let h: Time = 10;
        assert_eq!(h * 2, bad_panics(Some(20)).unwrap());
        panic!("fine here");
    }
}
