//! Allowlist fixture for the semantic rules: one determinism site and
//! one durability site, both covered by the fixture's `lint_allow.toml`,
//! plus a schema literal registered with a live decode test.

pub const ENGINE_SCHEMA: &str = "fairsched-engine-state/v1";

pub fn covered_clock() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

pub fn covered_write(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, "covered")
}

#[cfg(test)]
mod tests {
    #[test]
    fn state_round_trips() {
        assert!(decode(super::ENGINE_SCHEMA).is_ok());
    }
}
