//! Allowlist fixture: two seeded panic sites, fully covered by the
//! fixture's `lint_allow.toml`.

pub fn covered_one(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn covered_two(x: Option<u64>) -> u64 {
    x.expect("covered")
}
