//! Stale-ratchet fixture: clean library code under a too-high ceiling.

pub fn fine(x: u64) -> u64 {
    x.saturating_add(1)
}
