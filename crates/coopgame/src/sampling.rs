//! Monte Carlo Shapley estimation by permutation sampling.
//!
//! The alternative form of the Shapley value (Equation 2 of the paper) is an
//! expectation over uniformly random join orders:
//!
//! ```text
//! φ_u(v) = E_{≺} [ v(pred_≺(u) ∪ {u}) − v(pred_≺(u)) ]
//! ```
//!
//! Sampling `N` permutations and averaging the marginal contributions gives
//! an unbiased estimator. For values bounded in `[0, v(N)]`, Hoeffding's
//! inequality yields the paper's sample complexity (Theorem 5.6):
//! `N = ⌈ k²/ε² · ln(k / (1−λ)) ⌉` permutations guarantee, with probability
//! at least `λ`, that every player's estimate is within `ε·v(N)/k` of its
//! exact value (so the Manhattan error is within `ε·v(N)`).

use crate::{Coalition, Player};
use rand::seq::SliceRandom;
use rand::Rng;

/// The Hoeffding-based number of permutations used by the paper's RAND
/// algorithm: `⌈ k²/ε² · ln(k / (1−λ)) ⌉`.
///
/// # Panics
/// Panics unless `0 < epsilon` and `0 < lambda < 1`.
pub fn hoeffding_permutations(k: usize, epsilon: f64, lambda: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!((0.0..1.0).contains(&lambda) && lambda > 0.0, "lambda must be in (0,1)");
    let k_f = k as f64;
    ((k_f * k_f) / (epsilon * epsilon) * (k_f / (1.0 - lambda)).ln()).ceil() as usize
}

/// Inverse of [`hoeffding_permutations`]: the ε guaranteed (w.p. λ) by a
/// given number of sampled permutations. Useful for reporting the bound a
/// heuristic configuration (e.g. `N = 15`) actually carries.
pub fn hoeffding_epsilon(k: usize, n_permutations: usize, lambda: f64) -> f64 {
    assert!(n_permutations > 0);
    let k_f = k as f64;
    (k_f * k_f * (k_f / (1.0 - lambda)).ln() / n_permutations as f64).sqrt()
}

/// A sampled set of join-order permutations together with the prefix
/// coalitions each player sees, mirroring the `Subs` / `Subs'` bookkeeping of
/// the paper's Figure 6: for every sampled ordering and every player `u`,
/// the pair `(pred(u), pred(u) ∪ {u})`.
#[derive(Clone, Debug)]
pub struct SampledPrefixes {
    n_players: usize,
    n_permutations: usize,
    /// `pairs[u]` lists, for each sampled permutation, the coalition of
    /// players preceding `u` (the matching "with-u" coalition is
    /// `pred.insert(u)`).
    pairs: Vec<Vec<Coalition>>,
}

impl SampledPrefixes {
    /// Draws `n_permutations` uniformly random orderings of `n_players`
    /// players (with replacement, as in the paper) and records every
    /// player's predecessor coalition in each.
    pub fn draw(n_players: usize, n_permutations: usize, rng: &mut impl Rng) -> Self {
        let mut order: Vec<usize> = (0..n_players).collect();
        let mut pairs = vec![Vec::with_capacity(n_permutations); n_players];
        for _ in 0..n_permutations {
            order.shuffle(rng);
            let mut prefix = Coalition::EMPTY;
            for &u in &order {
                pairs[u].push(prefix);
                prefix = prefix.insert(Player(u));
            }
        }
        SampledPrefixes { n_players, n_permutations, pairs }
    }

    /// Number of players.
    pub fn n_players(&self) -> usize {
        self.n_players
    }

    /// Number of sampled permutations.
    pub fn n_permutations(&self) -> usize {
        self.n_permutations
    }

    /// Predecessor coalitions of player `u`, one per sampled permutation.
    pub fn prefixes_of(&self, u: Player) -> &[Coalition] {
        &self.pairs[u.0]
    }

    /// Every distinct coalition whose value is needed to evaluate the
    /// estimator: all predecessor sets and all predecessor-plus-player sets.
    /// The caller typically keeps one (cheap) schedule per entry.
    pub fn required_coalitions(&self) -> Vec<Coalition> {
        let mut seen = std::collections::HashSet::new();
        for (u, prefs) in self.pairs.iter().enumerate() {
            for &p in prefs {
                seen.insert(p);
                seen.insert(p.insert(Player(u)));
            }
        }
        let mut v: Vec<_> = seen.into_iter().collect();
        v.sort();
        v
    }

    /// Estimates all Shapley values given a coalition-value oracle.
    pub fn estimate(&self, mut v: impl FnMut(Coalition) -> f64) -> Vec<f64> {
        let inv = 1.0 / self.n_permutations as f64;
        (0..self.n_players)
            .map(|u| {
                let player = Player(u);
                self.pairs[u]
                    .iter()
                    .map(|&pred| v(pred.insert(player)) - v(pred))
                    .sum::<f64>()
                    * inv
            })
            .collect()
    }
}

/// One-shot Monte Carlo Shapley estimate with `n_permutations` samples.
pub fn shapley_sample(
    n_players: usize,
    n_permutations: usize,
    v: impl FnMut(Coalition) -> f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    SampledPrefixes::draw(n_players, n_permutations, rng).estimate(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::shapley_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hoeffding_matches_paper_formula() {
        // k=5, eps=1, lambda=0.9: N = ceil(25 * ln(50)) = ceil(97.8) = 98.
        let n = hoeffding_permutations(5, 1.0, 0.9);
        assert_eq!(n, (25.0f64 * 50.0f64.ln()).ceil() as usize);
    }

    #[test]
    fn hoeffding_epsilon_inverts() {
        let k = 5;
        let lambda = 0.9;
        let n = hoeffding_permutations(k, 0.5, lambda);
        let eps = hoeffding_epsilon(k, n, lambda);
        assert!(eps <= 0.5 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn hoeffding_rejects_bad_lambda() {
        let _ = hoeffding_permutations(5, 0.5, 1.0);
    }

    #[test]
    fn estimator_is_exact_for_additive_games() {
        // For additive games every marginal contribution equals the weight,
        // so even one permutation is exact.
        let w = [3.0, 1.0, 4.0];
        let mut rng = StdRng::seed_from_u64(7);
        let est = shapley_sample(3, 1, |c| c.members().map(|p| w[p.0]).sum(), &mut rng);
        for (e, x) in est.iter().zip(&w) {
            assert!((e - x).abs() < 1e-12);
        }
    }

    #[test]
    fn estimator_converges_to_exact() {
        let v = |c: Coalition| {
            // Non-additive: strictly convex in coalition size plus asymmetry.
            let s = c.len() as f64;
            s * s + if c.contains(Player(0)) { 3.0 } else { 0.0 }
        };
        let exact = shapley_exact(4, v);
        let mut rng = StdRng::seed_from_u64(42);
        let est = shapley_sample(4, 20_000, v, &mut rng);
        for (e, x) in est.iter().zip(&exact) {
            assert!((e - x).abs() < 0.15, "estimate {e} too far from exact {x}");
        }
    }

    #[test]
    fn prefixes_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = SampledPrefixes::draw(4, 10, &mut rng);
        assert_eq!(s.n_players(), 4);
        assert_eq!(s.n_permutations(), 10);
        for u in 0..4 {
            assert_eq!(s.prefixes_of(Player(u)).len(), 10);
            for p in s.prefixes_of(Player(u)) {
                assert!(!p.contains(Player(u)));
            }
        }
    }

    #[test]
    fn required_coalitions_covers_all_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = SampledPrefixes::draw(3, 5, &mut rng);
        let req: std::collections::HashSet<_> =
            s.required_coalitions().into_iter().collect();
        for u in 0..3 {
            for &p in s.prefixes_of(Player(u)) {
                assert!(req.contains(&p));
                assert!(req.contains(&p.insert(Player(u))));
            }
        }
    }

    #[test]
    fn estimate_efficiency_in_expectation() {
        // Σφ̂ over one permutation telescopes to v(N) exactly.
        let v = |c: Coalition| (c.bits() as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(3);
        let s = SampledPrefixes::draw(5, 1, &mut rng);
        let est = s.estimate(v);
        let total: f64 = est.iter().sum();
        assert!((total - v(Coalition::grand(5))).abs() < 1e-9);
    }
}
