//! Exact Shapley value computation by subset enumeration.
//!
//! The Shapley value of player `u` in game `v` on player set `N` is
//!
//! ```text
//! φ_u(v) = Σ_{S ⊆ N∖{u}}  |S|! (|N|−|S|−1)! / |N|!  · (v(S ∪ {u}) − v(S))
//! ```
//!
//! (Equation 1 of the paper). Enumerating all `2^n` coalitions costs
//! `O(n·2^n)` value evaluations when values are cached, which is exactly the
//! `‖O‖·3^‖O‖`-style cost the paper quotes for its REF algorithm
//! (Proposition 3.4) and makes the fair-scheduling problem fixed-parameter
//! tractable in the number of organizations (Corollary 3.5).

use crate::{factorial, Coalition, Player};

/// Exact Shapley values of all `n` players, evaluating `v` once per
/// coalition (`2^n` evaluations, cached internally).
///
/// `v(Coalition::EMPTY)` is read but a proper characteristic function should
/// return 0 there; the result is correct either way because only marginal
/// differences are used together with the efficiency normalization.
///
/// # Panics
/// Panics if `n > 24` (value cache size) — the intended use is small player
/// counts, matching the paper's FPT setting.
pub fn shapley_exact(n: usize, mut v: impl FnMut(Coalition) -> f64) -> Vec<f64> {
    assert!(n <= 24, "exact Shapley supports at most 24 players");
    if n == 0 {
        return Vec::new();
    }
    let size = 1usize << n;
    let mut cache = Vec::with_capacity(size);
    for bits in 0..size as u64 {
        cache.push(v(Coalition::from_bits(bits)));
    }
    shapley_from_table(n, &cache)
}

/// Exact Shapley values from a precomputed dense value table indexed by
/// coalition bitmask (`table.len() == 2^n`).
pub fn shapley_from_table(n: usize, table: &[f64]) -> Vec<f64> {
    assert_eq!(table.len(), 1usize << n, "table length must be 2^n");
    let n_fact = factorial(n) as f64;
    // Precompute the permutation weights w(s) = s!(n-s-1)!/n! once.
    let weights: Vec<f64> =
        (0..n).map(|s| (factorial(s) * factorial(n - s - 1)) as f64 / n_fact).collect();
    let grand = Coalition::grand(n);
    let mut phi = vec![0.0; n];
    for (u, phi_u) in phi.iter_mut().enumerate() {
        let player = Player(u);
        let others = grand.remove(player);
        let mut acc = 0.0;
        for s in others.subsets() {
            let with_u = s.insert(player);
            acc += weights[s.len()]
                * (table[with_u.bits() as usize] - table[s.bits() as usize]);
        }
        *phi_u = acc;
    }
    phi
}

/// Exact integer Shapley values **scaled by `n!`**.
///
/// Returns `φ_u · n!` for every player, computed entirely in `i128`:
///
/// ```text
/// φ_u · n! = Σ_{S ⊆ N∖{u}} |S|! (n−|S|−1)! (v(S∪{u}) − v(S))
/// ```
///
/// This is the form the NP-hardness reduction of Theorem 5.1 needs — it
/// recovers `⌊(k+2)!·φ(a)/L⌋` exactly, which floating point cannot do once
/// the large job `L` dominates. It is also used by the scheduler so that
/// contribution comparisons are exact.
///
/// # Panics
/// Panics if `n > 24`, or on `i128` overflow in debug builds (the
/// fair-scheduling utilities fit comfortably; see DESIGN.md §2).
pub fn shapley_exact_scaled(n: usize, mut v: impl FnMut(Coalition) -> i128) -> Vec<i128> {
    assert!(n <= 24, "exact Shapley supports at most 24 players");
    if n == 0 {
        return Vec::new();
    }
    let size = 1usize << n;
    let mut cache = Vec::with_capacity(size);
    for bits in 0..size as u64 {
        cache.push(v(Coalition::from_bits(bits)));
    }
    shapley_from_table_scaled(n, &cache)
}

/// Integer variant of [`shapley_from_table`]; returns `φ_u · n!`.
pub fn shapley_from_table_scaled(n: usize, table: &[i128]) -> Vec<i128> {
    assert_eq!(table.len(), 1usize << n, "table length must be 2^n");
    let weights: Vec<i128> =
        (0..n).map(|s| (factorial(s) * factorial(n - s - 1)) as i128).collect();
    let grand = Coalition::grand(n);
    let mut phi = vec![0i128; n];
    for (u, phi_u) in phi.iter_mut().enumerate() {
        let player = Player(u);
        let others = grand.remove(player);
        let mut acc: i128 = 0;
        for s in others.subsets() {
            let with_u = s.insert(player);
            acc += weights[s.len()]
                * (table[with_u.bits() as usize] - table[s.bits() as usize]);
        }
        *phi_u = acc;
    }
    phi
}

/// The Banzhaf index (normalized marginal-contribution count), a second
/// classical power index provided for comparison with the Shapley value.
///
/// `β_u = 2^{1−n} Σ_{S ⊆ N∖{u}} (v(S∪{u}) − v(S))`.
pub fn banzhaf(n: usize, mut v: impl FnMut(Coalition) -> f64) -> Vec<f64> {
    assert!(n <= 24, "banzhaf supports at most 24 players");
    if n == 0 {
        return Vec::new();
    }
    let size = 1usize << n;
    let mut cache = Vec::with_capacity(size);
    for bits in 0..size as u64 {
        cache.push(v(Coalition::from_bits(bits)));
    }
    let grand = Coalition::grand(n);
    let scale = 1.0 / (1u64 << (n - 1)) as f64;
    (0..n)
        .map(|u| {
            let player = Player(u);
            let others = grand.remove(player);
            let mut acc = 0.0;
            for s in others.subsets() {
                let with_u = s.insert(player);
                acc += cache[with_u.bits() as usize] - cache[s.bits() as usize];
            }
            acc * scale
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TabularGame;
    use proptest::prelude::*;

    fn additive_game(weights: &[f64]) -> impl FnMut(Coalition) -> f64 + '_ {
        move |c| c.members().map(|p| weights[p.0]).sum()
    }

    #[test]
    fn additive_game_gets_own_weight() {
        let w = [3.0, 1.0, 4.0, 1.5];
        let phi = shapley_exact(4, additive_game(&w));
        for (a, b) in phi.iter().zip(&w) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gloves_game_splits_evenly() {
        let phi = shapley_exact(2, |c| if c.len() == 2 { 1.0 } else { 0.0 });
        assert!((phi[0] - 0.5).abs() < 1e-12);
        assert!((phi[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn majority_game_three_players() {
        // v = 1 iff |C| >= 2: classic symmetric majority game, phi = 1/3 each.
        let phi = shapley_exact(3, |c| if c.len() >= 2 { 1.0 } else { 0.0 });
        for p in phi {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ump_airport_game() {
        // Airport game with costs 1,2,3: v(C) = max cost in C.
        // Known Shapley values: 1/3, 1/3+1/2, 1/3+1/2+1 = (0.3333, 0.8333, 1.8333).
        let costs = [1.0, 2.0, 3.0];
        let phi =
            shapley_exact(3, |c| c.members().map(|p| costs[p.0]).fold(0.0, f64::max));
        assert!((phi[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((phi[1] - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((phi[2] - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn scaled_matches_float() {
        // Random-ish integer game; compare scaled/int against float.
        let v = |c: Coalition| (c.bits() as i128) * (c.len() as i128 + 1);
        let n = 5;
        let scaled = shapley_exact_scaled(n, v);
        let float = shapley_exact(n, |c| v(c) as f64);
        let n_fact = factorial(n) as f64;
        for (s, f) in scaled.iter().zip(&float) {
            assert!((*s as f64 / n_fact - f).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_efficiency_exact() {
        let v = |c: Coalition| (c.bits() as i128).pow(2) % 1000;
        let n = 6;
        let scaled = shapley_exact_scaled(n, v);
        let total: i128 = scaled.iter().sum();
        let vn = v(Coalition::grand(n)) - v(Coalition::EMPTY);
        assert_eq!(total, vn * factorial(n) as i128);
    }

    #[test]
    fn banzhaf_additive_game() {
        let w = [2.0, 5.0];
        let b = banzhaf(2, additive_game(&w));
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_players() {
        assert!(shapley_exact(0, |_| 0.0).is_empty());
        assert!(shapley_exact_scaled(0, |_| 0).is_empty());
    }

    proptest! {
        // Efficiency: Σφ = v(N) − v(∅) on random games.
        #[test]
        fn prop_efficiency(values in proptest::collection::vec(-100.0f64..100.0, 16)) {
            let mut values = values;
            values[0] = 0.0;
            let g = TabularGame::from_values(values);
            let phi = shapley_exact(4, |c| g.value(c));
            let total: f64 = phi.iter().sum();
            prop_assert!((total - g.value(Coalition::grand(4))).abs() < 1e-9);
        }

        // Dummy: a player with zero marginal contribution everywhere gets 0.
        #[test]
        fn prop_dummy_player(values in proptest::collection::vec(0.0f64..50.0, 8)) {
            // Build a 4-player game where player 3 is dummy: value depends
            // only on the first three players.
            let mut base = values;
            base[0] = 0.0;
            let g = TabularGame::from_fn(4, |c| {
                base[(c.bits() & 0b111) as usize]
            });
            let phi = shapley_exact(4, |c| g.value(c));
            prop_assert!(phi[3].abs() < 1e-9);
        }

        // Symmetry: permuting two symmetric players leaves values equal.
        #[test]
        fn prop_symmetry(seed in 0u64..10_000) {
            // A game that depends only on coalition size is symmetric in all
            // players; perturb deterministically by seed.
            let g = TabularGame::from_fn(5, |c| {
                ((c.len() as u64 * 7919 + seed) % 1000) as f64
            });
            let phi = shapley_exact(5, |c| g.value(c));
            for w in phi.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-9);
            }
        }

        // Additivity: φ(v+w) = φ(v) + φ(w).
        #[test]
        fn prop_additivity(
            a in proptest::collection::vec(-10.0f64..10.0, 8),
            b in proptest::collection::vec(-10.0f64..10.0, 8),
        ) {
            let (mut a, mut b) = (a, b);
            a[0] = 0.0;
            b[0] = 0.0;
            let ga = TabularGame::from_values(a);
            let gb = TabularGame::from_values(b);
            let gsum = ga.sum(&gb);
            let pa = shapley_exact(3, |c| ga.value(c));
            let pb = shapley_exact(3, |c| gb.value(c));
            let ps = shapley_exact(3, |c| gsum.value(c));
            for i in 0..3 {
                prop_assert!((ps[i] - pa[i] - pb[i]).abs() < 1e-9);
            }
        }
    }
}
