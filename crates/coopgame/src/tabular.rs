//! Dense array-backed cooperative games.

use crate::Coalition;

/// A cooperative game stored as a dense table of `2^n` coalition values.
///
/// This is the convenient representation for small games (tests, property
/// checks, the supermodularity counterexample of Proposition 5.5). The
/// fair-scheduling algorithms never materialize the full table for the
/// general case; they evaluate coalition values from per-coalition schedule
/// state instead.
#[derive(Clone, Debug, PartialEq)]
pub struct TabularGame {
    n: usize,
    values: Vec<f64>,
}

impl TabularGame {
    /// Builds a game on `n` players by evaluating `v` on every coalition.
    ///
    /// The value of the empty coalition is forced to 0 (a characteristic
    /// function must satisfy `v(∅) = 0`).
    ///
    /// # Panics
    /// Panics if `n > 24` (the dense table would exceed 128 MiB).
    pub fn from_fn(n: usize, mut v: impl FnMut(Coalition) -> f64) -> Self {
        assert!(n <= 24, "dense tabular games support at most 24 players");
        let size = 1usize << n;
        let mut values = Vec::with_capacity(size);
        values.push(0.0);
        for bits in 1..size as u64 {
            values.push(v(Coalition::from_bits(bits)));
        }
        TabularGame { n, values }
    }

    /// Builds a game directly from a table indexed by coalition bitmask.
    ///
    /// # Panics
    /// Panics if the table length is not a power of two or `values[0] != 0`.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(values.len().is_power_of_two(), "table length must be 2^n");
        assert_eq!(values[0], 0.0, "v(empty) must be 0");
        let n = values.len().trailing_zeros() as usize;
        TabularGame { n, values }
    }

    /// Number of players.
    #[inline]
    pub fn n_players(&self) -> usize {
        self.n
    }

    /// The value `v(c)` of a coalition.
    #[inline]
    pub fn value(&self, c: Coalition) -> f64 {
        self.values[c.bits() as usize]
    }

    /// The grand coalition of this game.
    #[inline]
    pub fn grand(&self) -> Coalition {
        Coalition::grand(self.n)
    }

    /// Pointwise sum of two games on the same player set (used to exercise
    /// the additivity axiom).
    ///
    /// # Panics
    /// Panics if the player counts differ.
    pub fn sum(&self, other: &TabularGame) -> TabularGame {
        assert_eq!(self.n, other.n, "games must share the player set");
        let values = self.values.iter().zip(&other.values).map(|(a, b)| a + b).collect();
        TabularGame { n: self.n, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Player;

    #[test]
    fn from_fn_forces_empty_to_zero() {
        let g = TabularGame::from_fn(3, |_| 42.0);
        assert_eq!(g.value(Coalition::EMPTY), 0.0);
        assert_eq!(g.value(Coalition::grand(3)), 42.0);
    }

    #[test]
    fn from_values_roundtrip() {
        let g = TabularGame::from_values(vec![0.0, 1.0, 2.0, 5.0]);
        assert_eq!(g.n_players(), 2);
        assert_eq!(g.value(Coalition::singleton(Player(0))), 1.0);
        assert_eq!(g.value(Coalition::singleton(Player(1))), 2.0);
        assert_eq!(g.value(Coalition::grand(2)), 5.0);
    }

    #[test]
    #[should_panic]
    fn from_values_rejects_nonzero_empty() {
        let _ = TabularGame::from_values(vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn from_values_rejects_bad_length() {
        let _ = TabularGame::from_values(vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn sum_is_pointwise() {
        let a = TabularGame::from_fn(2, |c| c.len() as f64);
        let b = TabularGame::from_fn(2, |c| 2.0 * c.len() as f64);
        let s = a.sum(&b);
        assert_eq!(s.value(Coalition::grand(2)), 6.0);
    }
}
