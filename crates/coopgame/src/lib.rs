//! Cooperative game theory primitives.
//!
//! This crate provides the game-theoretic substrate used by the
//! `fairsched` fair-scheduling library:
//!
//! * [`Coalition`] — a compact bitmask representation of player subsets with
//!   fast subset enumeration,
//! * [`shapley::shapley_exact`] / [`shapley::shapley_exact_scaled`] — exact
//!   Shapley values computed by subset enumeration (floating point and exact
//!   integer variants),
//! * [`sampling::shapley_sample`] — the permutation-sampling Monte Carlo
//!   estimator together with the Hoeffding sample-size bound used by the
//!   paper's RAND algorithm (Theorem 5.6 of Skowron & Rzadca, SPAA 2013),
//! * [`properties`] — checkers for the Shapley axioms (efficiency, symmetry,
//!   dummy, additivity) and structural game properties (monotonicity,
//!   supermodularity, core membership).
//!
//! A cooperative (transferable-utility) game on `n` players is a function
//! `v : 2^N -> R` with `v(∅) = 0`. Games are passed as closures over
//! [`Coalition`]; [`TabularGame`] offers a dense array-backed implementation
//! convenient for tests and small games.
//!
//! # Example
//!
//! ```
//! use coopgame::{Coalition, Player, TabularGame, shapley::shapley_exact};
//!
//! // A 2-player "gloves" game: a pair is worth 1, singletons nothing.
//! let game = TabularGame::from_fn(2, |c| if c.len() == 2 { 1.0 } else { 0.0 });
//! let phi = shapley_exact(2, |c| game.value(c));
//! assert_eq!(phi, vec![0.5, 0.5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalition;
mod tabular;

pub mod properties;
pub mod sampling;
pub mod shapley;

pub use coalition::{Coalition, Player, SubsetIter, SupersetIter};
pub use tabular::TabularGame;

/// Factorials as `u128`. Panics for `n > 34` (the largest factorial that
/// fits in a `u128`).
///
/// Used by the exact integer Shapley computation, where values are scaled by
/// `n!` to stay in integer arithmetic.
#[inline]
pub fn factorial(n: usize) -> u128 {
    const TABLE_LEN: usize = 35;
    static TABLE: [u128; TABLE_LEN] = {
        let mut t = [1u128; TABLE_LEN];
        let mut i = 1;
        while i < TABLE_LEN {
            t[i] = t[i - 1] * i as u128;
            i += 1;
        }
        t
    };
    TABLE[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3_628_800);
    }

    #[test]
    fn factorial_max_supported() {
        // 34! is the largest factorial representable in u128.
        let f34 = factorial(34);
        assert_eq!(f34 / factorial(33), 34);
    }

    #[test]
    #[should_panic]
    fn factorial_overflow_panics() {
        let _ = factorial(35);
    }
}
