//! Bitmask coalitions and subset enumeration.

use std::fmt;

/// A player in a cooperative game, identified by a zero-based index.
///
/// In `fairsched`, players are organizations; the index matches the
/// organization index in the trace.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Player(pub usize);

/// A coalition (subset of players) represented as a bitmask.
///
/// Supports up to 64 players; the fair-scheduling algorithms built on top
/// are exponential in the player count, so in practice far fewer are used.
///
/// The bitmask representation gives:
/// * O(1) membership / insert / remove / union / intersection,
/// * a dense index (`bits()`) for array-backed per-coalition tables,
/// * `O(2^|C|)` enumeration of all subsets of a coalition via the standard
///   `sub = (sub - 1) & mask` trick ([`Coalition::subsets`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coalition(u64);

impl Coalition {
    /// The empty coalition.
    pub const EMPTY: Coalition = Coalition(0);

    /// The grand coalition of players `0..n`.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn grand(n: usize) -> Self {
        assert!(n <= 64, "at most 64 players are supported");
        if n == 64 {
            Coalition(u64::MAX)
        } else {
            Coalition((1u64 << n) - 1)
        }
    }

    /// The coalition containing only `player`.
    #[inline]
    pub fn singleton(player: Player) -> Self {
        assert!(player.0 < 64, "player index out of range");
        Coalition(1u64 << player.0)
    }

    /// Builds a coalition from a raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        Coalition(bits)
    }

    /// The raw bitmask. Bit `i` is set iff player `i` is a member.
    ///
    /// Suitable as a dense index into a `Vec` of length `2^n`.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the coalition has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `player` is a member.
    #[inline]
    pub const fn contains(self, player: Player) -> bool {
        player.0 < 64 && (self.0 >> player.0) & 1 == 1
    }

    /// The coalition with `player` added.
    #[inline]
    pub fn insert(self, player: Player) -> Self {
        assert!(player.0 < 64, "player index out of range");
        Coalition(self.0 | (1u64 << player.0))
    }

    /// The coalition with `player` removed.
    #[inline]
    pub fn remove(self, player: Player) -> Self {
        assert!(player.0 < 64, "player index out of range");
        Coalition(self.0 & !(1u64 << player.0))
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Coalition) -> Self {
        Coalition(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: Coalition) -> Self {
        Coalition(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    #[inline]
    pub const fn difference(self, other: Coalition) -> Self {
        Coalition(self.0 & !other.0)
    }

    /// Whether `self` is a (non-strict) subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: Coalition) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    #[inline]
    pub fn members(self) -> impl Iterator<Item = Player> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(Player(i))
            }
        })
    }

    /// Iterates over **all** subsets of this coalition, including the empty
    /// coalition and the coalition itself. Yields `2^len` coalitions.
    #[inline]
    pub fn subsets(self) -> SubsetIter {
        SubsetIter { mask: self.0, sub: self.0, done: false }
    }

    /// Iterates over all **proper** subsets (everything except `self`).
    #[inline]
    pub fn proper_subsets(self) -> impl Iterator<Item = Coalition> {
        let me = self;
        self.subsets().filter(move |&c| c != me)
    }

    /// Iterates over all supersets of `self` within `universe` (both
    /// included), i.e. every `T` with `self ⊆ T ⊆ universe`. Yields
    /// `2^(|universe| − |self|)` coalitions.
    ///
    /// This is the dual of [`Coalition::subsets`]: enumerating the free
    /// positions `universe ∖ self` with the `(x − 1) & mask` trick. The
    /// coalition lattice uses it to invalidate the Shapley caches of every
    /// tracked coalition sitting above a changed sub-simulation.
    ///
    /// # Panics
    /// Panics (in debug builds) if `self` is not a subset of `universe`.
    #[inline]
    pub fn supersets_within(self, universe: Coalition) -> SupersetIter {
        debug_assert!(
            self.is_subset_of(universe),
            "supersets_within requires self ⊆ universe"
        );
        let free = universe.0 & !self.0;
        SupersetIter { base: self.0, free, x: free, done: false }
    }
}

impl fmt::Debug for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.members() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", p.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Player> for Coalition {
    fn from_iter<T: IntoIterator<Item = Player>>(iter: T) -> Self {
        let mut c = Coalition::EMPTY;
        for p in iter {
            c = c.insert(p);
        }
        c
    }
}

/// Iterator over all subsets of a coalition, produced by the
/// `sub = (sub - 1) & mask` enumeration (descending bitmask order, ending
/// with the empty set).
pub struct SubsetIter {
    mask: u64,
    sub: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = Coalition;

    #[inline]
    fn next(&mut self) -> Option<Coalition> {
        if self.done {
            return None;
        }
        let current = Coalition(self.sub);
        if self.sub == 0 {
            self.done = true;
        } else {
            self.sub = (self.sub - 1) & self.mask;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // Exact count is 2^(remaining set bits pattern) which is cheap to
            // bound but not to compute exactly mid-iteration; give the trivial
            // upper bound.
            let max = 1usize.checked_shl(self.mask.count_ones()).unwrap_or(usize::MAX);
            (1, Some(max))
        }
    }
}

/// Iterator over the supersets of a coalition within a universe, produced
/// by enumerating subsets of the free positions (descending bitmask order,
/// starting at the universe and ending with the base coalition itself).
pub struct SupersetIter {
    base: u64,
    free: u64,
    x: u64,
    done: bool,
}

impl Iterator for SupersetIter {
    type Item = Coalition;

    #[inline]
    fn next(&mut self) -> Option<Coalition> {
        if self.done {
            return None;
        }
        let current = Coalition(self.base | self.x);
        if self.x == 0 {
            self.done = true;
        } else {
            self.x = (self.x - 1) & self.free;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            let max = 1usize.checked_shl(self.free.count_ones()).unwrap_or(usize::MAX);
            (1, Some(max))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn grand_coalition_has_all_players() {
        let g = Coalition::grand(5);
        assert_eq!(g.len(), 5);
        for i in 0..5 {
            assert!(g.contains(Player(i)));
        }
        assert!(!g.contains(Player(5)));
    }

    #[test]
    fn grand_64_players() {
        let g = Coalition::grand(64);
        assert_eq!(g.len(), 64);
        assert!(g.contains(Player(63)));
    }

    #[test]
    fn empty_is_empty() {
        assert!(Coalition::EMPTY.is_empty());
        assert_eq!(Coalition::EMPTY.len(), 0);
        assert_eq!(Coalition::EMPTY.members().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let c = Coalition::EMPTY.insert(Player(3)).insert(Player(7));
        assert_eq!(c.len(), 2);
        assert!(c.contains(Player(3)));
        assert!(c.contains(Player(7)));
        let c2 = c.remove(Player(3));
        assert!(!c2.contains(Player(3)));
        assert!(c2.contains(Player(7)));
    }

    #[test]
    fn set_operations() {
        let a: Coalition = [Player(0), Player(1)].into_iter().collect();
        let b: Coalition = [Player(1), Player(2)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), Coalition::singleton(Player(1)));
        assert_eq!(a.difference(b), Coalition::singleton(Player(0)));
        assert!(a.intersection(b).is_subset_of(a));
        assert!(a.is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn subsets_enumerates_powerset() {
        let c = Coalition::grand(4);
        let subs: Vec<_> = c.subsets().collect();
        assert_eq!(subs.len(), 16);
        let unique: HashSet<_> = subs.iter().copied().collect();
        assert_eq!(unique.len(), 16);
        assert!(unique.contains(&Coalition::EMPTY));
        assert!(unique.contains(&c));
    }

    #[test]
    fn subsets_of_sparse_mask() {
        let c: Coalition = [Player(1), Player(4), Player(9)].into_iter().collect();
        let subs: Vec<_> = c.subsets().collect();
        assert_eq!(subs.len(), 8);
        for s in subs {
            assert!(s.is_subset_of(c));
        }
    }

    #[test]
    fn proper_subsets_excludes_self() {
        let c = Coalition::grand(3);
        let subs: Vec<_> = c.proper_subsets().collect();
        assert_eq!(subs.len(), 7);
        assert!(!subs.contains(&c));
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<_> = Coalition::EMPTY.subsets().collect();
        assert_eq!(subs, vec![Coalition::EMPTY]);
    }

    #[test]
    fn debug_format() {
        let c: Coalition = [Player(0), Player(2)].into_iter().collect();
        assert_eq!(format!("{c:?}"), "{0,2}");
    }

    #[test]
    fn supersets_within_enumerates_interval() {
        let base = Coalition::singleton(Player(1));
        let universe = Coalition::grand(3);
        let sups: HashSet<_> = base.supersets_within(universe).collect();
        assert_eq!(sups.len(), 4); // {1}, {0,1}, {1,2}, {0,1,2}
        assert!(sups.contains(&base));
        assert!(sups.contains(&universe));
        for s in &sups {
            assert!(base.is_subset_of(*s) && s.is_subset_of(universe));
        }
    }

    #[test]
    fn supersets_within_self_universe() {
        let c = Coalition::grand(4);
        let sups: Vec<_> = c.supersets_within(c).collect();
        assert_eq!(sups, vec![c]);
    }

    proptest! {
        #[test]
        fn prop_members_roundtrip(bits in 0u64..(1 << 16)) {
            let c = Coalition::from_bits(bits);
            let rebuilt: Coalition = c.members().collect();
            prop_assert_eq!(c, rebuilt);
            prop_assert_eq!(c.len(), c.members().count());
        }

        #[test]
        fn prop_subset_count_is_power_of_two(bits in 0u64..(1 << 12)) {
            let c = Coalition::from_bits(bits);
            let count = c.subsets().count();
            prop_assert_eq!(count, 1usize << c.len());
        }

        #[test]
        fn prop_all_subsets_are_subsets(bits in 0u64..(1 << 10)) {
            let c = Coalition::from_bits(bits);
            for s in c.subsets() {
                prop_assert!(s.is_subset_of(c));
                prop_assert_eq!(s.union(c), c);
                prop_assert_eq!(s.intersection(c), s);
            }
        }

        #[test]
        fn prop_supersets_are_subset_duals(bits in 0u64..(1 << 10)) {
            // Supersets of S within U ↔ complements of subsets of U∖S.
            let u = Coalition::grand(10);
            let s = Coalition::from_bits(bits);
            let sups: HashSet<_> = s.supersets_within(u).collect();
            prop_assert_eq!(sups.len(), 1usize << (10 - s.len()));
            for t in u.subsets() {
                prop_assert_eq!(sups.contains(&t), s.is_subset_of(t));
            }
        }

        #[test]
        fn prop_union_intersection_laws(a in 0u64..(1 << 14), b in 0u64..(1 << 14)) {
            let (a, b) = (Coalition::from_bits(a), Coalition::from_bits(b));
            // |A ∪ B| + |A ∩ B| = |A| + |B|
            prop_assert_eq!(
                a.union(b).len() + a.intersection(b).len(),
                a.len() + b.len()
            );
            prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
        }
    }
}
