//! Structural property checks for cooperative games.
//!
//! These checkers power the paper-replication tests: Proposition 5.5 shows
//! the scheduling game is **not** supermodular (which is why the
//! Liben-Nowell et al. sampling bounds had to be re-derived), and the
//! Shapley axioms of Section 3 are verified against the implementation on
//! random games.

use crate::{Coalition, Player, TabularGame};

/// Tolerance used for floating-point property checks.
const EPS: f64 = 1e-9;

/// Whether the game is monotone: `S ⊆ T ⇒ v(S) ≤ v(T)`.
pub fn is_monotone(game: &TabularGame) -> bool {
    let n = game.n_players();
    let grand = Coalition::grand(n);
    // Checking one-element extensions suffices.
    for bits in 0..(1u64 << n) {
        let s = Coalition::from_bits(bits);
        for p in grand.difference(s).members() {
            if game.value(s.insert(p)) < game.value(s) - EPS {
                return false;
            }
        }
    }
    true
}

/// Whether the game is supermodular (convex):
/// `v(S ∪ {i}) − v(S) ≤ v(T ∪ {i}) − v(T)` for all `S ⊆ T`, `i ∉ T`.
///
/// Uses the standard pairwise criterion: supermodular iff for all `i ≠ j`
/// and all `S ⊆ N∖{i,j}`:
/// `v(S∪{i,j}) − v(S∪{j}) ≥ v(S∪{i}) − v(S)`.
pub fn is_supermodular(game: &TabularGame) -> bool {
    supermodularity_violation(game).is_none()
}

/// A witness that the game is not supermodular, if one exists:
/// `(S, i, j)` with `v(S∪{i,j}) − v(S∪{j}) < v(S∪{i}) − v(S)`.
pub fn supermodularity_violation(
    game: &TabularGame,
) -> Option<(Coalition, Player, Player)> {
    let n = game.n_players();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let pi = Player(i);
            let pj = Player(j);
            let rest = Coalition::grand(n).remove(pi).remove(pj);
            for s in rest.subsets() {
                let lhs = game.value(s.insert(pi).insert(pj)) - game.value(s.insert(pj));
                let rhs = game.value(s.insert(pi)) - game.value(s);
                if lhs < rhs - EPS {
                    return Some((s, pi, pj));
                }
            }
        }
    }
    None
}

/// Whether the game is additive: `v(S) = Σ_{i∈S} v({i})`.
pub fn is_additive(game: &TabularGame) -> bool {
    let n = game.n_players();
    for bits in 0..(1u64 << n) {
        let s = Coalition::from_bits(bits);
        let sum: f64 = s.members().map(|p| game.value(Coalition::singleton(p))).sum();
        if (game.value(s) - sum).abs() > EPS {
            return false;
        }
    }
    true
}

/// Whether the game is superadditive:
/// `v(S ∪ T) ≥ v(S) + v(T)` for disjoint `S`, `T`.
pub fn is_superadditive(game: &TabularGame) -> bool {
    let n = game.n_players();
    for s_bits in 0..(1u64 << n) {
        let s = Coalition::from_bits(s_bits);
        let complement = Coalition::grand(n).difference(s);
        for t in complement.subsets() {
            if t.is_empty() {
                continue;
            }
            if game.value(s.union(t)) < game.value(s) + game.value(t) - EPS {
                return false;
            }
        }
    }
    true
}

/// Whether a payoff vector is an imputation: efficient
/// (`Σx = v(N)`) and individually rational (`x_i ≥ v({i})`).
pub fn is_imputation(game: &TabularGame, payoff: &[f64]) -> bool {
    let n = game.n_players();
    assert_eq!(payoff.len(), n);
    let total: f64 = payoff.iter().sum();
    if (total - game.value(game.grand())).abs() > 1e-6 {
        return false;
    }
    (0..n).all(|i| payoff[i] >= game.value(Coalition::singleton(Player(i))) - EPS)
}

/// Whether a payoff vector lies in the core:
/// efficient and `Σ_{i∈S} x_i ≥ v(S)` for every coalition `S`.
pub fn is_in_core(game: &TabularGame, payoff: &[f64]) -> bool {
    let n = game.n_players();
    assert_eq!(payoff.len(), n);
    let total: f64 = payoff.iter().sum();
    if (total - game.value(game.grand())).abs() > 1e-6 {
        return false;
    }
    for bits in 1..(1u64 << n) {
        let s = Coalition::from_bits(bits);
        let share: f64 = s.members().map(|p| payoff[p.0]).sum();
        if share < game.value(s) - 1e-6 {
            return false;
        }
    }
    true
}

/// Checks all four Shapley axioms of Section 3 of the paper against a
/// candidate payoff division. Returns the list of violated axiom names
/// (empty = all satisfied). `symmetry` and `dummy` are structural checks on
/// the payoff given the game; `additivity` requires a second game and is
/// checked separately by [`additivity_holds`].
pub fn shapley_axiom_violations(game: &TabularGame, payoff: &[f64]) -> Vec<&'static str> {
    let n = game.n_players();
    assert_eq!(payoff.len(), n);
    let mut violated = Vec::new();

    // Efficiency.
    let total: f64 = payoff.iter().sum();
    if (total - game.value(game.grand())).abs() > 1e-6 {
        violated.push("efficiency");
    }

    // Symmetry: players with identical marginal contributions get equal pay.
    'sym: for i in 0..n {
        for j in (i + 1)..n {
            let (pi, pj) = (Player(i), Player(j));
            let rest = Coalition::grand(n).remove(pi).remove(pj);
            let symmetric = rest.subsets().all(|s| {
                (game.value(s.insert(pi)) - game.value(s.insert(pj))).abs() < EPS
            });
            if symmetric && (payoff[i] - payoff[j]).abs() > 1e-6 {
                violated.push("symmetry");
                break 'sym;
            }
        }
    }

    // Dummy: zero marginal contribution everywhere ⇒ zero payoff.
    for (i, &pay) in payoff.iter().enumerate() {
        let pi = Player(i);
        let rest = Coalition::grand(n).remove(pi);
        let dummy = rest
            .subsets()
            .all(|s| (game.value(s.insert(pi)) - game.value(s)).abs() < EPS);
        if dummy && pay.abs() > 1e-6 {
            violated.push("dummy");
            break;
        }
    }

    violated
}

/// Checks the additivity axiom for a solution function `f` on a pair of
/// games: `f(v+w) = f(v) + f(w)`.
pub fn additivity_holds(
    a: &TabularGame,
    b: &TabularGame,
    mut f: impl FnMut(&TabularGame) -> Vec<f64>,
) -> bool {
    let fa = f(a);
    let fb = f(b);
    let fs = f(&a.sum(b));
    fa.iter().zip(&fb).zip(&fs).all(|((x, y), z)| (x + y - z).abs() < 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::shapley_exact;
    use proptest::prelude::*;

    fn size_game(n: usize, f: impl Fn(usize) -> f64) -> TabularGame {
        TabularGame::from_fn(n, |c| f(c.len()))
    }

    #[test]
    fn convex_size_game_is_supermodular() {
        let g = size_game(4, |s| (s * s) as f64);
        assert!(is_supermodular(&g));
        assert!(is_monotone(&g));
        assert!(is_superadditive(&g));
    }

    #[test]
    fn concave_size_game_is_not_supermodular() {
        let g = size_game(4, |s| (s as f64).sqrt());
        let witness = supermodularity_violation(&g);
        assert!(witness.is_some());
    }

    #[test]
    fn paper_proposition_5_5_counterexample() {
        // Organizations a, b, c each own one machine; a and b release two
        // unit jobs at t=0; c has none. Values at t=2 (from the paper):
        // v({a,c}) = v({b,c}) = 4, v({a,b,c}) = 7, v({c}) = 0.
        // v({a,b})? Two machines, four unit jobs: all 4 scheduled by t=2
        // (two at t=0 worth 2 each, two at t=1 worth 1 each) = 6.
        // v({a}) = v({b}) = 3 (own machine: jobs at t=0 and t=1).
        let (a, b, c) = (Player(0), Player(1), Player(2));
        let g = TabularGame::from_fn(3, |coal| {
            let machines = coal.len() as i64;
            let jobs = [a, b].iter().filter(|p| coal.contains(**p)).count() as i64 * 2;
            // Unit jobs, all released at 0: at each step min(machines, left)
            // start; value at t=2 of a unit job started at s is (2 - s).
            let mut left = jobs;
            let mut value = 0i64;
            for s in 0..2 {
                let started = machines.min(left);
                left -= started;
                value += started * (2 - s);
            }
            value as f64
        });
        assert_eq!(g.value([a, c].into_iter().collect()), 4.0);
        assert_eq!(g.value([b, c].into_iter().collect()), 4.0);
        assert_eq!(g.value(Coalition::grand(3)), 7.0);
        assert_eq!(g.value(Coalition::singleton(c)), 0.0);
        // v({a,b,c}) + v({c}) < v({a,c}) + v({b,c})  (7 + 0 < 4 + 4)
        assert!(!is_supermodular(&g));
        let (s, _, _) = supermodularity_violation(&g).unwrap();
        assert!(s.is_subset_of(Coalition::grand(3)));
    }

    #[test]
    fn shapley_satisfies_axioms_on_fixed_game() {
        let g = TabularGame::from_fn(4, |c| (c.bits() % 17) as f64 * c.len() as f64);
        let phi = shapley_exact(4, |c| g.value(c));
        assert!(shapley_axiom_violations(&g, &phi).is_empty());
    }

    #[test]
    fn unequal_split_violates_symmetry() {
        let g = size_game(2, |s| s as f64);
        let bad = vec![1.5, 0.5];
        let v = shapley_axiom_violations(&g, &bad);
        assert!(v.contains(&"symmetry"));
    }

    #[test]
    fn nonzero_dummy_detected() {
        // Player 1 is dummy (value depends only on player 0).
        let g =
            TabularGame::from_fn(2, |c| if c.contains(Player(0)) { 5.0 } else { 0.0 });
        let bad = vec![4.0, 1.0];
        let v = shapley_axiom_violations(&g, &bad);
        assert!(v.contains(&"dummy"));
    }

    #[test]
    fn additive_game_checks() {
        let g = TabularGame::from_fn(3, |c| c.members().map(|p| (p.0 + 1) as f64).sum());
        assert!(is_additive(&g));
        assert!(is_superadditive(&g));
        assert!(is_supermodular(&g));
    }

    #[test]
    fn core_membership() {
        // Supermodular game: Shapley value is in the core.
        let g = size_game(3, |s| (s * s) as f64);
        let phi = shapley_exact(3, |c| g.value(c));
        assert!(is_in_core(&g, &phi));
        assert!(is_imputation(&g, &phi));
        // Giving everything to player 0 violates the core for {1,2}.
        let unfair = vec![9.0, 0.0, 0.0];
        assert!(!is_in_core(&g, &unfair));
    }

    #[test]
    fn additivity_of_shapley() {
        let a = TabularGame::from_fn(3, |c| (c.bits() * 3 % 7) as f64);
        let b = TabularGame::from_fn(3, |c| (c.bits() * 5 % 11) as f64);
        assert!(additivity_holds(&a, &b, |g| {
            shapley_exact(g.n_players(), |c| g.value(c))
        }));
    }

    proptest! {
        // The exact Shapley value satisfies efficiency/symmetry/dummy on
        // arbitrary random games.
        #[test]
        fn prop_shapley_axioms(values in proptest::collection::vec(-20.0f64..20.0, 16)) {
            let mut values = values;
            values[0] = 0.0;
            let g = TabularGame::from_values(values);
            let phi = shapley_exact(4, |c| g.value(c));
            prop_assert!(shapley_axiom_violations(&g, &phi).is_empty());
        }

        // Supermodular games are superadditive.
        #[test]
        fn prop_supermodular_implies_superadditive(
            w in proptest::collection::vec(0.0f64..5.0, 4)
        ) {
            // Convex size-based game scaled by random weights sum: still
            // supermodular because it's a convex function of |C| only.
            let total: f64 = w.iter().sum();
            let g = TabularGame::from_fn(4, |c| {
                let s = c.len() as f64;
                total * s * s
            });
            prop_assert!(is_supermodular(&g));
            prop_assert!(is_superadditive(&g));
        }
    }
}
