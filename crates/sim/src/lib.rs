//! Discrete-event simulator for multi-organizational cluster scheduling.
//!
//! This crate is the *substrate* the paper's evaluation runs on: it replays
//! a [`fairsched_core::Trace`] against any online scheduler implementing
//! [`fairsched_core::scheduler::Scheduler`], enforcing the model invariants
//! (greediness, per-organization FIFO, non-preemption, non-clairvoyance)
//! and collecting the schedule, exact `ψ_sp` utilities and resource
//! utilization.
//!
//! # Quick start
//!
//! Scheduler selection goes through the [`Simulation`] session builder:
//! name any algorithm in the [`fairsched_core::scheduler::registry`] by
//! its spec string and run.
//!
//! ```
//! use fairsched_core::Trace;
//! use fairsched_sim::Simulation;
//!
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 1);
//! b.job(alpha, 0, 3).job(beta, 0, 3).job(alpha, 1, 2);
//! let trace = b.build().unwrap();
//!
//! let result = Simulation::new(&trace)
//!     .scheduler("roundrobin")?
//!     .horizon(100)
//!     .run()?;
//! assert_eq!(result.schedule.len(), 3);
//! assert!(result.utilization > 0.0);
//! # Ok::<(), fairsched_sim::SimError>(())
//! ```
//!
//! The pre-session entry points [`simulate`] / [`simulate_with_options`]
//! remain for code that already holds a `&mut dyn Scheduler`; they are
//! thin wrappers over [`run_scheduler`] and report engine-contract
//! violations as the same typed [`SimError`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;
pub mod exhaustive;
pub mod gantt;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod session;
pub mod stepper;

pub use cluster::Cluster;
pub use engine::{run_scheduler, simulate, simulate_with_options, SimOptions, SimResult};
pub use report::{
    MetricColumn, MetricContext, MetricError, MetricFactory, MetricOutput,
    MetricRegistry, MetricSpec, MetricValue, Report, TimeSeriesColumn,
};
pub use session::{GridCell, ReportCell, SimError, Simulation, DEFAULT_REPORT_METRICS};
pub use stepper::{Admission, SimSession, SNAPSHOT_SCHEMA};
