//! Discrete-event simulator for multi-organizational cluster scheduling.
//!
//! This crate is the *substrate* the paper's evaluation runs on: it replays
//! a [`fairsched_core::Trace`] against any online scheduler implementing
//! [`fairsched_core::scheduler::Scheduler`], enforcing the model invariants
//! (greediness, per-organization FIFO, non-preemption, non-clairvoyance)
//! and collecting the schedule, exact `ψ_sp` utilities and resource
//! utilization.
//!
//! # Quick start
//!
//! ```
//! use fairsched_core::{Trace, scheduler::RoundRobinScheduler};
//! use fairsched_sim::simulate;
//!
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 1);
//! b.job(alpha, 0, 3).job(beta, 0, 3).job(alpha, 1, 2);
//! let trace = b.build().unwrap();
//!
//! let result = simulate(&trace, &mut RoundRobinScheduler::new(), 100);
//! assert_eq!(result.schedule.len(), 3);
//! assert!(result.utilization > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;
pub mod exhaustive;
pub mod gantt;
pub mod metrics;

pub use cluster::Cluster;
pub use engine::{simulate, simulate_with_options, SimOptions, SimResult};
