//! Schedule metrics beyond `ψ_sp`: per-organization flow time, waiting
//! time, stretch, and utilization breakdowns.

use fairsched_core::model::{OrgId, Time, Trace};
use fairsched_core::schedule::Schedule;

/// Per-organization aggregate metrics of a (partial) schedule at a horizon.
#[derive(Clone, Debug, PartialEq)]
pub struct OrgMetrics {
    /// The organization.
    pub org: OrgId,
    /// Completed jobs.
    pub completed: usize,
    /// Total flow time (completion − release) of completed jobs.
    pub flow_time: Time,
    /// Total waiting time (start − release) of started jobs.
    pub waiting_time: Time,
    /// Mean stretch (flow / processing time) of completed jobs, 0 if none.
    pub mean_stretch: f64,
    /// Unit parts executed before the horizon.
    pub units: Time,
}

/// Computes [`OrgMetrics`] for every organization.
pub fn org_metrics(trace: &Trace, schedule: &Schedule, horizon: Time) -> Vec<OrgMetrics> {
    let mut out: Vec<OrgMetrics> = (0..trace.n_orgs())
        .map(|u| OrgMetrics {
            org: OrgId(u as u32),
            completed: 0,
            flow_time: 0,
            waiting_time: 0,
            mean_stretch: 0.0,
            units: 0,
        })
        .collect();
    let mut stretch_sums = vec![0.0f64; trace.n_orgs()];
    for e in schedule.entries() {
        let m = &mut out[e.org.index()];
        let release = trace.job(e.job).release;
        m.units += e.units_before(horizon);
        if e.start <= horizon {
            m.waiting_time += e.start - release;
        }
        if e.completion() <= horizon {
            m.completed += 1;
            m.flow_time += e.completion() - release;
            stretch_sums[e.org.index()] +=
                (e.completion() - release) as f64 / e.proc_time as f64;
        }
    }
    for (m, s) in out.iter_mut().zip(stretch_sums) {
        if m.completed > 0 {
            m.mean_stretch = s / m.completed as f64;
        }
    }
    out
}

/// The machine-time upper bound on completed units by `horizon`:
/// `min(m·horizon, Σ_j min(p_j, horizon − r_j))`. No schedule — greedy or
/// not — can complete more; used to bound optimal utilization in the
/// Theorem 6.2 experiments.
pub fn units_upper_bound(trace: &Trace, n_machines: usize, horizon: Time) -> Time {
    let work: Time = trace
        .jobs()
        .iter()
        .map(|j| j.proc_time.min(horizon.saturating_sub(j.release)))
        .sum();
    work.min((n_machines as Time).saturating_mul(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_core::model::Trace;
    use fairsched_core::scheduler::FifoScheduler;

    fn run() -> (Trace, Schedule) {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 4).job(c, 1, 2);
        let trace = b.build().unwrap();
        let r =
            crate::simulate(&trace, &mut FifoScheduler::new(), 100).expect("valid run");
        (trace, r.schedule)
    }

    #[test]
    fn per_org_flow_and_waiting() {
        let (trace, schedule) = run();
        let m = org_metrics(&trace, &schedule, 100);
        // Each org has its own machine: both start at release.
        assert_eq!(m[0].completed, 1);
        assert_eq!(m[0].flow_time, 4);
        assert_eq!(m[0].waiting_time, 0);
        assert_eq!(m[1].flow_time, 2);
        assert_eq!(m[0].units, 4);
        assert!((m[0].mean_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizon_truncates_metrics() {
        let (trace, schedule) = run();
        let m = org_metrics(&trace, &schedule, 2);
        assert_eq!(m[0].completed, 0);
        assert_eq!(m[0].units, 2);
    }

    #[test]
    fn upper_bound_formula() {
        let (trace, _) = run();
        // horizon 3: job a contributes min(4,3)=3; job b min(2,2)=2 -> 5,
        // capped by 2 machines * 3 = 6 -> 5.
        assert_eq!(units_upper_bound(&trace, 2, 3), 5);
        // horizon 1: a: 1, b: 0 -> 1, cap 2 -> 1.
        assert_eq!(units_upper_bound(&trace, 2, 1), 1);
        // tiny machine cap.
        assert_eq!(units_upper_bound(&trace, 1, 3), 3);
    }
}
