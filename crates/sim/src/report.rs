//! The metrics registry and the typed `Report` pipeline — the measurement
//! half of the spec-addressable triad.
//!
//! PR 1 made *schedulers* pure data (`SchedulerSpec` through
//! `fairsched_core::scheduler::registry`), PR 3 did the same for
//! *workloads* (`WorkloadSpec` through `fairsched_workloads::spec`); this
//! module completes the triad for *fairness measures*, so a whole
//! evaluation — which policies, on which workloads, measured how — is
//! expressible as strings. It mirrors the other two registries piece for
//! piece:
//!
//! * [`MetricSpec`] — a parsed, canonical description of a fairness
//!   index, written as a string such as `"delay"`, `"delay:norm=ideal"`,
//!   `"psi"`, `"utility:kind=contrib"`, `"stretch"` or `"ranking"`. Specs
//!   share the [`fairsched_core::spec`] grammar with scheduler and
//!   workload specs: `FromStr`/`Display` round-trip exactly and
//!   parameters render in canonical sorted order.
//! * [`MetricFactory`] — an object-safe evaluator turning a spec plus a
//!   [`MetricContext`] (trace, schedule, exact `ψ_sp`, horizon, optional
//!   REF reference) into a per-organization [`MetricColumn`]. Factories
//!   declare [`conformance_specs`](MetricFactory::conformance_specs)
//!   (mandatory — the cross-crate harness in `tests/metric_conformance.rs`
//!   fails factories registered without coverage), whether they
//!   [`need a reference`](MetricFactory::needs_reference) schedule, and
//!   whether their values are
//!   [`horizon-invariant`](MetricFactory::horizon_invariant) once every
//!   scheduled job has completed.
//! * [`MetricRegistry`] — a name → factory map with the built-in
//!   families below; [`MetricRegistry::shared`] is the process-wide
//!   instance, [`MetricRegistry::register`] admits downstream fairness
//!   indices in one file.
//!
//! # Built-in metric families
//!
//! | spec | per-organization value | aggregate | reference? |
//! |---|---|---|---|
//! | `machines` | machines contributed | pool size | no |
//! | `completed` | jobs completed by the horizon | total | no |
//! | `flow` | total flow time of completed jobs | total | no |
//! | `waiting` | total waiting time of started jobs | total | no |
//! | `units` | unit job parts executed | busy time | no |
//! | `stretch` | mean stretch of completed jobs | overall mean | no |
//! | `utilization` | executed units / own machine-time | pool utilization | no |
//! | `psi` | exact `ψ_sp` | coalition value | no |
//! | `utility` | pluggable utility (`kind` = sp \| flowtime \| makespan \| share \| tardiness \| contrib) | sum | no |
//! | `delay` | deviation from REF (`norm` = ptot \| none \| ideal) | `Δψ/p_tot` (the paper's Tables 1–2 number) | yes |
//! | `ranking` | rank shift vs the REF ordering | Kendall-tau distance | yes |
//! | `timeline` | fairness trajectory per sample time (`samples` = N, `stat` = unfairness \| delta_psi \| ptot) | `Δψ(t)/p_tot(t)` series | yes |
//!
//! Results come back as a typed [`Report`]: one row per organization, one
//! [`MetricColumn`] per requested spec, with the canonical spec strings
//! carried for provenance and sink adapters [`Report::to_json`],
//! [`Report::to_csv`] and [`Report::render_table`] replacing the
//! hand-rolled output paths the bench tables and the CLI used to own.
//!
//! # The time-series axis
//!
//! Definition 3.1 demands fairness *at every time moment*, so a report
//! has a third axis besides organizations × metrics: **time**. A factory
//! may produce a [`TimeSeriesColumn`] instead of a scalar
//! [`MetricColumn`] — per-organization values *per sample time* plus an
//! aggregate trajectory — distinguished by the [`MetricOutput`] it
//! returns from [`MetricFactory::evaluate`]. The built-in `timeline`
//! family streams `ψ/ψ*/p_tot` through the dedup'd sample grid of
//! [`fairsched_core::fairness::timeline_sample_times`] in a single pass
//! over the schedule entries (`O(entries + samples·orgs)`); every sink
//! carries series alongside scalar columns.

use crate::engine::SimResult;
use crate::metrics::org_metrics;
use fairsched_core::fairness::{schedule_series, timeline_sample_times};
use fairsched_core::model::{Time, Trace};
use fairsched_core::schedule::Schedule;
use fairsched_core::scheduler::registry::SchedulerSpec;
use fairsched_core::spec::{valid_ident, ParamError, SpecBody, SpecParseError};
use fairsched_core::utility::{
    sp_value, FlowTime, Makespan, ResourceShare, SpUtility, Tardiness, Util, Utility,
};
use fairsched_workloads::spec::WorkloadSpec;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Why a metric spec string or an evaluation from one was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricError {
    /// The spec string was empty.
    Empty,
    /// The spec string does not follow `name[:key=value,...]`.
    BadSyntax {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// No factory is registered under the requested name.
    UnknownMetric {
        /// The requested name.
        name: String,
        /// Registered names, sorted.
        known: Vec<String>,
    },
    /// The named metric does not accept this parameter.
    UnknownParam {
        /// The metric name.
        metric: String,
        /// The rejected parameter key.
        param: String,
        /// Keys the metric accepts.
        accepted: Vec<String>,
    },
    /// A parameter value failed to parse or violated a constraint.
    BadParam {
        /// The metric name.
        metric: String,
        /// The parameter key.
        param: String,
        /// What was wrong with the value.
        reason: String,
    },
    /// The metric compares against the REF reference schedule, but the
    /// context carries none (e.g. the CLI was run with `--no-reference`).
    NeedsReference {
        /// The metric name.
        metric: String,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Empty => write!(f, "empty metric spec"),
            MetricError::BadSyntax { spec, reason } => {
                write!(f, "malformed metric spec {spec:?}: {reason}")
            }
            MetricError::UnknownMetric { name, known } => {
                write!(f, "unknown metric {name:?} (known: {})", known.join(", "))
            }
            MetricError::UnknownParam { metric, param, accepted } => {
                if accepted.is_empty() {
                    write!(f, "metric {metric:?} takes no parameters, got {param:?}")
                } else {
                    write!(
                        f,
                        "metric {metric:?} does not accept {param:?} (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            MetricError::BadParam { metric, param, reason } => {
                write!(f, "bad value for {metric}:{param}: {reason}")
            }
            MetricError::NeedsReference { metric } => write!(
                f,
                "metric {metric:?} needs the REF reference schedule, but none was provided"
            ),
        }
    }
}

impl std::error::Error for MetricError {}

/// A parsed metric configuration: a registry name plus string parameters,
/// with a canonical textual form — the shared [`fairsched_core::spec`]
/// grammar wrapped with metric-worded errors, exactly as
/// [`SchedulerSpec`] and [`WorkloadSpec`] wrap it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricSpec {
    body: SpecBody,
}

impl MetricSpec {
    /// A parameterless spec.
    pub fn bare(name: impl Into<String>) -> Self {
        MetricSpec { body: SpecBody::bare(name) }
    }

    /// Adds or replaces a parameter (builder style). Values containing
    /// the structural characters `%`/`,`/`=` are percent-escaped on
    /// render, so the `Display`/`FromStr` round trip holds for any
    /// non-empty value.
    ///
    /// # Panics
    /// Panics if the key is not a lowercase identifier or the rendered
    /// value is empty.
    pub fn with(self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        MetricSpec { body: self.body.with(key, value) }
    }

    /// The registry name this spec selects.
    pub fn name(&self) -> &str {
        self.body.name()
    }

    /// All parameters, sorted by key.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.body.params()
    }

    /// A raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.body.get(key)
    }

    fn lift(&self, e: ParamError) -> MetricError {
        match e {
            ParamError::Unknown { param, accepted } => MetricError::UnknownParam {
                metric: self.name().to_string(),
                param,
                accepted,
            },
            ParamError::Bad { param, reason } => {
                MetricError::BadParam { metric: self.name().to_string(), param, reason }
            }
        }
    }

    /// Rejects parameters outside `accepted` (factories call this first so
    /// typos fail loudly instead of silently using defaults).
    pub fn deny_unknown_params(&self, accepted: &[&str]) -> Result<(), MetricError> {
        self.body.deny_unknown_params(accepted).map_err(|e| self.lift(e))
    }

    /// A typed parameter with a default.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, MetricError> {
        self.body.parsed(key, default).map_err(|e| self.lift(e))
    }

    /// A helper for range/constraint violations discovered by factories.
    pub fn bad_param(&self, key: &str, reason: impl Into<String>) -> MetricError {
        MetricError::BadParam {
            metric: self.name().to_string(),
            param: key.to_string(),
            reason: reason.into(),
        }
    }

    /// Parses a comma-separated metric list as the CLI's `--metrics` flag
    /// accepts it (`delay,psi`, `delay:norm=ideal,stretch`). A segment
    /// that looks like a bare `key=value` continuation (no `:` of its
    /// own) is glued onto the previous spec, so multi-parameter specs
    /// survive the outer comma split.
    pub fn parse_list(text: &str) -> Result<Vec<MetricSpec>, MetricError> {
        let mut pieces: Vec<String> = Vec::new();
        for segment in text.split(',') {
            match pieces.last_mut() {
                Some(last) if segment.contains('=') && !segment.contains(':') => {
                    last.push(',');
                    last.push_str(segment);
                }
                _ => pieces.push(segment.to_string()),
            }
        }
        pieces.iter().map(|p| p.parse()).collect()
    }
}

impl fmt::Display for MetricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.body.fmt(f)
    }
}

impl FromStr for MetricSpec {
    type Err = MetricError;

    fn from_str(s: &str) -> Result<Self, MetricError> {
        match s.parse::<SpecBody>() {
            Ok(body) => Ok(MetricSpec { body }),
            Err(SpecParseError::Empty) => Err(MetricError::Empty),
            Err(SpecParseError::BadSyntax { spec, reason }) => {
                Err(MetricError::BadSyntax { spec, reason })
            }
        }
    }
}

impl serde::Serialize for MetricSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl serde::Deserialize for MetricSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) => {
                s.parse().map_err(|e: MetricError| serde::DeError(e.to_string()))
            }
            _ => Err(serde::DeError::expected("string", "MetricSpec")),
        }
    }
}

/// One measured value: exact integers stay exact (`ψ_sp`, delays, counts
/// are integer quantities in this model), ratios are floats. Rendering
/// ([`MetricValue::render`], JSON serialization) is locale-independent
/// and round-trippable: integers verbatim, floats via Rust's
/// shortest-round-trip `{:?}` formatting.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An exact integer quantity.
    Int(i128),
    /// A real-valued quantity (ratio, mean, distance).
    Float(f64),
}

impl MetricValue {
    /// The value as `f64` (exact for the integer range `f64` covers; the
    /// aggregation layer works in `f64` like the paper's tables).
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Int(i) => *i as f64,
            MetricValue::Float(v) => *v,
        }
    }

    /// Exact, locale-stable, round-trippable text: parsing the output
    /// recovers the value bit for bit.
    pub fn render(&self) -> String {
        match self {
            MetricValue::Int(i) => i.to_string(),
            MetricValue::Float(v) => format!("{v:?}"),
        }
    }

    /// Human-oriented rendering for tables: integers exact, floats with
    /// the paper's ~3 significant digits ([`format_sig`]).
    pub fn render_sig(&self) -> String {
        match self {
            MetricValue::Int(i) => i.to_string(),
            MetricValue::Float(v) => format_sig(*v),
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl serde::Serialize for MetricValue {
    fn to_value(&self) -> serde::Value {
        match self {
            MetricValue::Int(i) => serde::Value::Number(i.to_string()),
            // serde_json convention for non-finite floats; finite floats
            // keep the shortest representation that round-trips exactly.
            MetricValue::Float(v) if v.is_finite() => {
                serde::Value::Number(format!("{v:?}"))
            }
            MetricValue::Float(_) => serde::Value::Null,
        }
    }
}

/// The REF comparison data for reference-based metrics (`delay`,
/// `ranking`): the reference schedule and its exact `ψ_sp` vector at the
/// same horizon.
#[derive(Copy, Clone, Debug)]
pub struct ReferenceData<'a> {
    /// The reference (fair) schedule.
    pub schedule: &'a Schedule,
    /// Exact `ψ_sp` per organization under the reference, at the context
    /// horizon.
    pub psi: &'a [Util],
}

/// Everything a metric may read: the evaluated schedule with its exact
/// utilities, and (optionally) the REF reference.
#[derive(Copy, Clone, Debug)]
pub struct MetricContext<'a> {
    /// The trace the schedule was produced from.
    pub trace: &'a Trace,
    /// The evaluated schedule.
    pub schedule: &'a Schedule,
    /// Exact `ψ_sp` per organization at `horizon`.
    pub psi: &'a [Util],
    /// The evaluation horizon.
    pub horizon: Time,
    /// The REF comparison data, when a reference run is available.
    pub reference: Option<ReferenceData<'a>>,
}

impl<'a> MetricContext<'a> {
    /// A context over a finished [`SimResult`] (no reference).
    pub fn from_result(trace: &'a Trace, result: &'a SimResult) -> Self {
        MetricContext {
            trace,
            schedule: &result.schedule,
            psi: &result.psi,
            horizon: result.horizon,
            reference: None,
        }
    }

    /// Attaches a reference run (builder style). The reference must have
    /// been evaluated at the same horizon.
    pub fn with_reference(mut self, reference: &'a SimResult) -> Self {
        self.reference =
            Some(ReferenceData { schedule: &reference.schedule, psi: &reference.psi });
        self
    }

    fn require_reference(
        &self,
        spec: &MetricSpec,
    ) -> Result<ReferenceData<'a>, MetricError> {
        self.reference.ok_or_else(|| MetricError::NeedsReference {
            metric: spec.name().to_string(),
        })
    }
}

/// One evaluated metric: the canonical spec it came from (provenance),
/// one value per organization, and the aggregate over the whole cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricColumn {
    /// The canonical spec this column answers.
    pub spec: MetricSpec,
    /// One value per organization, in trace order.
    pub per_org: Vec<MetricValue>,
    /// The cluster-wide aggregate (sum, mean or distance — see the
    /// factory's summary).
    pub aggregate: MetricValue,
}

/// One evaluated time-series metric — the third `Report` axis: values
/// *per organization per sample time*, plus the cluster-wide aggregate
/// trajectory. Produced by factories whose [`MetricOutput`] is
/// [`MetricOutput::Series`] (the built-in `timeline` family).
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeriesColumn {
    /// The canonical spec this series answers.
    pub spec: MetricSpec,
    /// The strictly increasing sample times (the dedup'd grid of
    /// [`fairsched_core::fairness::timeline_sample_times`]: every time in
    /// `(0, horizon]`, the last exactly the horizon).
    pub times: Vec<Time>,
    /// `per_org[u][i]` = organization `u`'s value at `times[i]`.
    pub per_org: Vec<Vec<MetricValue>>,
    /// `aggregate[i]` = the cluster-wide value at `times[i]`.
    pub aggregate: Vec<MetricValue>,
}

impl TimeSeriesColumn {
    /// The final sample's aggregate — the scalar a series projects to when
    /// a consumer needs one number (e.g. a bench table cell). For the
    /// `timeline` family this equals the corresponding endpoint metric at
    /// the horizon (`stat=unfairness` ↔ `delay`'s `Δψ/p_tot`) bit for bit.
    pub fn final_aggregate(&self) -> Option<MetricValue> {
        self.aggregate.last().copied()
    }
}

/// What evaluating one metric spec produced: a scalar per-organization
/// [`MetricColumn`], or a per-organization [`TimeSeriesColumn`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricOutput {
    /// A scalar column (one value per organization + aggregate).
    Column(MetricColumn),
    /// A time series (values per organization per sample time).
    Series(TimeSeriesColumn),
}

impl MetricOutput {
    /// The canonical spec this output answers.
    pub fn spec(&self) -> &MetricSpec {
        match self {
            MetricOutput::Column(c) => &c.spec,
            MetricOutput::Series(s) => &s.spec,
        }
    }

    /// The scalar column, if this output is one.
    pub fn as_column(&self) -> Option<&MetricColumn> {
        match self {
            MetricOutput::Column(c) => Some(c),
            MetricOutput::Series(_) => None,
        }
    }

    /// Consumes into the scalar column, if this output is one.
    pub fn into_column(self) -> Option<MetricColumn> {
        match self {
            MetricOutput::Column(c) => Some(c),
            MetricOutput::Series(_) => None,
        }
    }

    /// The time series, if this output is one.
    pub fn as_series(&self) -> Option<&TimeSeriesColumn> {
        match self {
            MetricOutput::Column(_) => None,
            MetricOutput::Series(s) => Some(s),
        }
    }

    /// Consumes into the time series, if this output is one.
    pub fn into_series(self) -> Option<TimeSeriesColumn> {
        match self {
            MetricOutput::Column(_) => None,
            MetricOutput::Series(s) => Some(s),
        }
    }
}

impl From<MetricColumn> for MetricOutput {
    fn from(c: MetricColumn) -> Self {
        MetricOutput::Column(c)
    }
}

impl From<TimeSeriesColumn> for MetricOutput {
    fn from(s: TimeSeriesColumn) -> Self {
        MetricOutput::Series(s)
    }
}

/// An object-safe fairness-index evaluator, registered under a unique
/// name.
pub trait MetricFactory: Send + Sync {
    /// The registry name (what spec strings select).
    fn name(&self) -> &str;

    /// One-line human description, shown in CLI help.
    fn summary(&self) -> &str;

    /// Parameter keys this factory accepts (for error messages and docs).
    fn accepted_params(&self) -> &[&str] {
        &[]
    }

    /// Representative specs that must evaluate in any environment — the
    /// conformance harness (`tests/metric_conformance.rs`) runs every one
    /// of them through round-trip, determinism, shape, and (where
    /// claimed) horizon-invariance checks. Must be non-empty: the
    /// harness's coverage gate fails factories registered without
    /// conformance coverage.
    fn conformance_specs(&self) -> Vec<MetricSpec>;

    /// Whether this metric compares against the REF reference schedule
    /// ([`MetricContext::reference`]). Consumers use this to decide
    /// whether a reference run is needed at all.
    fn needs_reference(&self) -> bool {
        false
    }

    /// Whether the metric's values are invariant to the evaluation
    /// horizon once every scheduled job has completed (true for counting
    /// metrics like `flow` or `completed`; false for `ψ_sp`-based ones,
    /// which keep growing with `t`). Claimed invariance is enforced by
    /// the conformance harness.
    fn horizon_invariant(&self) -> bool {
        false
    }

    /// Evaluates the metric for a spec in a context, producing either a
    /// scalar [`MetricColumn`] or a [`TimeSeriesColumn`] (wrapped in
    /// [`MetricOutput`]; scalar factories simply return
    /// `Ok(column.into())`).
    ///
    /// Implementations should reject parameters outside
    /// [`accepted_params`](MetricFactory::accepted_params) via
    /// [`MetricSpec::deny_unknown_params`].
    fn evaluate(
        &self,
        spec: &MetricSpec,
        ctx: &MetricContext<'_>,
    ) -> Result<MetricOutput, MetricError>;
}

/// A closure-backed [`MetricFactory`] (how all built-ins are defined).
struct FnMetric<F> {
    name: &'static str,
    summary: &'static str,
    accepted: &'static [&'static str],
    conformance: fn() -> Vec<MetricSpec>,
    needs_reference: bool,
    horizon_invariant: bool,
    eval: F,
}

impl<F> MetricFactory for FnMetric<F>
where
    F: Fn(&MetricSpec, &MetricContext<'_>) -> Result<MetricOutput, MetricError>
        + Send
        + Sync,
{
    fn name(&self) -> &str {
        self.name
    }

    fn summary(&self) -> &str {
        self.summary
    }

    fn accepted_params(&self) -> &[&str] {
        self.accepted
    }

    fn conformance_specs(&self) -> Vec<MetricSpec> {
        (self.conformance)()
    }

    fn needs_reference(&self) -> bool {
        self.needs_reference
    }

    fn horizon_invariant(&self) -> bool {
        self.horizon_invariant
    }

    fn evaluate(
        &self,
        spec: &MetricSpec,
        ctx: &MetricContext<'_>,
    ) -> Result<MetricOutput, MetricError> {
        spec.deny_unknown_params(self.accepted)?;
        if self.needs_reference {
            ctx.require_reference(spec)?;
        }
        (self.eval)(spec, ctx)
    }
}

/// The name → factory map behind every fairness measurement in the
/// workspace.
///
/// [`MetricRegistry::default`] pre-populates the built-in families (see
/// the [module docs](self)); use [`MetricRegistry::new`] +
/// [`MetricRegistry::register`] for a curated set, or `register` on a
/// default registry to add downstream fairness indices.
pub struct MetricRegistry {
    factories: BTreeMap<String, Box<dyn MetricFactory>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry { factories: BTreeMap::new() }
    }

    /// The process-wide default registry, built once on first use —
    /// `Simulation` reports, the bench runner, and the CLI all resolve
    /// through it instead of rebuilding [`MetricRegistry::default`] per
    /// call.
    pub fn shared() -> &'static MetricRegistry {
        static SHARED: std::sync::OnceLock<MetricRegistry> = std::sync::OnceLock::new();
        SHARED.get_or_init(MetricRegistry::default)
    }

    /// Registers a factory, replacing any previous one of the same name
    /// (last registration wins) and returning the replaced factory if
    /// any.
    pub fn register(
        &mut self,
        factory: Box<dyn MetricFactory>,
    ) -> Option<Box<dyn MetricFactory>> {
        let name = factory.name().to_string();
        debug_assert!(valid_ident(&name), "invalid factory name {name:?}");
        self.factories.insert(name, factory)
    }

    /// The factory registered under `name`.
    pub fn get(&self, name: &str) -> Option<&dyn MetricFactory> {
        self.factories.get(name).map(Box::as_ref)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Every factory's conformance specs, keyed by factory name — the
    /// iteration surface of the cross-crate conformance harness.
    pub fn conformance_specs(&self) -> Vec<(String, Vec<MetricSpec>)> {
        self.factories
            .values()
            .map(|f| (f.name().to_string(), f.conformance_specs()))
            .collect()
    }

    /// Whether any of `specs` resolves to a factory that needs the REF
    /// reference (unknown names resolve to "no" here; they fail with a
    /// typed error at evaluation).
    pub fn any_needs_reference(&self, specs: &[MetricSpec]) -> bool {
        specs
            .iter()
            .any(|s| self.get(s.name()).is_some_and(MetricFactory::needs_reference))
    }

    /// Evaluates one metric spec over a context.
    pub fn evaluate(
        &self,
        spec: &MetricSpec,
        ctx: &MetricContext<'_>,
    ) -> Result<MetricOutput, MetricError> {
        let factory = self.factories.get(spec.name()).ok_or_else(|| {
            MetricError::UnknownMetric {
                name: spec.name().to_string(),
                known: self.names().map(str::to_string).collect(),
            }
        })?;
        factory.evaluate(spec, ctx)
    }

    /// A help listing: one `name — summary [params]` line per factory.
    pub fn help(&self) -> String {
        let mut out = String::new();
        for f in self.factories.values() {
            out.push_str(&format!("  {:<14} {}", f.name(), f.summary()));
            if !f.accepted_params().is_empty() {
                out.push_str(&format!(" (params: {})", f.accepted_params().join(", ")));
            }
            out.push('\n');
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn register_fn<F>(
        &mut self,
        name: &'static str,
        summary: &'static str,
        accepted: &'static [&'static str],
        conformance: fn() -> Vec<MetricSpec>,
        needs_reference: bool,
        horizon_invariant: bool,
        eval: F,
    ) where
        F: Fn(&MetricSpec, &MetricContext<'_>) -> Result<MetricOutput, MetricError>
            + Send
            + Sync
            + 'static,
    {
        self.register(Box::new(FnMetric {
            name,
            summary,
            accepted,
            conformance,
            needs_reference,
            horizon_invariant,
            eval,
        }));
    }
}

impl fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

fn column(
    spec: &MetricSpec,
    per_org: Vec<MetricValue>,
    aggregate: MetricValue,
) -> MetricOutput {
    MetricOutput::Column(MetricColumn { spec: spec.clone(), per_org, aggregate })
}

fn int_column(spec: &MetricSpec, per_org: Vec<i128>) -> MetricOutput {
    let aggregate = MetricValue::Int(per_org.iter().sum());
    column(spec, per_org.into_iter().map(MetricValue::Int).collect(), aggregate)
}

/// Ranks organizations by a utility vector, best (largest) first, ties
/// broken by organization index. `rank[u]` is the 0-based position of
/// organization `u` in that ordering.
fn ranks_by_desc(values: &[Util]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].cmp(&values[a]).then(a.cmp(&b)));
    let mut rank = vec![0usize; values.len()];
    for (pos, &org) in order.iter().enumerate() {
        rank[org] = pos;
    }
    rank
}

impl Default for MetricRegistry {
    /// A registry with the built-in metric families (see the
    /// [module docs](self) for the full table).
    fn default() -> Self {
        let mut r = MetricRegistry::new();
        r.register_fn(
            "machines",
            "machines each organization contributes to the pool",
            &[],
            || vec![MetricSpec::bare("machines")],
            false,
            true,
            |spec, ctx| {
                Ok(int_column(
                    spec,
                    ctx.trace.orgs().iter().map(|o| o.n_machines as i128).collect(),
                ))
            },
        );
        r.register_fn(
            "completed",
            "jobs completed by the horizon",
            &[],
            || vec![MetricSpec::bare("completed")],
            false,
            true,
            |spec, ctx| {
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                Ok(int_column(spec, m.iter().map(|o| o.completed as i128).collect()))
            },
        );
        r.register_fn(
            "flow",
            "total flow time (completion - release) of completed jobs",
            &[],
            || vec![MetricSpec::bare("flow")],
            false,
            true,
            |spec, ctx| {
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                Ok(int_column(spec, m.iter().map(|o| o.flow_time as i128).collect()))
            },
        );
        r.register_fn(
            "waiting",
            "total waiting time (start - release) of started jobs",
            &[],
            || vec![MetricSpec::bare("waiting")],
            false,
            true,
            |spec, ctx| {
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                Ok(int_column(spec, m.iter().map(|o| o.waiting_time as i128).collect()))
            },
        );
        r.register_fn(
            "units",
            "unit job parts executed before the horizon",
            &[],
            || vec![MetricSpec::bare("units")],
            false,
            true,
            |spec, ctx| {
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                Ok(int_column(spec, m.iter().map(|o| o.units as i128).collect()))
            },
        );
        r.register_fn(
            "stretch",
            "mean stretch (flow / processing time) of completed jobs",
            &[],
            || vec![MetricSpec::bare("stretch")],
            false,
            true,
            |spec, ctx| {
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                let per_org: Vec<MetricValue> =
                    m.iter().map(|o| MetricValue::Float(o.mean_stretch)).collect();
                let jobs: usize = m.iter().map(|o| o.completed).sum();
                let aggregate = if jobs == 0 {
                    MetricValue::Float(0.0)
                } else {
                    // Per-org means recombined by completed-job weight:
                    // the overall mean stretch across every completed job.
                    let total: f64 =
                        m.iter().map(|o| o.mean_stretch * o.completed as f64).sum();
                    MetricValue::Float(total / jobs as f64)
                };
                Ok(column(spec, per_org, aggregate))
            },
        );
        r.register_fn(
            "utilization",
            "executed units over own machine-time (aggregate: pool utilization)",
            &[],
            || vec![MetricSpec::bare("utilization")],
            false,
            false,
            |spec, ctx| {
                let info = ctx.trace.cluster_info();
                let m = org_metrics(ctx.trace, ctx.schedule, ctx.horizon);
                let per_org: Vec<MetricValue> = m
                    .iter()
                    .map(|o| {
                        let denom = info.machines_of(o.org) as f64 * ctx.horizon as f64;
                        MetricValue::Float(if denom > 0.0 {
                            o.units as f64 / denom
                        } else {
                            0.0
                        })
                    })
                    .collect();
                let aggregate = MetricValue::Float(if ctx.horizon > 0 {
                    ctx.schedule.utilization(info.n_machines(), ctx.horizon)
                } else {
                    0.0
                });
                Ok(column(spec, per_org, aggregate))
            },
        );
        r.register_fn(
            "psi",
            "exact strategy-proof utility psi_sp (aggregate: coalition value)",
            &[],
            || vec![MetricSpec::bare("psi")],
            false,
            false,
            |spec, ctx| Ok(int_column(spec, ctx.psi.to_vec())),
        );
        r.register_fn(
            "utility",
            "pluggable utility function",
            &["kind"],
            || {
                vec![
                    MetricSpec::bare("utility"),
                    MetricSpec::bare("utility").with("kind", "flowtime"),
                    MetricSpec::bare("utility").with("kind", "contrib"),
                ]
            },
            false,
            false,
            |spec, ctx| {
                let kind = spec.get("kind").unwrap_or("sp");
                let per_org: Vec<f64> = match kind {
                    "sp" => SpUtility.org_values(ctx.trace, ctx.schedule, ctx.horizon),
                    "flowtime" => FlowTime.org_values(ctx.trace, ctx.schedule, ctx.horizon),
                    "makespan" => Makespan.org_values(ctx.trace, ctx.schedule, ctx.horizon),
                    "share" => {
                        ResourceShare.org_values(ctx.trace, ctx.schedule, ctx.horizon)
                    }
                    "tardiness" => {
                        Tardiness.org_values(ctx.trace, ctx.schedule, ctx.horizon)
                    }
                    // Direct contribution: the psi_sp produced on the
                    // machines each organization *owns* (what its hardware
                    // earned the coalition), as opposed to `psi`, which is
                    // what its jobs received.
                    "contrib" => {
                        let info = ctx.trace.cluster_info();
                        let mut acc = vec![0 as Util; ctx.trace.n_orgs()];
                        for e in ctx.schedule.entries() {
                            acc[info.owner(e.machine).index()] +=
                                sp_value(e.start, e.proc_time, ctx.horizon);
                        }
                        acc.into_iter().map(|v| v as f64).collect()
                    }
                    other => {
                        return Err(spec.bad_param(
                            "kind",
                            format!(
                                "unknown utility {other:?} (one of: sp, flowtime, makespan, share, tardiness, contrib)"
                            ),
                        ))
                    }
                };
                let aggregate = MetricValue::Float(per_org.iter().sum());
                Ok(column(
                    spec,
                    per_org.into_iter().map(MetricValue::Float).collect(),
                    aggregate,
                ))
            },
        );
        r.register_fn(
            "delay",
            "deviation from the REF reference (aggregate: the paper's delta-psi/p_tot)",
            &["norm"],
            || {
                vec![
                    MetricSpec::bare("delay"),
                    MetricSpec::bare("delay").with("norm", "none"),
                    MetricSpec::bare("delay").with("norm", "ideal"),
                ]
            },
            true,
            false,
            |spec, ctx| {
                let reference = ctx.require_reference(spec)?;
                let devs: Vec<Util> = ctx
                    .psi
                    .iter()
                    .zip(reference.psi)
                    .map(|(psi, psi_ref)| psi - psi_ref)
                    .collect();
                let delta_psi: Util = devs.iter().map(|d| d.abs()).sum();
                match spec.get("norm").unwrap_or("ptot") {
                    // The paper's headline number: the average unjustified
                    // delay (or speed-up) of a job unit. Computed exactly
                    // as `FairnessReport::unfairness` for bit-identity
                    // with the historical tables.
                    "ptot" => {
                        let p_tot = reference.schedule.completed_units(ctx.horizon);
                        let scale = |v: Util| {
                            MetricValue::Float(if p_tot == 0 {
                                0.0
                            } else {
                                v as f64 / p_tot as f64
                            })
                        };
                        let aggregate = scale(delta_psi);
                        Ok(column(spec, devs.into_iter().map(scale).collect(), aggregate))
                    }
                    // Raw integer deviations (signed per organization,
                    // Manhattan distance aggregate).
                    "none" => Ok(column(
                        spec,
                        devs.iter().map(|&d| MetricValue::Int(d)).collect(),
                        MetricValue::Int(delta_psi),
                    )),
                    // Relative to the ideal: each organization's deviation
                    // as a fraction of its reference utility.
                    "ideal" => {
                        let per_org: Vec<MetricValue> = devs
                            .iter()
                            .zip(reference.psi)
                            .map(|(&d, &ideal)| {
                                MetricValue::Float(if ideal == 0 {
                                    0.0
                                } else {
                                    d as f64 / ideal as f64
                                })
                            })
                            .collect();
                        let total_ideal: Util =
                            reference.psi.iter().map(|v| v.abs()).sum();
                        let aggregate = MetricValue::Float(if total_ideal == 0 {
                            0.0
                        } else {
                            delta_psi as f64 / total_ideal as f64
                        });
                        Ok(column(spec, per_org, aggregate))
                    }
                    other => Err(spec.bad_param(
                        "norm",
                        format!("unknown norm {other:?} (one of: ptot, none, ideal)"),
                    )),
                }
            },
        );
        r.register_fn(
            "ranking",
            "rank shift vs the REF ordering (aggregate: Kendall-tau distance)",
            &[],
            || vec![MetricSpec::bare("ranking")],
            true,
            false,
            |spec, ctx| {
                let reference = ctx.require_reference(spec)?;
                let rank_eval = ranks_by_desc(ctx.psi);
                let rank_ref = ranks_by_desc(reference.psi);
                let per_org: Vec<MetricValue> = rank_ref
                    .iter()
                    .zip(&rank_eval)
                    // Positive = the organization moved up (was favored)
                    // relative to its fair position.
                    .map(|(&r, &e)| MetricValue::Int(r as i128 - e as i128))
                    .collect();
                let k = ctx.psi.len();
                let mut discordant = 0usize;
                for u in 0..k {
                    for v in (u + 1)..k {
                        let eval_says = rank_eval[u] < rank_eval[v];
                        let ref_says = rank_ref[u] < rank_ref[v];
                        if eval_says != ref_says {
                            discordant += 1;
                        }
                    }
                }
                let pairs = k * (k.saturating_sub(1)) / 2;
                let aggregate = MetricValue::Float(if pairs == 0 {
                    0.0
                } else {
                    discordant as f64 / pairs as f64
                });
                Ok(column(spec, per_org, aggregate))
            },
        );
        r.register_fn(
            "timeline",
            "fairness trajectory vs REF per sample time (Definition 3.1)",
            &["samples", "stat"],
            || {
                vec![
                    MetricSpec::bare("timeline"),
                    MetricSpec::bare("timeline").with("samples", 16),
                    MetricSpec::bare("timeline").with("samples", 8).with("stat", "delta_psi"),
                    MetricSpec::bare("timeline").with("stat", "ptot"),
                ]
            },
            true,
            false,
            |spec, ctx| {
                let reference = ctx.require_reference(spec)?;
                // A zero sample count would trip the core grid's contract
                // panic; spec-addressed evaluation stays typed end to end.
                let samples: usize = spec.parsed("samples", DEFAULT_TIMELINE_SAMPLES)?;
                if samples == 0 {
                    return Err(spec.bad_param("samples", "must be at least 1"));
                }
                // Spec strings are untrusted experiment input: a huge
                // count would make every series row `samples` values long
                // (a horizon-scale allocation per organization), so cap
                // the grid at the factory boundary with a typed error.
                if samples > MAX_TIMELINE_SAMPLES {
                    return Err(spec.bad_param(
                        "samples",
                        format!("at most {MAX_TIMELINE_SAMPLES} samples per timeline"),
                    ));
                }
                // Parse the stat into a closed enum up front so the
                // per-sample dispatch below is exhaustive — bad values are
                // a typed error here, not an unreachable arm later.
                #[derive(Copy, Clone, PartialEq)]
                enum Stat {
                    Unfairness,
                    DeltaPsi,
                    Ptot,
                }
                let stat = match spec.get("stat").unwrap_or("unfairness") {
                    "unfairness" => Stat::Unfairness,
                    "delta_psi" => Stat::DeltaPsi,
                    "ptot" => Stat::Ptot,
                    other => {
                        return Err(spec.bad_param(
                            "stat",
                            format!(
                                "unknown stat {other:?} (one of: unfairness, delta_psi, ptot)"
                            ),
                        ))
                    }
                };
                let times = timeline_sample_times(ctx.horizon, samples);
                // One streaming pass per schedule: O(entries + samples·orgs),
                // bit-identical to a per-sample sp_vector recompute. The
                // ptot stat reads only the reference, so the evaluated
                // schedule is swept only when a ψ comparison needs it.
                let refs = schedule_series(ctx.trace, reference.schedule, &times);
                let eval = (stat != Stat::Ptot)
                    .then(|| schedule_series(ctx.trace, ctx.schedule, &times));
                let n = ctx.trace.n_orgs();
                // (Vec::clone drops reserved capacity, so reserve per row.)
                let mut per_org: Vec<Vec<MetricValue>> =
                    (0..n).map(|_| Vec::with_capacity(times.len())).collect();
                let mut aggregate = Vec::with_capacity(times.len());
                let mut devs: Vec<Util> = Vec::with_capacity(n);
                for i in 0..times.len() {
                    let p_tot: Time = refs.units[i].iter().sum();
                    // Deviations only matter to the ψ-comparing stats.
                    let delta_psi: Util = match &eval {
                        None => 0,
                        Some(eval) => {
                            devs.clear();
                            devs.extend((0..n).map(|u| eval.psi[i][u] - refs.psi[i][u]));
                            devs.iter().map(|d| d.abs()).sum()
                        }
                    };
                    match stat {
                        // The paper's headline ratio, per moment: the
                        // same arithmetic as `FairnessReport::unfairness`
                        // (and `delay:norm=ptot`), so the final point is
                        // bit-identical to the endpoint metrics.
                        Stat::Unfairness => {
                            let scale = |v: Util| {
                                MetricValue::Float(if p_tot == 0 {
                                    0.0
                                } else {
                                    v as f64 / p_tot as f64
                                })
                            };
                            for (u, &d) in devs.iter().enumerate() {
                                per_org[u].push(scale(d));
                            }
                            aggregate.push(scale(delta_psi));
                        }
                        // Raw signed deviations + Manhattan distance.
                        Stat::DeltaPsi => {
                            for (u, &d) in devs.iter().enumerate() {
                                per_org[u].push(MetricValue::Int(d));
                            }
                            aggregate.push(MetricValue::Int(delta_psi));
                        }
                        // Reference throughput: unit parts completed in
                        // the REF schedule, per organization and total.
                        Stat::Ptot => {
                            for (row, &units) in per_org.iter_mut().zip(&refs.units[i]) {
                                row.push(MetricValue::Int(units as i128));
                            }
                            aggregate.push(MetricValue::Int(p_tot as i128));
                        }
                    }
                }
                Ok(MetricOutput::Series(TimeSeriesColumn {
                    spec: spec.clone(),
                    times,
                    per_org,
                    aggregate,
                }))
            },
        );
        r
    }
}

/// The sample count the `timeline` metric family uses when the spec
/// carries no `samples` parameter.
pub const DEFAULT_TIMELINE_SAMPLES: usize = 64;

/// The largest sample count the `timeline` family accepts. Every emitted
/// point costs one value per organization in the report (and its sinks),
/// so an unbounded spec-supplied count would turn one metric string into
/// a multi-gigabyte allocation; requests above this fail with a typed
/// [`MetricError::BadParam`].
pub const MAX_TIMELINE_SAMPLES: usize = 1 << 20;

/// A typed measurement report: one run, measured by a list of metric
/// specs. The canonical spec strings ride along for provenance, so any
/// sink output is self-describing.
#[derive(Clone, Debug)]
pub struct Report {
    /// The evaluated scheduler's display name.
    pub scheduler: String,
    /// The scheduler registry spec, when the run was spec-addressed.
    pub scheduler_spec: Option<SchedulerSpec>,
    /// The workload registry spec, when the trace was spec-addressed.
    pub workload_spec: Option<WorkloadSpec>,
    /// The evaluation horizon.
    pub horizon: Time,
    /// The seed the run used.
    pub seed: u64,
    /// Organization names, in trace order.
    pub orgs: Vec<String>,
    /// The evaluated scalar columns, in request order among themselves.
    pub columns: Vec<MetricColumn>,
    /// The evaluated time-series columns (the `timeline` family), in
    /// request order among themselves.
    pub series: Vec<TimeSeriesColumn>,
}

impl Report {
    /// Evaluates `specs` over a finished run (plus the REF reference run,
    /// for metrics that compare against it). Provenance fields
    /// (`scheduler_spec`, `workload_spec`, `seed`) start empty; the
    /// `Simulation` session fills them in.
    pub fn evaluate(
        registry: &MetricRegistry,
        specs: &[MetricSpec],
        trace: &Trace,
        result: &SimResult,
        reference: Option<&SimResult>,
    ) -> Result<Report, MetricError> {
        let mut ctx = MetricContext::from_result(trace, result);
        if let Some(reference) = reference {
            ctx = ctx.with_reference(reference);
        }
        let mut columns = Vec::new();
        let mut series = Vec::new();
        for spec in specs {
            match registry.evaluate(spec, &ctx)? {
                MetricOutput::Column(c) => columns.push(c),
                MetricOutput::Series(s) => series.push(s),
            }
        }
        Ok(Report {
            scheduler: result.scheduler.clone(),
            scheduler_spec: None,
            workload_spec: None,
            horizon: result.horizon,
            seed: 0,
            orgs: trace.orgs().iter().map(|o| o.name.clone()).collect(),
            columns,
            series,
        })
    }

    /// The canonical spec strings of the evaluated columns (the
    /// provenance every sink carries): scalar columns first, then
    /// time-series columns, each group in request order.
    pub fn metric_specs(&self) -> Vec<String> {
        self.columns
            .iter()
            .map(|c| c.spec.to_string())
            .chain(self.series.iter().map(|s| s.spec.to_string()))
            .collect()
    }

    /// The scalar column evaluated for `spec` (by canonical string
    /// equality).
    pub fn column(&self, spec: &str) -> Option<&MetricColumn> {
        let wanted: MetricSpec = spec.parse().ok()?;
        self.columns.iter().find(|c| c.spec == wanted)
    }

    /// The time-series column evaluated for `spec` (by canonical string
    /// equality).
    pub fn time_series(&self, spec: &str) -> Option<&TimeSeriesColumn> {
        let wanted: MetricSpec = spec.parse().ok()?;
        self.series.iter().find(|s| s.spec == wanted)
    }

    /// The report as a JSON value tree (see [`Report::to_json`] for the
    /// schema).
    pub fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        let spec_strings = self.metric_specs();
        let orgs: Vec<Value> = self
            .orgs
            .iter()
            .enumerate()
            .map(|(u, name)| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(name.clone())),
                    (
                        "metrics".to_string(),
                        Value::Object(
                            self.columns
                                .iter()
                                .zip(&spec_strings)
                                .map(|(c, s)| {
                                    (s.clone(), serde::Serialize::to_value(&c.per_org[u]))
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let aggregates = Value::Object(
            self.columns
                .iter()
                .zip(&spec_strings)
                .map(|(c, s)| (s.clone(), serde::Serialize::to_value(&c.aggregate)))
                .collect(),
        );
        let opt_spec = |s: &Option<String>| match s {
            Some(s) => Value::String(s.clone()),
            None => Value::Null,
        };
        let mut fields = vec![
            ("scheduler".to_string(), Value::String(self.scheduler.clone())),
            (
                "scheduler_spec".to_string(),
                opt_spec(&self.scheduler_spec.as_ref().map(|s| s.to_string())),
            ),
            (
                "workload_spec".to_string(),
                opt_spec(&self.workload_spec.as_ref().map(|s| s.to_string())),
            ),
            ("horizon".to_string(), Value::Number(self.horizon.to_string())),
            ("seed".to_string(), Value::Number(self.seed.to_string())),
            (
                "metric_specs".to_string(),
                Value::Array(spec_strings.iter().cloned().map(Value::String).collect()),
            ),
            ("orgs".to_string(), Value::Array(orgs)),
            ("aggregates".to_string(), aggregates),
        ];
        // The time axis, present only when a series metric was evaluated
        // (so scalar-only reports keep their historical schema byte for
        // byte): per series, the sample times, per-organization value
        // rows, and the aggregate trajectory — all exact round-trippable
        // numbers.
        if !self.series.is_empty() {
            let values = |vs: &[MetricValue]| {
                Value::Array(vs.iter().map(serde::Serialize::to_value).collect())
            };
            let series: Vec<Value> = self
                .series
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("spec".to_string(), Value::String(s.spec.to_string())),
                        (
                            "times".to_string(),
                            Value::Array(
                                s.times
                                    .iter()
                                    .map(|t| Value::Number(t.to_string()))
                                    .collect(),
                            ),
                        ),
                        (
                            "orgs".to_string(),
                            Value::Array(
                                self.orgs
                                    .iter()
                                    .zip(&s.per_org)
                                    .map(|(name, vs)| {
                                        Value::Object(vec![
                                            (
                                                "name".to_string(),
                                                Value::String(name.clone()),
                                            ),
                                            ("values".to_string(), values(vs)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("aggregate".to_string(), values(&s.aggregate)),
                    ])
                })
                .collect();
            fields.push(("series".to_string(), Value::Array(series)));
        }
        Value::Object(fields)
    }

    /// Parses a report back from its [`Report::to_json_value`] tree — the
    /// inverse of the JSON sink, used by the durable experiment runner to
    /// rebuild typed reports from committed cell files. Numbers are
    /// classified by their literal text: integer literals become
    /// [`MetricValue::Int`]; literals carrying a `.` or an exponent
    /// (every finite float the sink emits has one) become
    /// [`MetricValue::Float`]; and `null` — the sink's encoding for
    /// non-finite floats — becomes `Float(NAN)`. For any report, feeding
    /// `to_json_value` output back through here reproduces every sink
    /// output (`to_json`, `to_csv`, `render_table`) byte for byte.
    pub fn from_json_value(v: &serde::Value) -> Result<Report, serde::DeError> {
        use serde::{DeError, Value};
        fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
            v.get(key).ok_or_else(|| DeError(format!("report JSON is missing {key:?}")))
        }
        fn string(v: &Value, what: &str) -> Result<String, DeError> {
            match v {
                Value::String(s) => Ok(s.clone()),
                _ => Err(DeError::expected("string", what)),
            }
        }
        fn number<T: FromStr>(v: &Value, what: &str) -> Result<T, DeError> {
            match v {
                Value::Number(text) => text
                    .parse()
                    .map_err(|_| DeError(format!("bad number {text:?} for {what}"))),
                _ => Err(DeError::expected("number", what)),
            }
        }
        fn metric_value(v: &Value, what: &str) -> Result<MetricValue, DeError> {
            match v {
                Value::Number(text) if text.contains(['.', 'e', 'E']) => text
                    .parse::<f64>()
                    .map(MetricValue::Float)
                    .map_err(|_| DeError(format!("bad float {text:?} for {what}"))),
                Value::Number(text) => text
                    .parse::<i128>()
                    .map(MetricValue::Int)
                    .map_err(|_| DeError(format!("bad integer {text:?} for {what}"))),
                // The sink writes non-finite floats as null.
                Value::Null => Ok(MetricValue::Float(f64::NAN)),
                _ => Err(DeError::expected("number or null", what)),
            }
        }

        let scheduler = string(field(v, "scheduler")?, "scheduler")?;
        let opt_spec = |key: &str| -> Result<Option<String>, DeError> {
            match field(v, key)? {
                Value::Null => Ok(None),
                other => string(other, key).map(Some),
            }
        };
        let scheduler_spec = opt_spec("scheduler_spec")?
            .map(|s| {
                s.parse::<SchedulerSpec>()
                    .map_err(|e| DeError(format!("bad scheduler_spec: {e}")))
            })
            .transpose()?;
        let workload_spec = opt_spec("workload_spec")?
            .map(|s| {
                s.parse::<WorkloadSpec>()
                    .map_err(|e| DeError(format!("bad workload_spec: {e}")))
            })
            .transpose()?;
        let horizon: Time = number(field(v, "horizon")?, "horizon")?;
        let seed: u64 = number(field(v, "seed")?, "seed")?;

        let Value::Array(org_entries) = field(v, "orgs")? else {
            return Err(DeError::expected("array", "orgs"));
        };
        let mut orgs = Vec::with_capacity(org_entries.len());
        for entry in org_entries {
            orgs.push(string(field(entry, "name")?, "org name")?);
        }

        // Series first: the scalar pass below needs to know which of the
        // `metric_specs` entries are time-series columns.
        let mut series = Vec::new();
        if let Some(series_value) = v.get("series") {
            let Value::Array(entries) = series_value else {
                return Err(DeError::expected("array", "series"));
            };
            for entry in entries {
                let spec_text = string(field(entry, "spec")?, "series spec")?;
                let spec: MetricSpec = spec_text
                    .parse()
                    .map_err(|e: MetricError| DeError(format!("bad series spec: {e}")))?;
                let Value::Array(time_values) = field(entry, "times")? else {
                    return Err(DeError::expected("array", "series times"));
                };
                let times = time_values
                    .iter()
                    .map(|t| number::<Time>(t, "series time"))
                    .collect::<Result<Vec<_>, _>>()?;
                let Value::Array(series_orgs) = field(entry, "orgs")? else {
                    return Err(DeError::expected("array", "series orgs"));
                };
                if series_orgs.len() != orgs.len() {
                    return Err(DeError(format!(
                        "series {spec_text:?} has {} org rows for {} orgs",
                        series_orgs.len(),
                        orgs.len()
                    )));
                }
                let mut per_org = Vec::with_capacity(series_orgs.len());
                for row in series_orgs {
                    let Value::Array(vals) = field(row, "values")? else {
                        return Err(DeError::expected("array", "series values"));
                    };
                    per_org.push(
                        vals.iter()
                            .map(|x| metric_value(x, "series value"))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                let Value::Array(agg) = field(entry, "aggregate")? else {
                    return Err(DeError::expected("array", "series aggregate"));
                };
                let aggregate = agg
                    .iter()
                    .map(|x| metric_value(x, "series aggregate"))
                    .collect::<Result<Vec<_>, _>>()?;
                series.push(TimeSeriesColumn { spec, times, per_org, aggregate });
            }
        }

        let Value::Array(spec_values) = field(v, "metric_specs")? else {
            return Err(DeError::expected("array", "metric_specs"));
        };
        let aggregates = field(v, "aggregates")?;
        let mut columns = Vec::new();
        for sv in spec_values {
            let text = string(sv, "metric spec")?;
            if series.iter().any(|s| s.spec.to_string() == text) {
                continue;
            }
            let spec: MetricSpec = text
                .parse()
                .map_err(|e: MetricError| DeError(format!("bad metric spec: {e}")))?;
            let mut per_org = Vec::with_capacity(orgs.len());
            for entry in org_entries {
                let metrics = field(entry, "metrics")?;
                let value = metrics
                    .get(&text)
                    .ok_or_else(|| DeError(format!("org is missing metric {text:?}")))?;
                per_org.push(metric_value(value, "metric value")?);
            }
            let aggregate = metric_value(
                aggregates
                    .get(&text)
                    .ok_or_else(|| DeError(format!("aggregates is missing {text:?}")))?,
                "aggregate",
            )?;
            columns.push(MetricColumn { spec, per_org, aggregate });
        }
        Ok(Report {
            scheduler,
            scheduler_spec,
            workload_spec,
            horizon,
            seed,
            orgs,
            columns,
            series,
        })
    }

    /// Machine-readable JSON: run provenance (`scheduler`,
    /// `scheduler_spec`, `workload_spec`, `horizon`, `seed`), the
    /// canonical `metric_specs`, per-organization `metrics` objects keyed
    /// by those same canonical strings, and the cluster-wide
    /// `aggregates`. All numbers are exact and round-trippable (integers
    /// verbatim, floats in shortest-round-trip form).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_pretty()
    }

    /// CSV: one `org` row per organization plus an `(all)` aggregate
    /// row; columns are the canonical metric specs. Values use the exact
    /// [`MetricValue::render`] form; fields containing commas or quotes
    /// are double-quoted.
    ///
    /// Each time-series column follows as its own block after a blank
    /// line: the header's first cell is the canonical series spec (where
    /// the scalar block says `org`, this block says which series the `t`
    /// column belongs to), then one column per organization plus `(all)`,
    /// and one row per sample time — exact values throughout.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        // A series-only report has no scalar values to tabulate; skip the
        // degenerate name-only block and emit the series directly.
        let series_only = self.columns.is_empty() && !self.series.is_empty();
        if !series_only {
            out.push_str("org");
            for c in &self.columns {
                out.push(',');
                out.push_str(&csv_field(&c.spec.to_string()));
            }
            out.push('\n');
            for (u, name) in self.orgs.iter().enumerate() {
                out.push_str(&csv_field(name));
                for c in &self.columns {
                    out.push(',');
                    out.push_str(&c.per_org[u].render());
                }
                out.push('\n');
            }
            out.push_str("(all)");
            for c in &self.columns {
                out.push(',');
                out.push_str(&c.aggregate.render());
            }
            out.push('\n');
        }
        for s in &self.series {
            if !series_only || !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&csv_field(&s.spec.to_string()));
            for name in &self.orgs {
                out.push(',');
                out.push_str(&csv_field(name));
            }
            out.push_str(",(all)\n");
            for (i, t) in s.times.iter().enumerate() {
                out.push_str(&t.to_string());
                for vs in &s.per_org {
                    out.push(',');
                    out.push_str(&vs[i].render());
                }
                out.push(',');
                out.push_str(&s.aggregate[i].render());
                out.push('\n');
            }
        }
        out
    }

    /// A human-oriented aligned table: one row per organization plus the
    /// `(all)` aggregate row, floats at the paper's ~3 significant
    /// digits. Each time-series column follows as its own titled table
    /// (one row per sample time).
    pub fn render_table(&self) -> String {
        let specs: Vec<String> =
            self.columns.iter().map(|c| c.spec.to_string()).collect();
        let org_w = self
            .orgs
            .iter()
            .map(String::len)
            .chain([8, "(all)".len()])
            .max()
            .unwrap_or(8)
            + 2;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .zip(&specs)
            .map(|(c, s)| {
                c.per_org
                    .iter()
                    .chain([&c.aggregate])
                    .map(|v| v.render_sig().len())
                    .chain([s.len()])
                    .max()
                    .unwrap_or(6)
                    + 2
            })
            .collect();
        let mut out = String::new();
        // A series-only report has no scalar values to tabulate; skip the
        // degenerate name-only table and render the series directly.
        let series_only = self.columns.is_empty() && !self.series.is_empty();
        if !series_only {
            out.push_str(&format!("{:<org_w$}", "org"));
            for (s, w) in specs.iter().zip(&widths) {
                out.push_str(&format!("{s:>w$}", w = w));
            }
            out.push('\n');
            for (u, name) in self.orgs.iter().enumerate() {
                out.push_str(&format!("{name:<org_w$}"));
                for (c, w) in self.columns.iter().zip(&widths) {
                    out.push_str(&format!("{:>w$}", c.per_org[u].render_sig(), w = w));
                }
                out.push('\n');
            }
            out.push_str(&format!("{:<org_w$}", "(all)"));
            for (c, w) in self.columns.iter().zip(&widths) {
                out.push_str(&format!("{:>w$}", c.aggregate.render_sig(), w = w));
            }
            out.push('\n');
        }
        for s in &self.series {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{}:\n", s.spec));
            let columns: Vec<Vec<String>> = s
                .per_org
                .iter()
                .chain([&s.aggregate])
                .map(|vs| vs.iter().map(MetricValue::render_sig).collect())
                .collect();
            let labels: Vec<&str> =
                self.orgs.iter().map(String::as_str).chain(["(all)"]).collect();
            out.push_str(&render_time_table(&s.times, &labels, &columns));
        }
        out
    }
}

/// Renders an aligned time table: a left-justified `t` column plus one
/// right-justified labeled column per value series (cells pre-rendered;
/// `columns[c][i]` belongs to `labels[c]` at `times[i]`). The one layout
/// shared by [`Report::render_table`]'s series blocks and the bench
/// trajectory figure.
pub fn render_time_table(
    times: &[Time],
    labels: &[&str],
    columns: &[Vec<String>],
) -> String {
    let t_w =
        times.iter().map(|t| t.to_string().len()).chain(["t".len()]).max().unwrap_or(1)
            + 2;
    let widths: Vec<usize> = columns
        .iter()
        .zip(labels)
        .map(|(vals, label)| {
            vals.iter().map(String::len).chain([label.len()]).max().unwrap_or(6) + 2
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!("{:<t_w$}", "t"));
    for (label, w) in labels.iter().zip(&widths) {
        out.push_str(&format!("{label:>w$}", w = w));
    }
    out.push('\n');
    for (i, t) in times.iter().enumerate() {
        out.push_str(&format!("{t:<t_w$}"));
        for (vals, w) in columns.iter().zip(&widths) {
            out.push_str(&format!("{:>w$}", vals[i], w = w));
        }
        out.push('\n');
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline
/// (RFC 4180 style), so canonical spec strings — which legitimately
/// contain commas — survive the CSV sinks verbatim. Public so every CSV
/// sink in the workspace (bench trajectory included) shares the one
/// quoting rule.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats with 3 significant-ish digits like the paper's tables (e.g.
/// `238`, `0.014`, `2839`). Presentation only — machine outputs (JSON,
/// CSV) always carry exact round-trippable values.
pub fn format_sig(v: f64) -> String {
    if v < 0.0 {
        format!("-{}", format_sig(-v))
    } else if v == 0.0 {
        "0".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Mean/sd aggregation of one labelled value series — the per-algorithm
/// cell statistic of the paper's Tables 1–2 (previously inlined in the
/// bench runner).
#[derive(Clone, Debug, Serialize)]
pub struct LabeledStat {
    /// Row label (algorithm name or spec).
    pub label: String,
    /// Mean over the series.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two values).
    pub sd: f64,
    /// The raw per-instance values.
    pub values: Vec<f64>,
}

impl LabeledStat {
    /// Aggregates a value series (mean + sample sd).
    pub fn from_values(label: String, values: Vec<f64>) -> LabeledStat {
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        LabeledStat { label, mean, sd: var.sqrt(), values }
    }
}

/// A Table-1-style summary grid: one row per algorithm, one (avg, sd)
/// column pair per workload, each cell aggregating one metric over many
/// instances. The sink successor of the bench crate's hand-rolled
/// `DelayTable`: [`SummaryTable::render`] is presentational
/// ([`format_sig`]), [`SummaryTable::to_json`] and
/// [`SummaryTable::to_csv`] carry exact round-trippable floats.
#[derive(Clone, Debug, Serialize)]
pub struct SummaryTable {
    /// Table title.
    pub title: String,
    /// Canonical spec of the metric the cells aggregate.
    pub metric: String,
    /// Column (workload) labels.
    pub columns: Vec<String>,
    /// `cells[c]` = per-algorithm stats for column `c`.
    pub cells: Vec<Vec<LabeledStat>>,
}

impl SummaryTable {
    /// Renders the paper-style table (3 significant digits; see
    /// [`SummaryTable::to_json`] for exact values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let algo_w = 16;
        let col_w = 11;
        out.push_str(&format!("{:<algo_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!("{:>width$}", c, width = 2 * col_w));
        }
        out.push('\n');
        out.push_str(&format!("{:<algo_w$}", "algorithm"));
        for _ in &self.columns {
            out.push_str(&format!("{:>col_w$}{:>col_w$}", "Avg", "St.dev"));
        }
        out.push('\n');
        let n_algos = self.cells.first().map_or(0, |c| c.len());
        for a in 0..n_algos {
            out.push_str(&format!("{:<algo_w$}", self.cells[0][a].label));
            for c in 0..self.columns.len() {
                let s = &self.cells[c][a];
                out.push_str(&format!(
                    "{:>col_w$}{:>col_w$}",
                    format_sig(s.mean),
                    format_sig(s.sd)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON with exact, round-trippable floats (no
    /// [`format_sig`] truncation — the fix for the historical
    /// render-vs-JSON drift).
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// CSV: one row per algorithm, `avg`/`sd` column pair per workload
    /// column, exact values. Labels containing commas (canonical
    /// multi-parameter workload specs) are CSV-quoted, not rewritten.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm");
        for c in &self.columns {
            out.push_str(&format!(
                ",{},{}",
                csv_field(&format!("{c} avg")),
                csv_field(&format!("{c} sd"))
            ));
        }
        out.push('\n');
        let n_algos = self.cells.first().map_or(0, |c| c.len());
        for a in 0..n_algos {
            out.push_str(&csv_field(&self.cells[0][a].label));
            for c in 0..self.columns.len() {
                let s = &self.cells[c][a];
                out.push_str(&format!(",{:?},{:?}", s.mean, s.sd));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use fairsched_core::fairness::FairnessReport;

    fn small_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 2);
        b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
        b.build().unwrap()
    }

    fn run(trace: &Trace, scheduler: &str, horizon: Time) -> SimResult {
        Simulation::new(trace)
            .scheduler(scheduler)
            .unwrap()
            .horizon(horizon)
            .seed(3)
            .run()
            .unwrap()
    }

    #[test]
    fn metric_specs_round_trip_canonically() {
        for text in ["delay", "delay:norm=ideal", "psi", "utility:kind=contrib"] {
            let spec: MetricSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
        }
        let spec: MetricSpec = "utility:kind=sp".parse().unwrap();
        assert_eq!(spec.name(), "utility");
        assert_eq!(spec.get("kind"), Some("sp"));
    }

    #[test]
    fn parse_list_splits_and_glues_parameters() {
        let specs = MetricSpec::parse_list("delay,psi").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].to_string(), "delay");
        let specs = MetricSpec::parse_list("delay:norm=ideal,stretch").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].to_string(), "delay:norm=ideal");
        assert_eq!(specs[1].to_string(), "stretch");
        assert!(MetricSpec::parse_list("delay,,psi").is_err());
    }

    #[test]
    fn registry_errors_are_typed() {
        let registry = MetricRegistry::default();
        let trace = small_trace();
        let result = run(&trace, "fifo", 50);
        let ctx = MetricContext::from_result(&trace, &result);
        assert!(matches!(
            registry.evaluate(&"nonesuch".parse().unwrap(), &ctx),
            Err(MetricError::UnknownMetric { .. })
        ));
        assert!(matches!(
            registry.evaluate(&"psi:warp=9".parse().unwrap(), &ctx),
            Err(MetricError::UnknownParam { .. })
        ));
        assert!(matches!(
            registry.evaluate(&"utility:kind=vibes".parse().unwrap(), &ctx),
            Err(MetricError::BadParam { .. })
        ));
        assert!(matches!(
            registry.evaluate(&"delay".parse().unwrap(), &ctx),
            Err(MetricError::NeedsReference { .. })
        ));
        assert!(matches!(
            registry.evaluate(&"delay:norm=sideways".parse().unwrap(), &ctx),
            Err(MetricError::NeedsReference { .. }) | Err(MetricError::BadParam { .. })
        ));
    }

    #[test]
    fn counting_metrics_match_org_metrics_bit_for_bit() {
        let trace = small_trace();
        let result = run(&trace, "roundrobin", 40);
        let ctx = MetricContext::from_result(&trace, &result);
        let registry = MetricRegistry::default();
        let m = org_metrics(&trace, &result.schedule, 40);
        let col = |name: &str| {
            registry
                .evaluate(&name.parse().unwrap(), &ctx)
                .unwrap()
                .into_column()
                .unwrap()
                .per_org
        };
        for (u, om) in m.iter().enumerate() {
            assert_eq!(col("completed")[u], MetricValue::Int(om.completed as i128));
            assert_eq!(col("flow")[u], MetricValue::Int(om.flow_time as i128));
            assert_eq!(col("waiting")[u], MetricValue::Int(om.waiting_time as i128));
            assert_eq!(col("units")[u], MetricValue::Int(om.units as i128));
            match col("stretch")[u] {
                MetricValue::Float(v) => {
                    assert_eq!(v.to_bits(), om.mean_stretch.to_bits())
                }
                other => panic!("stretch must be a float, got {other:?}"),
            }
        }
        assert_eq!(
            col("psi"),
            result.psi.iter().map(|&p| MetricValue::Int(p)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn delay_default_matches_fairness_report_bit_for_bit() {
        let trace = small_trace();
        let horizon = 40;
        let eval = run(&trace, "fifo", horizon);
        let reference = run(&trace, "ref", horizon);
        let ctx = MetricContext::from_result(&trace, &eval).with_reference(&reference);
        let col = MetricRegistry::shared()
            .evaluate(&"delay".parse().unwrap(), &ctx)
            .unwrap()
            .into_column()
            .unwrap();
        let old = FairnessReport::from_schedules(
            &trace,
            &eval.schedule,
            &reference.schedule,
            horizon,
        );
        match col.aggregate {
            MetricValue::Float(v) => {
                assert_eq!(v.to_bits(), old.unfairness().to_bits())
            }
            other => panic!("delay aggregate must be a float, got {other:?}"),
        }
        // norm=none carries the signed integer deviations.
        let raw = MetricRegistry::shared()
            .evaluate(&"delay:norm=none".parse().unwrap(), &ctx)
            .unwrap()
            .into_column()
            .unwrap();
        for (u, o) in old.per_org.iter().enumerate() {
            assert_eq!(raw.per_org[u], MetricValue::Int(o.deviation()));
        }
        assert_eq!(raw.aggregate, MetricValue::Int(old.delta_psi));
    }

    #[test]
    fn ranking_is_zero_against_itself_and_detects_swaps() {
        let trace = small_trace();
        let result = run(&trace, "ref", 40);
        let ctx = MetricContext::from_result(&trace, &result).with_reference(&result);
        let col = MetricRegistry::shared()
            .evaluate(&"ranking".parse().unwrap(), &ctx)
            .unwrap()
            .into_column()
            .unwrap();
        assert_eq!(col.aggregate, MetricValue::Float(0.0));
        assert!(col.per_org.iter().all(|v| *v == MetricValue::Int(0)));
        // A fabricated reference with the opposite ordering flips every
        // pair.
        let mut swapped = result.clone();
        swapped.psi.reverse();
        let ctx2 = MetricContext::from_result(&trace, &result).with_reference(&swapped);
        let col2 = MetricRegistry::shared()
            .evaluate(&"ranking".parse().unwrap(), &ctx2)
            .unwrap()
            .into_column()
            .unwrap();
        match col2.aggregate {
            MetricValue::Float(v) => assert!(v > 0.0, "swapped ranking must differ"),
            other => panic!("ranking aggregate must be a float, got {other:?}"),
        }
    }

    #[test]
    fn utility_contrib_attributes_value_to_machine_owners() {
        let trace = small_trace();
        let result = run(&trace, "fifo", 50);
        let ctx = MetricContext::from_result(&trace, &result);
        let col = MetricRegistry::shared()
            .evaluate(&"utility:kind=contrib".parse().unwrap(), &ctx)
            .unwrap()
            .into_column()
            .unwrap();
        // Total contribution equals the coalition value.
        let total: f64 = col.per_org.iter().map(MetricValue::as_f64).sum();
        assert_eq!(total, result.coalition_value() as f64);
    }

    #[test]
    fn report_sinks_are_consistent_and_round_trippable() {
        let trace = small_trace();
        let result = run(&trace, "fairshare", 40);
        let reference = run(&trace, "ref", 40);
        let specs: Vec<MetricSpec> = ["machines", "completed", "psi", "delay"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let report = Report::evaluate(
            MetricRegistry::shared(),
            &specs,
            &trace,
            &result,
            Some(&reference),
        )
        .unwrap();
        assert_eq!(report.metric_specs(), ["machines", "completed", "psi", "delay"]);
        assert_eq!(report.orgs, ["a", "b"]);

        // JSON: parse back and compare the delay aggregate bit for bit.
        let json = report.to_json();
        let v = serde_json::parse_value(&json).unwrap();
        let aggregates = v.get("aggregates").unwrap();
        let delay_text = match aggregates.get("delay").unwrap() {
            serde::Value::Number(n) => n.clone(),
            other => panic!("delay aggregate must be a number, got {other:?}"),
        };
        let reparsed: f64 = delay_text.parse().unwrap();
        assert_eq!(
            reparsed.to_bits(),
            report.column("delay").unwrap().aggregate.as_f64().to_bits(),
            "JSON floats must round-trip exactly"
        );
        assert_eq!(
            v.get("metric_specs").unwrap(),
            &serde::Value::Array(vec![
                serde::Value::String("machines".into()),
                serde::Value::String("completed".into()),
                serde::Value::String("psi".into()),
                serde::Value::String("delay".into()),
            ])
        );

        // CSV: header carries canonical specs, one row per org + (all).
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "org,machines,completed,psi,delay");
        assert_eq!(lines.len(), 2 + trace.n_orgs());
        assert!(lines.last().unwrap().starts_with("(all),"));

        // Table: every org and spec appears.
        let table = report.render_table();
        for needle in ["org", "a", "b", "(all)", "machines", "delay"] {
            assert!(table.contains(needle), "table is missing {needle}:\n{table}");
        }
    }

    #[test]
    fn summary_table_renders_and_serializes_exactly() {
        let stat = |label: &str, mean: f64| LabeledStat {
            label: label.into(),
            mean,
            sd: mean / 2.0,
            values: vec![mean],
        };
        let t = SummaryTable {
            title: "Table 1".into(),
            metric: "delay".into(),
            columns: vec!["LPC-EGEE".into(), "RICC".into()],
            cells: vec![
                vec![stat("RoundRobin", 238.4), stat("FairShare", 16.0)],
                vec![stat("RoundRobin", 2839.0), stat("FairShare", 0.1 + 0.2)],
            ],
        };
        let r = t.render();
        assert!(r.contains("RoundRobin"));
        assert!(r.contains("LPC-EGEE"));
        assert!(r.contains("238"));
        let json = t.to_json();
        assert!(json.contains("\"metric\": \"delay\""));
        // The 0.30000000000000004 cell must survive JSON exactly — no
        // format_sig truncation drift between render() and to_json().
        let v = serde_json::parse_value(&json).unwrap();
        let cells = match v.get("cells").unwrap() {
            serde::Value::Array(c) => c,
            _ => panic!("cells must be an array"),
        };
        let ricc = match &cells[1] {
            serde::Value::Array(c) => c,
            _ => panic!("column must be an array"),
        };
        let mean_text = match ricc[1].get("mean").unwrap() {
            serde::Value::Number(n) => n.clone(),
            _ => panic!("mean must be a number"),
        };
        assert_eq!(mean_text.parse::<f64>().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        let csv = t.to_csv();
        assert!(csv.starts_with("algorithm,LPC-EGEE avg,LPC-EGEE sd,RICC avg,RICC sd"));
        assert!(csv.contains("0.30000000000000004"));
        // Canonical multi-parameter spec labels survive the CSV sink
        // verbatim via RFC 4180 quoting, not comma rewriting.
        let spec_table = SummaryTable {
            title: "t".into(),
            metric: "delay".into(),
            columns: vec!["synth:horizon=800,orgs=3".into()],
            cells: vec![vec![stat("fifo", 1.0)]],
        };
        let csv = spec_table.to_csv();
        assert!(
            csv.starts_with("algorithm,\"synth:horizon=800,orgs=3 avg\""),
            "comma-bearing labels must be quoted, got: {csv}"
        );
        assert!(csv.contains("synth:horizon=800,orgs=3"));
    }

    #[test]
    fn format_sig_matches_paper_style() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(0.0144), "0.014");
        assert_eq!(format_sig(6.04), "6.0");
        assert_eq!(format_sig(238.4), "238");
        assert_eq!(format_sig(-238.4), "-238");
        assert_eq!(format_sig(-0.0144), "-0.014");
    }

    #[test]
    fn shared_registry_is_built_once_and_complete() {
        let a = MetricRegistry::shared();
        let b = MetricRegistry::shared();
        assert!(std::ptr::eq(a, b), "shared() must return one instance");
        let fresh = MetricRegistry::default();
        assert_eq!(a.names().collect::<Vec<_>>(), fresh.names().collect::<Vec<_>>());
        assert!(a.names().count() >= 10);
    }

    #[test]
    fn help_mentions_every_name() {
        let registry = MetricRegistry::default();
        let help = registry.help();
        for name in registry.names() {
            assert!(help.contains(name), "help is missing {name}");
        }
    }

    #[test]
    fn registration_extends_and_overrides() {
        struct Custom;
        impl MetricFactory for Custom {
            fn name(&self) -> &str {
                "custom"
            }
            fn summary(&self) -> &str {
                "test-only"
            }
            fn conformance_specs(&self) -> Vec<MetricSpec> {
                vec![MetricSpec::bare("custom")]
            }
            fn evaluate(
                &self,
                spec: &MetricSpec,
                ctx: &MetricContext<'_>,
            ) -> Result<MetricOutput, MetricError> {
                Ok(MetricColumn {
                    spec: spec.clone(),
                    per_org: vec![MetricValue::Int(1); ctx.trace.n_orgs()],
                    aggregate: MetricValue::Int(ctx.trace.n_orgs() as i128),
                }
                .into())
            }
        }
        let mut registry = MetricRegistry::default();
        assert!(registry.register(Box::new(Custom)).is_none());
        let trace = small_trace();
        let result = run(&trace, "fifo", 30);
        let ctx = MetricContext::from_result(&trace, &result);
        let col = registry
            .evaluate(&"custom".parse().unwrap(), &ctx)
            .unwrap()
            .into_column()
            .unwrap();
        assert_eq!(col.aggregate, MetricValue::Int(2));
        assert!(registry.register(Box::new(Custom)).is_some());
    }

    fn ref_context() -> (Trace, SimResult, SimResult) {
        let trace = small_trace();
        let eval = run(&trace, "fifo", 40);
        let reference = run(&trace, "ref", 40);
        (trace, eval, reference)
    }

    #[test]
    fn timeline_specs_round_trip_canonically() {
        for text in
            ["timeline", "timeline:samples=64", "timeline:samples=8,stat=delta_psi"]
        {
            let spec: MetricSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.name(), "timeline");
        }
    }

    /// The historical `fairness_timeline` path panicked on `samples == 0`
    /// (and a non-numeric count never reached it); the spec-addressed
    /// family stays typed end to end.
    #[test]
    fn timeline_bad_params_are_typed_errors_not_panics() {
        let (trace, eval, reference) = ref_context();
        let ctx = MetricContext::from_result(&trace, &eval).with_reference(&reference);
        let registry = MetricRegistry::shared();
        let err = |spec: &str| registry.evaluate(&spec.parse().unwrap(), &ctx);
        assert!(matches!(
            err("timeline:samples=0"),
            Err(MetricError::BadParam { ref metric, ref param, .. })
                if metric == "timeline" && param == "samples"
        ));
        assert!(matches!(
            err("timeline:samples=lots"),
            Err(MetricError::BadParam { ref param, .. }) if param == "samples"
        ));
        // Untrusted spec input cannot request an unbounded grid (every
        // point costs a value per organization in the report).
        assert!(matches!(
            err(&format!("timeline:samples={}", MAX_TIMELINE_SAMPLES + 1)),
            Err(MetricError::BadParam { ref param, .. }) if param == "samples"
        ));
        assert!(matches!(
            err("timeline:stat=vibes"),
            Err(MetricError::BadParam { ref param, .. }) if param == "stat"
        ));
        assert!(matches!(err("timeline:warp=9"), Err(MetricError::UnknownParam { .. })));
        let bare = MetricContext::from_result(&trace, &eval);
        assert!(matches!(
            registry.evaluate(&"timeline".parse().unwrap(), &bare),
            Err(MetricError::NeedsReference { ref metric }) if metric == "timeline"
        ));
    }

    /// Series shape, the dedup'd grid contract, and endpoint bit-identity
    /// with the scalar metrics: `stat=unfairness` ends on `delay`'s
    /// `Δψ/p_tot`, `stat=delta_psi` on `delay:norm=none`'s Manhattan
    /// distance, `stat=ptot` on the reference's completed units.
    #[test]
    fn timeline_series_shape_and_endpoints_match_scalar_metrics() {
        let (trace, eval, reference) = ref_context();
        let ctx = MetricContext::from_result(&trace, &eval).with_reference(&reference);
        let registry = MetricRegistry::shared();
        let series = |spec: &str| {
            registry
                .evaluate(&spec.parse().unwrap(), &ctx)
                .unwrap()
                .into_series()
                .unwrap()
        };
        let column = |spec: &str| {
            registry
                .evaluate(&spec.parse().unwrap(), &ctx)
                .unwrap()
                .into_column()
                .unwrap()
        };

        let s = series("timeline:samples=16");
        assert!(s.times.windows(2).all(|w| w[0] < w[1]), "grid must increase");
        assert!(s.times.len() <= 16);
        assert_eq!(*s.times.last().unwrap(), ctx.horizon);
        assert_eq!(s.per_org.len(), trace.n_orgs());
        for vs in &s.per_org {
            assert_eq!(vs.len(), s.times.len());
        }
        assert_eq!(s.aggregate.len(), s.times.len());
        let delay = column("delay");
        match (s.final_aggregate().unwrap(), delay.aggregate) {
            (MetricValue::Float(a), MetricValue::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "endpoint must equal delay")
            }
            other => panic!("both must be floats, got {other:?}"),
        }
        // Per-org endpoints equal delay's scaled deviations too.
        for (u, v) in delay.per_org.iter().enumerate() {
            assert_eq!(s.per_org[u].last().unwrap(), v);
        }

        let d = series("timeline:samples=16,stat=delta_psi");
        assert_eq!(
            d.final_aggregate().unwrap(),
            column("delay:norm=none").aggregate,
            "delta_psi endpoint must equal the Manhattan distance"
        );
        // More samples than horizon moments: dedup'd, never duplicated.
        let oversampled = series("timeline:samples=4000,stat=delta_psi");
        assert_eq!(oversampled.times.len(), ctx.horizon as usize);
        assert_eq!(oversampled.final_aggregate(), d.final_aggregate());

        let p = series("timeline:samples=16,stat=ptot");
        assert_eq!(
            p.final_aggregate().unwrap(),
            MetricValue::Int(reference.schedule.completed_units(ctx.horizon) as i128)
        );
        // p_tot is monotone in t.
        let ints: Vec<i128> = p
            .aggregate
            .iter()
            .map(|v| match v {
                MetricValue::Int(i) => *i,
                other => panic!("ptot must be integer, got {other:?}"),
            })
            .collect();
        assert!(ints.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn report_sinks_carry_time_series() {
        let (trace, eval, reference) = ref_context();
        let specs: Vec<MetricSpec> =
            ["psi", "timeline:samples=4"].iter().map(|s| s.parse().unwrap()).collect();
        let report = Report::evaluate(
            MetricRegistry::shared(),
            &specs,
            &trace,
            &eval,
            Some(&reference),
        )
        .unwrap();
        assert_eq!(report.columns.len(), 1);
        assert_eq!(report.series.len(), 1);
        assert_eq!(report.metric_specs(), ["psi", "timeline:samples=4"]);
        let s = report.time_series("timeline:samples=4").unwrap();

        // JSON: the series field carries times/orgs/aggregate with exact
        // round-trippable values.
        let v = serde_json::parse_value(&report.to_json()).unwrap();
        let series = match v.get("series").unwrap() {
            serde::Value::Array(a) => a,
            other => panic!("series must be an array, got {other:?}"),
        };
        assert_eq!(series.len(), 1);
        assert_eq!(
            series[0].get("spec").unwrap(),
            &serde::Value::String("timeline:samples=4".into())
        );
        let aggregate = match series[0].get("aggregate").unwrap() {
            serde::Value::Array(a) => a,
            other => panic!("aggregate must be an array, got {other:?}"),
        };
        assert_eq!(aggregate.len(), s.times.len());
        if let serde::Value::Number(n) = &aggregate[s.times.len() - 1] {
            let reparsed: f64 = n.parse().unwrap();
            assert_eq!(
                reparsed.to_bits(),
                s.final_aggregate().unwrap().as_f64().to_bits(),
                "series floats must round-trip exactly"
            );
        } else {
            panic!("aggregate entries must be numbers");
        }

        // A scalar-only report keeps the historical schema: no series key.
        let scalar_only = Report::evaluate(
            MetricRegistry::shared(),
            &["psi".parse().unwrap()],
            &trace,
            &eval,
            None,
        )
        .unwrap();
        let v = serde_json::parse_value(&scalar_only.to_json()).unwrap();
        assert!(v.get("series").is_none(), "scalar reports must not grow a series key");

        // CSV: the series block header names the spec, the orgs, (all).
        let csv = report.to_csv();
        assert!(csv.contains("\ntimeline:samples=4,a,b,(all)\n"), "csv:\n{csv}");
        let last_t = s.times.last().unwrap();
        assert!(
            csv.lines().any(|l| l.starts_with(&format!("{last_t},"))),
            "csv must carry a row for the final sample time:\n{csv}"
        );

        // Table: the series is rendered under its spec heading.
        let table = report.render_table();
        assert!(table.contains("timeline:samples=4:"), "table:\n{table}");
        assert!(table.contains("(all)"));

        // A series-only report skips the degenerate scalar block: no
        // value-less `org` table/CSV header, straight to the series.
        let series_only = Report::evaluate(
            MetricRegistry::shared(),
            &["timeline:samples=4".parse().unwrap()],
            &trace,
            &eval,
            Some(&reference),
        )
        .unwrap();
        let table = series_only.render_table();
        assert!(
            table.starts_with("timeline:samples=4:"),
            "series-only table must skip the scalar block:\n{table}"
        );
        let csv = series_only.to_csv();
        assert!(
            csv.starts_with("timeline:samples=4,a,b,(all)\n"),
            "series-only CSV must skip the scalar block:\n{csv}"
        );
    }
}
