//! The event-driven simulation engine.

use crate::cluster::Cluster;
use crate::session::SimError;
use fairsched_core::checked_time;
use fairsched_core::model::{JobId, MachineId, Time, Trace};
use fairsched_core::schedule::{Schedule, ScheduledJob};
use fairsched_core::scheduler::{Scheduler, SelectContext};
use fairsched_core::utility::{sp_vector, Util};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Engine options.
#[derive(Copy, Clone, Debug)]
pub struct SimOptions {
    /// Simulation stops once the next event time exceeds the horizon;
    /// utilities and metrics are evaluated at the horizon.
    pub horizon: Time,
    /// Validate the produced schedule against every model invariant
    /// (including greediness) before returning. A sorted event sweep —
    /// `O(n log n)` in jobs + entries — cheap enough for `--paper-scale`
    /// runs.
    pub validate: bool,
}

/// The outcome of a simulation run.
#[derive(Clone, Debug, Serialize)]
pub struct SimResult {
    /// The scheduler's display name.
    pub scheduler: String,
    /// All started jobs.
    pub schedule: Schedule,
    /// The evaluation horizon.
    pub horizon: Time,
    /// Exact `ψ_sp` per organization at the horizon.
    pub psi: Vec<Util>,
    /// Busy machine time in `[0, horizon)` (= completed unit parts).
    pub busy_time: Time,
    /// Resource utilization `busy / (m·horizon)` (Section 6's metric).
    pub utilization: f64,
    /// Jobs started by the horizon.
    pub started_jobs: usize,
    /// Jobs completed by the horizon.
    pub completed_jobs: usize,
}

impl SimResult {
    /// The coalition value `v = Σ_u ψ_sp(u)` at the horizon.
    pub fn coalition_value(&self) -> Util {
        self.psi.iter().sum()
    }
}

/// Runs `scheduler` over `trace` until `horizon` (no validation).
///
/// Legacy entry point kept for compatibility; prefer
/// [`Simulation`](crate::Simulation), the session API. Engine-contract
/// violations (invalid trace, ungreedy selection, out-of-range machine
/// pick) are reported as typed [`SimError`]s — until this repo's first
/// panic-free-library ratchet these wrappers re-panicked on them.
pub fn simulate(
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    horizon: Time,
) -> Result<SimResult, SimError> {
    simulate_with_options(trace, scheduler, SimOptions { horizon, validate: false })
}

/// Runs `scheduler` over `trace` with explicit options.
///
/// Legacy entry point kept for compatibility; prefer
/// [`Simulation`](crate::Simulation). Equivalent to [`run_scheduler`].
///
/// # Errors
/// Exactly those of [`run_scheduler`]: [`SimError::InvalidTrace`],
/// [`SimError::BadSelection`], [`SimError::BadMachinePick`], and (with
/// `validate`) [`SimError::InvalidSchedule`].
pub fn simulate_with_options(
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: SimOptions,
) -> Result<SimResult, SimError> {
    run_scheduler(trace, scheduler, options)
}

/// Runs `scheduler` over `trace`, reporting failures as [`SimError`]s.
///
/// The engine is the trusted component enforcing the paper's model:
///
/// * **online** — jobs are revealed to the scheduler at their release time;
/// * **non-clairvoyant** — the scheduler receives [`fairsched_core::JobMeta`]
///   (no processing time); completions reveal durations implicitly;
/// * **per-organization FIFO** — the engine always starts the selected
///   organization's oldest waiting job;
/// * **greedy** — while a machine is free and a job waits, the scheduler
///   *must* select (its contract), and the engine starts the job;
/// * **non-preemptive** — started jobs run to completion.
///
/// # Errors
///
/// * [`SimError::InvalidTrace`] — the trace fails validation;
/// * [`SimError::BadSelection`] — the scheduler selected an organization
///   with no waiting jobs (a scheduler bug);
/// * [`SimError::BadMachinePick`] — the scheduler picked a machine index
///   outside the free list (a scheduler bug; previously this was silently
///   coerced to machine 0);
/// * [`SimError::InvalidSchedule`] — with `validate`, the produced
///   schedule violates a model invariant.
pub fn run_scheduler(
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: SimOptions,
) -> Result<SimResult, SimError> {
    let mut state = EngineState::new(trace, scheduler)?;
    state.step(trace, scheduler, options.horizon)?;
    state.into_result(trace, scheduler, options)
}

/// The resumable core of the engine: the complete event-loop position of
/// a run in progress, factored out of [`run_scheduler`] so online
/// sessions ([`SimSession`](crate::SimSession)) can advance a run in
/// increments and admit jobs between steps while sharing the batch
/// engine's exact loop (bit-identical schedules, pinned by the goldens).
///
/// Invariant after [`EngineState::step`]`(until)`: every release and
/// completion event with time `<= until` has been processed, so
/// `releases[next_release] > stepped_to` — which is what makes mid-run
/// admission of a job with `release > stepped_to` safe: its insertion
/// position is at or past `next_release`, and only ids of unreleased
/// (never observed) jobs shift.
#[derive(Clone, Debug)]
pub(crate) struct EngineState {
    cluster: Cluster,
    waiting: Vec<VecDeque<JobId>>,
    waiting_counts: Vec<usize>,
    total_waiting: usize,
    /// Completion events: (time, machine).
    completions: BinaryHeap<Reverse<(Time, u32)>>,
    schedule: Schedule,
    completed_jobs: usize,
    next_release: usize,
    stepped_to: Option<Time>,
}

impl EngineState {
    /// Validates the trace, initializes the scheduler, and returns the
    /// ready-to-step state (no events processed yet).
    pub(crate) fn new(
        trace: &Trace,
        scheduler: &mut dyn Scheduler,
    ) -> Result<Self, SimError> {
        trace.validate().map_err(SimError::InvalidTrace)?;
        let info = trace.cluster_info();
        scheduler.init(&info);
        Ok(EngineState {
            cluster: Cluster::new(&info),
            waiting: vec![VecDeque::new(); trace.n_orgs()],
            waiting_counts: vec![0; trace.n_orgs()],
            total_waiting: 0,
            completions: BinaryHeap::new(),
            schedule: Schedule::new(),
            completed_jobs: 0,
            next_release: 0,
            stepped_to: None,
        })
    }

    /// The largest `until` stepped to so far (`None` before any step).
    pub(crate) fn stepped_to(&self) -> Option<Time> {
        self.stepped_to
    }

    /// The schedule built so far.
    pub(crate) fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Jobs completed so far.
    pub(crate) fn completed_jobs(&self) -> usize {
        self.completed_jobs
    }

    /// Advances the event loop until the next event time would exceed
    /// `until`, then records `until` as stepped-to. Stepping to an
    /// earlier `until` than a previous step is a no-op (all events up to
    /// the high-water mark are already processed).
    pub(crate) fn step(
        &mut self,
        trace: &Trace,
        scheduler: &mut dyn Scheduler,
        until: Time,
    ) -> Result<(), SimError> {
        // The release loop walks the raw columns (cache-hot; assembling a
        // full `Job` per release is only needed for the scheduler callback).
        let releases = trace.releases();
        let job_orgs = trace.job_orgs();

        loop {
            // Next event time: the earlier of the next release and completion.
            let release_t = releases.get(self.next_release).copied();
            let completion_t = self.completions.peek().map(|Reverse((t, _))| *t);
            let t = match (release_t, completion_t) {
                (None, None) => break,
                (Some(r), None) => r,
                (None, Some(c)) => c,
                (Some(r), Some(c)) => r.min(c),
            };
            if t > until {
                break;
            }

            // 1. Completions at t free machines.
            while let Some(&Reverse((ct, machine))) = self.completions.peek() {
                if ct > t {
                    break;
                }
                self.completions.pop();
                let machine = MachineId(machine);
                let (job, start) = self.cluster.complete(machine);
                self.completed_jobs += 1;
                scheduler.on_complete(t, &trace.job(job).meta(), machine, start);
            }

            // 2. Releases at t enter the queues.
            while self.next_release < releases.len() && releases[self.next_release] == t {
                let org = job_orgs[self.next_release];
                let id = JobId(self.next_release as u32);
                self.waiting[org.index()].push_back(id);
                self.waiting_counts[org.index()] += 1;
                self.total_waiting += 1;
                scheduler.on_release(t, &trace.job(id).meta());
                self.next_release += 1;
            }

            // 3. Greedy scheduling loop at t.
            while self.cluster.has_free() && self.total_waiting > 0 {
                let org = {
                    let ctx = SelectContext {
                        t,
                        waiting: &self.waiting_counts,
                        free_machines: self.cluster.free_machines(),
                    };
                    scheduler.select(&ctx)
                };
                // Out-of-range ids and empty-queue picks are the same contract
                // violation; the bounds check keeps this a typed error rather
                // than an index panic.
                if self.waiting_counts.get(org.index()).copied().unwrap_or(0) == 0 {
                    return Err(SimError::BadSelection {
                        scheduler: scheduler.name(),
                        org,
                        t,
                    });
                }
                let job_id =
                    self.waiting[org.index()].pop_front().expect("count/queue mismatch");
                self.waiting_counts[org.index()] -= 1;
                self.total_waiting -= 1;
                let job = trace.job(job_id);

                let machine_idx = {
                    let ctx = SelectContext {
                        t,
                        waiting: &self.waiting_counts,
                        free_machines: self.cluster.free_machines(),
                    };
                    match scheduler.pick_machine(&ctx, &job.meta()) {
                        None => 0,
                        Some(i) if i < self.cluster.free_machines().len() => i,
                        Some(i) => {
                            return Err(SimError::BadMachinePick {
                                scheduler: scheduler.name(),
                                picked: i,
                                free: self.cluster.free_machines().len(),
                                t,
                            })
                        }
                    }
                };
                let machine = self.cluster.start(machine_idx, job_id, t);
                self.completions.push(Reverse((
                    checked_time::completion(t, job.proc_time),
                    machine.0,
                )));
                self.schedule.push(ScheduledJob {
                    job: job_id,
                    org: job.org,
                    machine,
                    start: t,
                    proc_time: job.proc_time,
                });
                scheduler.on_start(t, &job.meta(), machine);
            }
        }

        self.stepped_to = Some(self.stepped_to.map_or(until, |s| s.max(until)));
        Ok(())
    }

    /// Evaluates the run at `options.horizon`, consuming the state. The
    /// scheduler is only consulted for its display name.
    pub(crate) fn into_result(
        self,
        trace: &Trace,
        scheduler: &mut dyn Scheduler,
        options: SimOptions,
    ) -> Result<SimResult, SimError> {
        let info = trace.cluster_info();
        let horizon = options.horizon;
        if options.validate {
            if let Err(violation) =
                self.schedule.validate_with_info(trace, &info, horizon)
            {
                return Err(SimError::InvalidSchedule {
                    scheduler: scheduler.name(),
                    violation,
                });
            }
        }

        let psi = sp_vector(trace, &self.schedule, horizon);
        let busy_time = self.schedule.busy_time(horizon);
        Ok(SimResult {
            scheduler: scheduler.name(),
            utilization: self.schedule.utilization(info.n_machines(), horizon),
            started_jobs: self.schedule.len(),
            schedule: self.schedule,
            horizon,
            psi,
            busy_time,
            completed_jobs: self.completed_jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_core::model::{JobMeta, OrgId};
    use fairsched_core::scheduler::{
        CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
        GeneralRefScheduler, RandScheduler, RandomScheduler, RefScheduler,
        RoundRobinScheduler, UtFairShareScheduler,
    };
    use fairsched_core::utility::sp_value;
    use fairsched_core::utility::{FlowTime, SpUtility};

    fn small_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
        b.build().unwrap()
    }

    #[test]
    fn single_machine_fifo_schedule() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 2).job(a, 0, 3).job(a, 10, 1);
        let trace = b.build().unwrap();
        let r = simulate_with_options(
            &trace,
            &mut FifoScheduler::new(),
            SimOptions { horizon: 100, validate: true },
        )
        .expect("valid run");
        let starts: Vec<Time> = r.schedule.entries().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 2, 10]);
        assert_eq!(r.completed_jobs, 3);
        assert_eq!(r.busy_time, 6);
        assert_eq!(
            r.psi[0],
            sp_value(0, 2, 100) + sp_value(2, 3, 100) + sp_value(10, 1, 100)
        );
    }

    #[test]
    fn horizon_cuts_schedule() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 10).job(a, 0, 10);
        let trace = b.build().unwrap();
        let r = simulate(&trace, &mut FifoScheduler::new(), 5).expect("valid run");
        // Only the first job started (second would start at 10 > horizon).
        assert_eq!(r.started_jobs, 1);
        assert_eq!(r.completed_jobs, 0);
        assert_eq!(r.busy_time, 5);
        assert!((r.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_schedulers_produce_valid_schedules() {
        let trace = small_trace();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(RandomScheduler::new(1)),
            Box::new(FairShareScheduler::new()),
            Box::new(UtFairShareScheduler::new()),
            Box::new(CurrFairShareScheduler::new()),
            Box::new(DirectContrScheduler::new(2)),
            Box::new(RefScheduler::new(&trace)),
            Box::new(RandScheduler::new(&trace, 10, 3)),
            Box::new(GeneralRefScheduler::new(&trace, SpUtility)),
            Box::new(GeneralRefScheduler::new(&trace, FlowTime)),
        ];
        for s in schedulers.iter_mut() {
            let r = simulate_with_options(
                &trace,
                s.as_mut(),
                SimOptions { horizon: 50, validate: true },
            )
            .expect("valid run");
            assert_eq!(r.started_jobs, 4, "{} must start all jobs", r.scheduler);
            assert_eq!(r.completed_jobs, 4);
        }
    }

    #[test]
    fn greedy_engine_never_idles_with_waiting_jobs() {
        // 2 machines, burst of 6 jobs: busy time must be the full work.
        let mut b = Trace::builder();
        let a = b.org("a", 2);
        b.jobs(a, 0, 5, 6);
        let trace = b.build().unwrap();
        let r = simulate_with_options(
            &trace,
            &mut RoundRobinScheduler::new(),
            SimOptions { horizon: 15, validate: true },
        )
        .expect("valid run");
        // 6 jobs × 5 on 2 machines = exactly 15 each machine: full util.
        assert!((r.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ref_and_rand_agree_with_engine_on_psi() {
        // The scheduler-internal trackers must agree with the engine's
        // closed-form evaluation.
        let trace = small_trace();
        let mut r = RefScheduler::new(&trace);
        let result = simulate(&trace, &mut r, 30).expect("valid run");
        assert_eq!(r.psi(30), result.psi);
    }

    #[test]
    fn empty_trace_rejected() {
        let mut b = Trace::builder();
        b.org("a", 1);
        let trace = b.build().unwrap();
        let r = simulate(&trace, &mut FifoScheduler::new(), 10).expect("valid run");
        assert_eq!(r.started_jobs, 0);
        assert_eq!(r.utilization, 0.0);
    }

    #[test]
    fn deterministic_reruns() {
        let trace = small_trace();
        let run = |seed: u64| {
            let mut s = DirectContrScheduler::new(seed);
            let r = simulate(&trace, &mut s, 40).expect("valid run");
            r.schedule.entries().to_vec()
        };
        assert_eq!(run(5), run(5));
    }

    /// A scheduler that deliberately picks a machine index past the free
    /// list, exercising the `BadMachinePick` engine guard.
    struct OutOfRangePicker;

    impl Scheduler for OutOfRangePicker {
        fn name(&self) -> String {
            "OutOfRangePicker".into()
        }

        fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
            ctx.waiting_orgs().next().expect("greedy contract")
        }

        fn pick_machine(
            &mut self,
            ctx: &SelectContext<'_>,
            _job: &JobMeta,
        ) -> Option<usize> {
            Some(ctx.free_machines.len() + 3)
        }
    }

    /// A scheduler that selects an organization with no waiting jobs.
    struct BadSelector;

    impl Scheduler for BadSelector {
        fn name(&self) -> String {
            "BadSelector".into()
        }

        fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
            // Deliberately pick an org without waiting jobs.
            let busy = ctx.waiting_orgs().next().expect("greedy contract");
            OrgId(((busy.index() + 1) % ctx.waiting.len()) as u32)
        }
    }

    /// A scheduler that returns an organization id past the org count.
    struct OutOfRangeSelector;

    impl Scheduler for OutOfRangeSelector {
        fn name(&self) -> String {
            "OutOfRangeSelector".into()
        }

        fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
            OrgId(ctx.waiting.len() as u32 + 7)
        }
    }

    #[test]
    fn out_of_range_machine_pick_is_error_not_machine_zero() {
        let trace = small_trace();
        let err = run_scheduler(
            &trace,
            &mut OutOfRangePicker,
            SimOptions { horizon: 50, validate: false },
        );
        match err {
            Err(SimError::BadMachinePick { scheduler, picked, free, t }) => {
                assert_eq!(scheduler, "OutOfRangePicker");
                assert!(picked >= free, "picked {picked} must be >= free {free}");
                assert_eq!(t, 0);
            }
            other => panic!("expected BadMachinePick, got {other:?}"),
        }
    }

    #[test]
    fn ungreedy_selection_is_error() {
        // One org floods the single machine; BadSelector names the other.
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.org("idle", 1);
        b.jobs(a, 0, 2, 3);
        let trace = b.build().unwrap();
        let err = run_scheduler(
            &trace,
            &mut BadSelector,
            SimOptions { horizon: 20, validate: false },
        );
        match err {
            Err(SimError::BadSelection { scheduler, org, .. }) => {
                assert_eq!(scheduler, "BadSelector");
                assert_eq!(org, OrgId(1));
            }
            other => panic!("expected BadSelection, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_org_selection_is_error_not_index_panic() {
        let trace = small_trace();
        let err = run_scheduler(
            &trace,
            &mut OutOfRangeSelector,
            SimOptions { horizon: 20, validate: false },
        );
        match err {
            Err(SimError::BadSelection { scheduler, org, .. }) => {
                assert_eq!(scheduler, "OutOfRangeSelector");
                assert!(org.index() >= trace.n_orgs());
            }
            other => panic!("expected BadSelection, got {other:?}"),
        }
    }

    #[test]
    fn legacy_simulate_reports_bad_machine_pick_as_typed_error() {
        // These wrappers used to re-panic on engine-contract violations;
        // they now surface the same typed SimError as run_scheduler.
        let trace = small_trace();
        match simulate(&trace, &mut OutOfRangePicker, 50) {
            Err(SimError::BadMachinePick { scheduler, .. }) => {
                assert_eq!(scheduler, "OutOfRangePicker")
            }
            other => panic!("expected BadMachinePick, got {other:?}"),
        }
    }

    #[test]
    fn in_range_machine_picks_still_honored() {
        // DirectContr randomizes machine choice within range; the engine
        // must accept those picks (regression guard for the new check).
        let trace = small_trace();
        let r = run_scheduler(
            &trace,
            &mut DirectContrScheduler::new(3),
            SimOptions { horizon: 50, validate: true },
        )
        .expect("valid run");
        assert_eq!(r.completed_jobs, 4);
    }
}
