//! The `Simulation` session API: one fluent, fallible entry point for
//! running any registered scheduler over a trace.
//!
//! The historical entry points ([`simulate`](crate::simulate),
//! [`simulate_with_options`](crate::simulate_with_options)) take an
//! already-constructed `&mut dyn Scheduler` and panic on every failure.
//! [`Simulation`] replaces both concerns: schedulers are named by
//! [`SchedulerSpec`] strings resolved through a
//! [`Registry`], and every failure — malformed spec, unknown scheduler,
//! invalid trace, scheduler contract violations — surfaces as a typed
//! [`SimError`].
//!
//! ```
//! use fairsched_core::Trace;
//! use fairsched_sim::Simulation;
//!
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 2);
//! b.jobs(alpha, 0, 4, 3);
//! b.job(beta, 6, 2);
//! let trace = b.build().unwrap();
//!
//! let result = Simulation::new(&trace)
//!     .scheduler("fairshare")?
//!     .horizon(5_000)
//!     .validate(true)
//!     .seed(7)
//!     .run()?;
//! assert_eq!(result.completed_jobs, 4);
//!
//! // Fan out over several schedulers with identical settings:
//! let specs = ["roundrobin".parse()?, "directcontr".parse()?];
//! let results = Simulation::new(&trace).horizon(5_000).run_matrix(&specs)?;
//! assert_eq!(results.len(), 2);
//! # Ok::<(), fairsched_sim::SimError>(())
//! ```

use crate::engine::{run_scheduler, SimOptions, SimResult};
use fairsched_core::model::{OrgId, Time, Trace, TraceError};
use fairsched_core::schedule::ScheduleViolation;
use fairsched_core::scheduler::registry::{
    BuildContext, Registry, SchedulerSpec, SpecError,
};
use fairsched_core::scheduler::Scheduler;
use std::fmt;

/// Why a simulation session could not produce a result.
#[derive(Debug)]
pub enum SimError {
    /// The trace fails model validation.
    InvalidTrace(TraceError),
    /// The scheduler spec was malformed, unknown, or had bad parameters.
    Spec(SpecError),
    /// `run` was called without choosing a scheduler.
    NoScheduler,
    /// The scheduler broke the greedy contract by selecting an
    /// organization with no waiting jobs.
    BadSelection {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The organization it selected.
        org: OrgId,
        /// When.
        t: Time,
    },
    /// The scheduler picked a machine index outside the free list.
    /// (Before the session API this was silently coerced to machine 0.)
    BadMachinePick {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The picked index.
        picked: usize,
        /// How many machines were actually free.
        free: usize,
        /// When.
        t: Time,
    },
    /// Post-run validation found a model-invariant violation.
    InvalidSchedule {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The violated invariant.
        violation: ScheduleViolation,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::Spec(e) => write!(f, "{e}"),
            SimError::NoScheduler => {
                write!(f, "no scheduler chosen (call .scheduler(..) before .run())")
            }
            SimError::BadSelection { scheduler, org, t } => write!(
                f,
                "scheduler {scheduler} selected {org} which has no waiting jobs at t={t}"
            ),
            SimError::BadMachinePick { scheduler, picked, free, t } => write!(
                f,
                "scheduler {scheduler} picked machine index {picked} with only {free} free at t={t}"
            ),
            SimError::InvalidSchedule { scheduler, violation } => {
                write!(f, "scheduler {scheduler} produced an invalid schedule: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            SimError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// What `run` will instantiate.
enum Chosen {
    None,
    Spec(SchedulerSpec),
    Instance(Box<dyn Scheduler>),
}

/// A fluent simulation session over one trace.
///
/// Defaults: horizon = [`Trace::completion_horizon`] (run to completion),
/// `validate = false`, `seed = 0`, scheduler resolution through
/// [`Registry::default`]. See the [module docs](self) for an example.
pub struct Simulation<'a> {
    trace: &'a Trace,
    registry: Option<&'a Registry>,
    chosen: Chosen,
    horizon: Option<Time>,
    validate: bool,
    seed: u64,
}

impl<'a> Simulation<'a> {
    /// A session over `trace` with default settings.
    pub fn new(trace: &'a Trace) -> Self {
        Simulation {
            trace,
            registry: None,
            chosen: Chosen::None,
            horizon: None,
            validate: false,
            seed: 0,
        }
    }

    /// Chooses the scheduler by spec string (`"ref"`, `"rand:perms=15"`,
    /// …). Fails fast on syntax errors; unknown names and bad parameter
    /// values surface from [`run`](Simulation::run), where the registry is
    /// consulted.
    pub fn scheduler(mut self, spec: &str) -> Result<Self, SimError> {
        self.chosen = Chosen::Spec(spec.parse::<SchedulerSpec>()?);
        Ok(self)
    }

    /// Chooses the scheduler by parsed spec.
    pub fn scheduler_spec(mut self, spec: SchedulerSpec) -> Self {
        self.chosen = Chosen::Spec(spec);
        self
    }

    /// Supplies an already-built scheduler instance (the escape hatch for
    /// custom policies not worth registering).
    pub fn scheduler_instance(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.chosen = Chosen::Instance(scheduler);
        self
    }

    /// Resolves spec names through `registry` instead of
    /// [`Registry::default`].
    pub fn registry(mut self, registry: &'a Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the evaluation horizon (default: the trace's completion
    /// horizon, i.e. run to completion).
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables post-run validation of every model invariant (a sorted
    /// event sweep, `O(n log n)` in jobs + entries — usable even at
    /// `--paper-scale`).
    pub fn validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Seeds the scheduler's internal randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn options(&self) -> SimOptions {
        SimOptions {
            horizon: self.horizon.unwrap_or_else(|| self.trace.completion_horizon()),
            validate: self.validate,
        }
    }

    /// The registry this session resolves specs through: the explicit one
    /// if supplied, else the process-wide [`Registry::shared`] default
    /// (built once behind a `OnceLock`, not per call).
    fn resolve_registry(&self) -> &'a Registry {
        self.registry.unwrap_or_else(|| Registry::shared())
    }

    fn build_spec(&self, spec: &SchedulerSpec) -> Result<Box<dyn Scheduler>, SimError> {
        let ctx = BuildContext { trace: self.trace, seed: self.seed };
        self.resolve_registry().build(spec, &ctx).map_err(SimError::from)
    }

    /// Runs the session, consuming it.
    pub fn run(self) -> Result<SimResult, SimError> {
        let options = self.options();
        let mut scheduler = match self.chosen {
            Chosen::None => return Err(SimError::NoScheduler),
            Chosen::Instance(s) => s,
            Chosen::Spec(ref spec) => self.build_spec(spec)?,
        };
        run_scheduler(self.trace, scheduler.as_mut(), options)
    }

    /// Runs one simulation per spec with this session's settings (same
    /// trace, horizon, seed, validation) — the experiment-matrix helper
    /// behind the bench tables. Any scheduler chosen via
    /// [`scheduler`](Simulation::scheduler) is ignored here; only `specs`
    /// are run.
    ///
    /// Sessions are embarrassingly parallel, so the specs are fanned out
    /// over [`parallel_map`](crate::parallel::parallel_map) worker
    /// threads. Each run is seeded exactly as in a serial loop, results
    /// come back in spec order, and on failure the error reported is the
    /// first failing spec's (in spec order) — byte-for-byte the serial
    /// behavior.
    pub fn run_matrix(
        &self,
        specs: &[SchedulerSpec],
    ) -> Result<Vec<SimResult>, SimError> {
        let options = self.options();
        let registry = self.resolve_registry();
        let trace = self.trace;
        let seed = self.seed;
        crate::parallel::parallel_map(specs.to_vec(), move |spec| {
            let ctx = BuildContext { trace, seed };
            let mut scheduler = registry.build(&spec, &ctx).map_err(SimError::from)?;
            run_scheduler(trace, scheduler.as_mut(), options)
        })
        .into_iter()
        .collect()
    }
}

impl fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("horizon", &self.horizon)
            .field("validate", &self.validate)
            .field("seed", &self.seed)
            .field(
                "scheduler",
                &match &self.chosen {
                    Chosen::None => "<none>".to_string(),
                    Chosen::Spec(s) => s.to_string(),
                    Chosen::Instance(s) => format!("<instance {}>", s.name()),
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_core::scheduler::FifoScheduler;

    fn small_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
        b.build().unwrap()
    }

    #[test]
    fn builder_runs_spec_through_default_registry() {
        let trace = small_trace();
        let result = Simulation::new(&trace)
            .scheduler("fairshare")
            .unwrap()
            .horizon(50)
            .validate(true)
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(result.scheduler, "FairShare");
        assert_eq!(result.completed_jobs, 4);
    }

    #[test]
    fn default_horizon_runs_to_completion() {
        let trace = small_trace();
        let result = Simulation::new(&trace).scheduler("fifo").unwrap().run().unwrap();
        assert_eq!(result.completed_jobs, trace.n_jobs());
        assert_eq!(result.horizon, trace.completion_horizon());
    }

    #[test]
    fn missing_scheduler_is_typed_error() {
        let trace = small_trace();
        assert!(matches!(Simulation::new(&trace).run(), Err(SimError::NoScheduler)));
    }

    #[test]
    fn malformed_spec_fails_fast() {
        let trace = small_trace();
        let err = Simulation::new(&trace).scheduler("rand:perms");
        assert!(matches!(err, Err(SimError::Spec(SpecError::BadSyntax { .. }))));
    }

    #[test]
    fn unknown_scheduler_surfaces_at_run() {
        let trace = small_trace();
        let err = Simulation::new(&trace).scheduler("warp-drive").unwrap().run();
        assert!(matches!(err, Err(SimError::Spec(SpecError::UnknownScheduler { .. }))));
    }

    #[test]
    fn instance_escape_hatch() {
        let trace = small_trace();
        let result = Simulation::new(&trace)
            .scheduler_instance(Box::new(FifoScheduler::new()))
            .horizon(50)
            .run()
            .unwrap();
        assert_eq!(result.scheduler, "Fifo");
    }

    #[test]
    fn run_matrix_fans_out_in_order() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = ["roundrobin", "fairshare", "rand:perms=5"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let results = Simulation::new(&trace)
            .horizon(50)
            .validate(true)
            .seed(3)
            .run_matrix(&specs)
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].scheduler, "RoundRobin");
        assert_eq!(results[1].scheduler, "FairShare");
        assert_eq!(results[2].scheduler, "Rand(N=5)");
        for r in &results {
            assert_eq!(r.completed_jobs, 4);
        }
    }

    /// The parallel fan-out must be indistinguishable from a serial loop:
    /// same specs, same seeds, same order, same schedules and ψ vectors.
    #[test]
    fn run_matrix_parallel_matches_serial_runs() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = [
            "ref",
            "rand:perms=7",
            "roundrobin",
            "fairshare",
            "utfairshare",
            "currfairshare",
            "directcontr",
            "fifo",
            "random",
            "rand:perms=20",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let session = Simulation::new(&trace).horizon(60).validate(true).seed(11);
        let parallel = session.run_matrix(&specs).unwrap();
        assert_eq!(parallel.len(), specs.len());
        for (spec, par) in specs.iter().zip(&parallel) {
            let serial = Simulation::new(&trace)
                .scheduler_spec(spec.clone())
                .horizon(60)
                .validate(true)
                .seed(11)
                .run()
                .unwrap();
            assert_eq!(par.scheduler, serial.scheduler);
            assert_eq!(par.schedule, serial.schedule, "schedule diverged for {spec}");
            assert_eq!(par.psi, serial.psi, "ψ diverged for {spec}");
            assert_eq!(par.completed_jobs, serial.completed_jobs);
        }
    }

    /// Fan-out is deterministic run-to-run (worker interleaving must not
    /// leak into results).
    #[test]
    fn run_matrix_parallel_is_deterministic() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = ["rand:perms=9", "random", "directcontr", "ref"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let run = || {
            Simulation::new(&trace)
                .horizon(50)
                .seed(23)
                .run_matrix(&specs)
                .unwrap()
                .into_iter()
                .map(|r| (r.scheduler, r.psi, r.schedule.entries().to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_matrix_propagates_spec_errors() {
        let trace = small_trace();
        let specs = vec!["roundrobin".parse().unwrap(), "nonesuch".parse().unwrap()];
        assert!(matches!(
            Simulation::new(&trace).run_matrix(&specs),
            Err(SimError::Spec(SpecError::UnknownScheduler { .. }))
        ));
    }

    #[test]
    fn custom_registry_is_consulted() {
        let trace = small_trace();
        let registry = Registry::new(); // deliberately empty
        let err =
            Simulation::new(&trace).registry(&registry).scheduler("fifo").unwrap().run();
        assert!(matches!(err, Err(SimError::Spec(SpecError::UnknownScheduler { .. }))));
    }

    #[test]
    fn seed_reaches_randomized_schedulers() {
        let trace = small_trace();
        let run = |seed| {
            Simulation::new(&trace)
                .scheduler("random")
                .unwrap()
                .horizon(40)
                .seed(seed)
                .run()
                .unwrap()
                .schedule
                .entries()
                .to_vec()
        };
        assert_eq!(run(5), run(5));
    }
}
