//! The `Simulation` session API: one fluent, fallible entry point for
//! running any registered scheduler over any registered workload.
//!
//! The historical entry points ([`simulate`](crate::simulate),
//! [`simulate_with_options`](crate::simulate_with_options)) take an
//! already-constructed `&mut dyn Scheduler`.
//! [`Simulation`] replaces both concerns: schedulers are named by
//! [`SchedulerSpec`] strings resolved through a [`Registry`], workloads by
//! [`WorkloadSpec`] strings resolved through a [`WorkloadRegistry`], and
//! every failure — malformed spec, unknown scheduler or workload, invalid
//! trace, scheduler contract violations — surfaces as a typed
//! [`SimError`].
//!
//! ```
//! use fairsched_core::Trace;
//! use fairsched_sim::Simulation;
//!
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 2);
//! b.jobs(alpha, 0, 4, 3);
//! b.job(beta, 6, 2);
//! let trace = b.build().unwrap();
//!
//! let result = Simulation::new(&trace)
//!     .scheduler("fairshare")?
//!     .horizon(5_000)
//!     .validate(true)
//!     .seed(7)
//!     .run()?;
//! assert_eq!(result.completed_jobs, 4);
//!
//! // Fan out over several schedulers with identical settings:
//! let specs = ["roundrobin".parse()?, "directcontr".parse()?];
//! let results = Simulation::new(&trace).horizon(5_000).run_matrix(&specs)?;
//! assert_eq!(results.len(), 2);
//!
//! // A session needs no hand-built trace: workloads are specs too, and a
//! // whole (workload × scheduler) experiment grid is pure data.
//! let result = Simulation::session()
//!     .workload("fpt:k=2")?
//!     .scheduler("fairshare")?
//!     .horizon(500)
//!     .seed(3)
//!     .run()?;
//! assert!(result.completed_jobs > 0);
//!
//! let grid = Simulation::session().horizon(500).seed(3).run_grid(
//!     &["fpt:k=2".parse()?, "fpt:k=3".parse()?],
//!     &["fifo".parse()?, "roundrobin".parse()?],
//! );
//! assert_eq!(grid.len(), 4);
//! assert!(grid.iter().all(|cell| cell.result.is_ok()));
//! # Ok::<(), fairsched_sim::SimError>(())
//! ```

use crate::engine::{run_scheduler, SimOptions, SimResult};
use crate::report::{MetricError, MetricRegistry, MetricSpec, Report};
use fairsched_core::model::{OrgId, Time, Trace, TraceError};
use fairsched_core::schedule::ScheduleViolation;
use fairsched_core::scheduler::registry::{
    BuildContext, Registry, SchedulerSpec, SpecError,
};
use fairsched_core::scheduler::Scheduler;
use fairsched_workloads::spec::{
    WorkloadContext, WorkloadError, WorkloadRegistry, WorkloadSpec,
};
use std::borrow::Cow;
use std::fmt;

/// Why a simulation session could not produce a result.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The trace fails model validation.
    InvalidTrace(TraceError),
    /// The scheduler spec was malformed, unknown, or had bad parameters.
    Spec(SpecError),
    /// The workload spec was malformed, unknown, had bad parameters, or
    /// failed to build (missing file, malformed SWF, invalid trace).
    Workload(WorkloadError),
    /// A metric spec was malformed, unknown, had bad parameters, or could
    /// not be evaluated (e.g. a reference-based metric with no REF run).
    Metric(MetricError),
    /// `run` was called without choosing a scheduler.
    NoScheduler,
    /// `run` was called on a session with neither a trace nor a workload.
    NoWorkload,
    /// The scheduler broke the greedy contract by selecting an
    /// organization with no waiting jobs.
    BadSelection {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The organization it selected.
        org: OrgId,
        /// When.
        t: Time,
    },
    /// The scheduler picked a machine index outside the free list.
    /// (Before the session API this was silently coerced to machine 0.)
    BadMachinePick {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The picked index.
        picked: usize,
        /// How many machines were actually free.
        free: usize,
        /// When.
        t: Time,
    },
    /// Post-run validation found a model-invariant violation.
    InvalidSchedule {
        /// The offending scheduler's display name.
        scheduler: String,
        /// The violated invariant.
        violation: ScheduleViolation,
    },
    /// A mid-run admission was attempted on a scheduler that cannot
    /// splice new jobs into its state (see
    /// [`Scheduler::admits_jobs`](fairsched_core::scheduler::Scheduler::admits_jobs)).
    AdmitUnsupported {
        /// The declining scheduler's display name.
        scheduler: String,
    },
    /// A mid-run admission's release time is not strictly after the
    /// session's stepped-to high-water mark: the engine has already
    /// processed that time moment, so admitting would rewrite history.
    AdmitTooLate {
        /// The rejected job's release time.
        release: Time,
        /// How far the session has stepped.
        stepped_to: Time,
    },
    /// A session snapshot could not be parsed or replayed.
    Snapshot {
        /// What went wrong (rendered, so the variant stays `Clone`).
        message: String,
    },
    /// A filesystem operation on behalf of a run failed (the durable
    /// experiment runner's cell/journal/report writes). The fields are
    /// rendered strings so the error stays `Clone` like every other
    /// variant and survives serialization into cell files.
    Io {
        /// The attempted operation (`read`, `write`, `rename`, …).
        op: String,
        /// The path involved.
        path: String,
        /// The rendered OS error.
        message: String,
    },
}

impl SimError {
    /// Wraps a [`std::io::Error`] with the operation and path it
    /// interrupted, so filesystem failures surface as typed per-cell
    /// errors instead of panics.
    pub fn io(op: &str, path: impl AsRef<std::path::Path>, e: &std::io::Error) -> Self {
        SimError::Io {
            op: op.to_string(),
            path: path.as_ref().display().to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::Spec(e) => write!(f, "{e}"),
            SimError::Workload(e) => write!(f, "{e}"),
            SimError::Metric(e) => write!(f, "{e}"),
            SimError::NoScheduler => {
                write!(f, "no scheduler chosen (call .scheduler(..) before .run())")
            }
            SimError::NoWorkload => write!(
                f,
                "no trace or workload chosen (call Simulation::new(&trace) or .workload(..))"
            ),
            SimError::BadSelection { scheduler, org, t } => write!(
                f,
                "scheduler {scheduler} selected {org} which has no waiting jobs at t={t}"
            ),
            SimError::BadMachinePick { scheduler, picked, free, t } => write!(
                f,
                "scheduler {scheduler} picked machine index {picked} with only {free} free at t={t}"
            ),
            SimError::InvalidSchedule { scheduler, violation } => {
                write!(f, "scheduler {scheduler} produced an invalid schedule: {violation}")
            }
            SimError::AdmitUnsupported { scheduler } => write!(
                f,
                "scheduler {scheduler} does not support mid-run job admission"
            ),
            SimError::AdmitTooLate { release, stepped_to } => write!(
                f,
                "cannot admit a job releasing at t={release}: the session has already \
                 stepped to t={stepped_to} (releases must be strictly later)"
            ),
            SimError::Snapshot { message } => {
                write!(f, "bad session snapshot: {message}")
            }
            SimError::Io { op, path, message } => {
                write!(f, "io error ({op} {path}): {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            SimError::Spec(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::Metric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

impl From<fairsched_core::journal::FsError> for SimError {
    fn from(e: fairsched_core::journal::FsError) -> Self {
        SimError::Io { op: e.op, path: e.path, message: e.message }
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

impl From<MetricError> for SimError {
    fn from(e: MetricError) -> Self {
        SimError::Metric(e)
    }
}

/// What `run` will instantiate.
enum Chosen {
    None,
    Spec(SchedulerSpec),
    Instance(Box<dyn Scheduler>),
}

/// Where the session's trace comes from.
enum Source<'a> {
    /// Nothing chosen yet (only valid on a [`Simulation::session`]
    /// template that is used for [`run_grid`](Simulation::run_grid) or
    /// completed with [`workload`](Simulation::workload)).
    None,
    /// A caller-owned trace.
    Trace(&'a Trace),
    /// A workload spec, resolved through the workload registry with the
    /// session seed when the run starts.
    Workload(WorkloadSpec),
}

/// A fluent simulation session over one trace or workload spec.
///
/// Defaults: horizon = [`Trace::completion_horizon`] (run to completion),
/// `validate = false`, `seed = 0`, scheduler resolution through
/// [`Registry::shared`], workload resolution through
/// [`WorkloadRegistry::shared`]. See the [module docs](self) for examples.
pub struct Simulation<'a> {
    source: Source<'a>,
    registry: Option<&'a Registry>,
    workloads: Option<&'a WorkloadRegistry>,
    metrics_registry: Option<&'a MetricRegistry>,
    metrics: Vec<MetricSpec>,
    chosen: Chosen,
    horizon: Option<Time>,
    validate: bool,
    seed: u64,
}

/// The metric specs a report-producing run evaluates when none were
/// chosen with [`Simulation::metrics`]: the classic per-organization
/// summary (machine counts, completions, flow, waiting, exact `ψ_sp`) —
/// reference-free, so it works on any session.
pub const DEFAULT_REPORT_METRICS: [&str; 5] =
    ["machines", "completed", "flow", "waiting", "psi"];

impl Simulation<'static> {
    /// A settings-only session template with no trace or workload chosen
    /// yet: complete it with [`workload`](Simulation::workload) /
    /// [`workload_spec`](Simulation::workload_spec), or use it directly
    /// for [`run_grid`](Simulation::run_grid), which supplies its own
    /// workload axis.
    pub fn session() -> Self {
        Simulation {
            source: Source::None,
            registry: None,
            workloads: None,
            metrics_registry: None,
            metrics: Vec::new(),
            chosen: Chosen::None,
            horizon: None,
            validate: false,
            seed: 0,
        }
    }

    /// A session over a registered workload, by spec string — shorthand
    /// for `Simulation::session().workload(spec)`.
    pub fn from_workload(spec: &str) -> Result<Self, SimError> {
        Simulation::session().workload(spec)
    }
}

impl<'a> Simulation<'a> {
    /// A session over `trace` with default settings.
    pub fn new(trace: &'a Trace) -> Self {
        Simulation { source: Source::Trace(trace), ..Simulation::session() }
    }

    /// Chooses the workload by spec string (`"synth:preset=ricc,scale=0.5"`,
    /// `"fpt:k=8"`, …), replacing any previously chosen trace or workload.
    /// Fails fast on syntax errors; unknown names and bad parameter values
    /// surface from [`run`](Simulation::run), where the workload registry
    /// is consulted. The trace is built with the session
    /// [`seed`](Simulation::seed).
    pub fn workload(mut self, spec: &str) -> Result<Self, SimError> {
        self.source = Source::Workload(spec.parse::<WorkloadSpec>()?);
        Ok(self)
    }

    /// Chooses the workload by parsed spec.
    pub fn workload_spec(mut self, spec: WorkloadSpec) -> Self {
        self.source = Source::Workload(spec);
        self
    }

    /// Resolves workload spec names through `registry` instead of
    /// [`WorkloadRegistry::shared`].
    pub fn workload_registry(mut self, registry: &'a WorkloadRegistry) -> Self {
        self.workloads = Some(registry);
        self
    }

    /// Chooses the metrics the report-producing runs
    /// ([`run_report`](Simulation::run_report),
    /// [`run_matrix_reports`](Simulation::run_matrix_reports),
    /// [`run_grid_reports`](Simulation::run_grid_reports)) evaluate, by
    /// spec string (`"delay"`, `"delay:norm=ideal"`, `"psi"`, …). Fails
    /// fast on syntax errors; unknown names and bad parameter values
    /// surface from the run, where the metric registry is consulted.
    /// Without this call the [`DEFAULT_REPORT_METRICS`] set is used.
    pub fn metrics(mut self, specs: &[&str]) -> Result<Self, SimError> {
        self.metrics = specs
            .iter()
            .map(|s| s.parse::<MetricSpec>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self)
    }

    /// Chooses the metrics by parsed specs.
    pub fn metric_specs(mut self, specs: Vec<MetricSpec>) -> Self {
        self.metrics = specs;
        self
    }

    /// Resolves metric spec names through `registry` instead of
    /// [`MetricRegistry::shared`].
    pub fn metric_registry(mut self, registry: &'a MetricRegistry) -> Self {
        self.metrics_registry = Some(registry);
        self
    }

    /// Chooses the scheduler by spec string (`"ref"`, `"rand:perms=15"`,
    /// …). Fails fast on syntax errors; unknown names and bad parameter
    /// values surface from [`run`](Simulation::run), where the registry is
    /// consulted.
    pub fn scheduler(mut self, spec: &str) -> Result<Self, SimError> {
        self.chosen = Chosen::Spec(spec.parse::<SchedulerSpec>()?);
        Ok(self)
    }

    /// Chooses the scheduler by parsed spec.
    pub fn scheduler_spec(mut self, spec: SchedulerSpec) -> Self {
        self.chosen = Chosen::Spec(spec);
        self
    }

    /// Supplies an already-built scheduler instance (the escape hatch for
    /// custom policies not worth registering).
    pub fn scheduler_instance(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.chosen = Chosen::Instance(scheduler);
        self
    }

    /// Resolves spec names through `registry` instead of
    /// [`Registry::default`].
    pub fn registry(mut self, registry: &'a Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the evaluation horizon (default: the trace's completion
    /// horizon, i.e. run to completion).
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables post-run validation of every model invariant (a sorted
    /// event sweep, `O(n log n)` in jobs + entries — usable even at
    /// `--paper-scale`).
    pub fn validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Seeds the scheduler's internal randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn options_for(&self, trace: &Trace) -> SimOptions {
        SimOptions {
            horizon: self.horizon.unwrap_or_else(|| trace.completion_horizon()),
            validate: self.validate,
        }
    }

    /// The registry this session resolves scheduler specs through: the
    /// explicit one if supplied, else the process-wide [`Registry::shared`]
    /// default (built once behind a `OnceLock`, not per call).
    fn resolve_registry(&self) -> &'a Registry {
        self.registry.unwrap_or_else(|| Registry::shared())
    }

    /// Likewise for workload specs.
    fn resolve_workloads(&self) -> &'a WorkloadRegistry {
        self.workloads.unwrap_or_else(|| WorkloadRegistry::shared())
    }

    /// Likewise for metric specs.
    fn resolve_metrics(&self) -> &'a MetricRegistry {
        self.metrics_registry.unwrap_or_else(|| MetricRegistry::shared())
    }

    /// The metric specs report runs evaluate: the chosen ones, or
    /// [`DEFAULT_REPORT_METRICS`].
    fn effective_metrics(&self) -> Vec<MetricSpec> {
        if self.metrics.is_empty() {
            // All defaults are bare names, so no parse (and no panic path)
            // is involved in constructing them.
            DEFAULT_REPORT_METRICS.iter().map(|s| MetricSpec::bare(*s)).collect()
        } else {
            self.metrics.clone()
        }
    }

    /// Runs the REF reference scheduler over `trace` with this session's
    /// settings (for reference-based metrics).
    fn run_reference(&self, trace: &Trace) -> Result<SimResult, SimError> {
        let mut scheduler = self.build_spec(&SchedulerSpec::bare("ref"), trace)?;
        run_scheduler(trace, scheduler.as_mut(), self.options_for(trace))
    }

    /// The session's workload provenance, if it was chosen by spec.
    fn workload_provenance(&self) -> Option<WorkloadSpec> {
        match &self.source {
            Source::Workload(spec) => Some(spec.clone()),
            _ => None,
        }
    }

    /// The session's trace: borrowed when supplied via
    /// [`new`](Simulation::new), built through the workload registry (with
    /// the session seed) when chosen by spec.
    fn resolve_trace(&self) -> Result<Cow<'a, Trace>, SimError> {
        match &self.source {
            Source::None => Err(SimError::NoWorkload),
            Source::Trace(t) => Ok(Cow::Borrowed(*t)),
            Source::Workload(spec) => {
                let ctx = WorkloadContext { seed: self.seed };
                Ok(Cow::Owned(self.resolve_workloads().build(spec, &ctx)?))
            }
        }
    }

    fn build_spec(
        &self,
        spec: &SchedulerSpec,
        trace: &Trace,
    ) -> Result<Box<dyn Scheduler>, SimError> {
        let ctx = BuildContext { trace, seed: self.seed };
        self.resolve_registry().build(spec, &ctx).map_err(SimError::from)
    }

    /// Runs the session, consuming it.
    pub fn run(self) -> Result<SimResult, SimError> {
        let trace = self.resolve_trace()?;
        let options = self.options_for(&trace);
        let mut scheduler = match self.chosen {
            Chosen::None => return Err(SimError::NoScheduler),
            Chosen::Instance(s) => s,
            Chosen::Spec(ref spec) => self.build_spec(spec, &trace)?,
        };
        run_scheduler(&trace, scheduler.as_mut(), options)
    }

    /// Runs one simulation per spec with this session's settings (same
    /// trace, horizon, seed, validation) — the experiment-matrix helper
    /// behind the bench tables. Any scheduler chosen via
    /// [`scheduler`](Simulation::scheduler) is ignored here; only `specs`
    /// are run. A workload source is resolved **once** and shared by every
    /// cell.
    ///
    /// Sessions are embarrassingly parallel, so the specs are fanned out
    /// over [`parallel_map`](crate::parallel::parallel_map) worker
    /// threads. Each run is seeded exactly as in a serial loop, results
    /// come back in spec order, and on failure the error reported is the
    /// first failing spec's (in spec order) — byte-for-byte the serial
    /// behavior.
    pub fn run_matrix(
        &self,
        specs: &[SchedulerSpec],
    ) -> Result<Vec<SimResult>, SimError> {
        let trace = self.resolve_trace()?;
        self.run_matrix_on(&trace, specs).into_iter().collect()
    }

    /// The shared fan-out core of [`run_matrix`](Simulation::run_matrix)
    /// and [`run_grid`](Simulation::run_grid): one result per scheduler
    /// spec, in spec order, over an already-resolved trace.
    fn run_matrix_on(
        &self,
        trace: &Trace,
        specs: &[SchedulerSpec],
    ) -> Vec<Result<SimResult, SimError>> {
        let options = self.options_for(trace);
        let registry = self.resolve_registry();
        let seed = self.seed;
        crate::parallel::parallel_map(specs.to_vec(), move |spec| {
            let ctx = BuildContext { trace, seed };
            let mut scheduler = registry.build(&spec, &ctx).map_err(SimError::from)?;
            run_scheduler(trace, scheduler.as_mut(), options)
        })
    }

    /// Runs the full `(workload × scheduler)` spec grid with this
    /// session's settings — a whole experiment matrix as pure data. Cells
    /// come back in row-major order (all schedulers of `workloads[0]`,
    /// then `workloads[1]`, …), each carrying its own typed
    /// `Result`: a workload that fails to build fails *its row's* cells
    /// and the grid continues, so one bad spec cannot take down a sweep.
    ///
    /// Each workload is built once (with the session seed) and shared by
    /// its row; scheduler cells fan out over
    /// [`parallel_map`](crate::parallel::parallel_map) exactly as in
    /// [`run_matrix`](Simulation::run_matrix), so results are identical to
    /// the serial double loop.
    pub fn run_grid(
        &self,
        workloads: &[WorkloadSpec],
        schedulers: &[SchedulerSpec],
    ) -> Vec<GridCell> {
        let ctx = WorkloadContext { seed: self.seed };
        let registry = self.resolve_workloads();
        let mut cells = Vec::with_capacity(workloads.len() * schedulers.len());
        for wspec in workloads {
            match registry.build(wspec, &ctx) {
                Err(e) => {
                    for sspec in schedulers {
                        cells.push(GridCell {
                            workload: wspec.clone(),
                            scheduler: sspec.clone(),
                            result: Err(SimError::Workload(e.clone())),
                        });
                    }
                }
                Ok(trace) => {
                    let row = self.run_matrix_on(&trace, schedulers);
                    for (sspec, result) in schedulers.iter().zip(row) {
                        cells.push(GridCell {
                            workload: wspec.clone(),
                            scheduler: sspec.clone(),
                            result,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs the session and measures it: like [`run`](Simulation::run),
    /// but the outcome is a typed [`Report`] evaluating the session's
    /// metric specs (set with [`metrics`](Simulation::metrics); default
    /// [`DEFAULT_REPORT_METRICS`]). When any chosen metric compares
    /// against REF (`delay`, `ranking`), the exact reference schedule is
    /// run automatically with the same settings.
    pub fn run_report(mut self) -> Result<Report, SimError> {
        let specs = self.effective_metrics();
        let metric_registry = self.resolve_metrics();
        let chosen = std::mem::replace(&mut self.chosen, Chosen::None);
        let scheduler_spec = match &chosen {
            Chosen::Spec(spec) => Some(spec.clone()),
            _ => None,
        };
        let workload_spec = self.workload_provenance();
        let trace = self.resolve_trace()?;
        let options = self.options_for(&trace);
        let mut scheduler = match chosen {
            Chosen::None => return Err(SimError::NoScheduler),
            Chosen::Instance(s) => s,
            Chosen::Spec(ref spec) => self.build_spec(spec, &trace)?,
        };
        let result = run_scheduler(&trace, scheduler.as_mut(), options)?;
        let reference = if metric_registry.any_needs_reference(&specs) {
            Some(self.run_reference(&trace)?)
        } else {
            None
        };
        let mut report = Report::evaluate(
            metric_registry,
            &specs,
            &trace,
            &result,
            reference.as_ref(),
        )?;
        report.seed = self.seed;
        report.scheduler_spec = scheduler_spec;
        report.workload_spec = workload_spec;
        Ok(report)
    }

    /// [`run_matrix`](Simulation::run_matrix), reported: one [`Report`]
    /// per scheduler spec, in spec order, over one resolved trace and
    /// (when needed) one shared REF reference run.
    pub fn run_matrix_reports(
        &self,
        specs: &[SchedulerSpec],
    ) -> Result<Vec<Report>, SimError> {
        let trace = self.resolve_trace()?;
        self.run_matrix_reports_on(&trace, specs).into_iter().collect()
    }

    /// The shared core of [`run_matrix_reports`](Simulation::run_matrix_reports)
    /// and [`run_grid_reports`](Simulation::run_grid_reports): per-spec
    /// typed results over an already-resolved trace.
    fn run_matrix_reports_on(
        &self,
        trace: &Trace,
        specs: &[SchedulerSpec],
    ) -> Vec<Result<Report, SimError>> {
        let metric_specs = self.effective_metrics();
        let metric_registry = self.resolve_metrics();
        let reference = if metric_registry.any_needs_reference(&metric_specs) {
            match self.run_reference(trace) {
                Ok(r) => Some(r),
                Err(e) => return specs.iter().map(|_| Err(e.clone())).collect(),
            }
        } else {
            None
        };
        let workload_spec = self.workload_provenance();
        self.run_matrix_on(trace, specs)
            .into_iter()
            .zip(specs)
            .map(|(result, spec)| {
                let mut report = Report::evaluate(
                    metric_registry,
                    &metric_specs,
                    trace,
                    &result?,
                    reference.as_ref(),
                )?;
                report.seed = self.seed;
                report.scheduler_spec = Some(spec.clone());
                report.workload_spec = workload_spec.clone();
                Ok(report)
            })
            .collect()
    }

    /// [`run_grid`](Simulation::run_grid), reported: the full
    /// `(workload × scheduler)` grid in row-major order, each cell a
    /// typed [`Report`] (or the typed error that stopped it). Workloads
    /// are built once per row; when a reference-based metric is chosen,
    /// REF runs once per row and is shared by its cells.
    pub fn run_grid_reports(
        &self,
        workloads: &[WorkloadSpec],
        schedulers: &[SchedulerSpec],
    ) -> Vec<ReportCell> {
        let ctx = WorkloadContext { seed: self.seed };
        let registry = self.resolve_workloads();
        let mut cells = Vec::with_capacity(workloads.len() * schedulers.len());
        for wspec in workloads {
            match registry.build(wspec, &ctx) {
                Err(e) => {
                    for sspec in schedulers {
                        cells.push(ReportCell {
                            workload: wspec.clone(),
                            scheduler: sspec.clone(),
                            report: Err(SimError::Workload(e.clone())),
                        });
                    }
                }
                Ok(trace) => {
                    let row = self.run_matrix_reports_on(&trace, schedulers);
                    for (sspec, report) in schedulers.iter().zip(row) {
                        let report = report.map(|mut r| {
                            r.workload_spec = Some(wspec.clone());
                            r
                        });
                        cells.push(ReportCell {
                            workload: wspec.clone(),
                            scheduler: sspec.clone(),
                            report,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One cell of a [`Simulation::run_grid_reports`] sweep: which workload ×
/// which scheduler, and the typed measured outcome.
#[derive(Debug)]
pub struct ReportCell {
    /// The workload axis value.
    pub workload: WorkloadSpec,
    /// The scheduler axis value.
    pub scheduler: SchedulerSpec,
    /// The measured outcome; errors are per-cell, the grid always
    /// completes.
    pub report: Result<Report, SimError>,
}

/// One cell of a [`Simulation::run_grid`] sweep: which workload × which
/// scheduler, and the typed outcome.
#[derive(Debug)]
pub struct GridCell {
    /// The workload axis value.
    pub workload: WorkloadSpec,
    /// The scheduler axis value.
    pub scheduler: SchedulerSpec,
    /// The run's outcome; errors are per-cell, the grid always completes.
    pub result: Result<SimResult, SimError>,
}

impl fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("horizon", &self.horizon)
            .field("validate", &self.validate)
            .field("seed", &self.seed)
            .field(
                "source",
                &match &self.source {
                    Source::None => "<none>".to_string(),
                    Source::Trace(t) => {
                        format!("<trace {} orgs, {} jobs>", t.n_orgs(), t.n_jobs())
                    }
                    Source::Workload(s) => s.to_string(),
                },
            )
            .field(
                "scheduler",
                &match &self.chosen {
                    Chosen::None => "<none>".to_string(),
                    Chosen::Spec(s) => s.to_string(),
                    Chosen::Instance(s) => format!("<instance {}>", s.name()),
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_core::scheduler::FifoScheduler;

    fn small_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
        b.build().unwrap()
    }

    #[test]
    fn builder_runs_spec_through_default_registry() {
        let trace = small_trace();
        let result = Simulation::new(&trace)
            .scheduler("fairshare")
            .unwrap()
            .horizon(50)
            .validate(true)
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(result.scheduler, "FairShare");
        assert_eq!(result.completed_jobs, 4);
    }

    #[test]
    fn default_horizon_runs_to_completion() {
        let trace = small_trace();
        let result = Simulation::new(&trace).scheduler("fifo").unwrap().run().unwrap();
        assert_eq!(result.completed_jobs, trace.n_jobs());
        assert_eq!(result.horizon, trace.completion_horizon());
    }

    #[test]
    fn missing_scheduler_is_typed_error() {
        let trace = small_trace();
        assert!(matches!(Simulation::new(&trace).run(), Err(SimError::NoScheduler)));
    }

    #[test]
    fn malformed_spec_fails_fast() {
        let trace = small_trace();
        let err = Simulation::new(&trace).scheduler("rand:perms");
        assert!(matches!(err, Err(SimError::Spec(SpecError::BadSyntax { .. }))));
    }

    #[test]
    fn unknown_scheduler_surfaces_at_run() {
        let trace = small_trace();
        let err = Simulation::new(&trace).scheduler("warp-drive").unwrap().run();
        assert!(matches!(err, Err(SimError::Spec(SpecError::UnknownScheduler { .. }))));
    }

    #[test]
    fn instance_escape_hatch() {
        let trace = small_trace();
        let result = Simulation::new(&trace)
            .scheduler_instance(Box::new(FifoScheduler::new()))
            .horizon(50)
            .run()
            .unwrap();
        assert_eq!(result.scheduler, "Fifo");
    }

    #[test]
    fn run_matrix_fans_out_in_order() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = ["roundrobin", "fairshare", "rand:perms=5"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let results = Simulation::new(&trace)
            .horizon(50)
            .validate(true)
            .seed(3)
            .run_matrix(&specs)
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].scheduler, "RoundRobin");
        assert_eq!(results[1].scheduler, "FairShare");
        assert_eq!(results[2].scheduler, "Rand(N=5)");
        for r in &results {
            assert_eq!(r.completed_jobs, 4);
        }
    }

    /// The parallel fan-out must be indistinguishable from a serial loop:
    /// same specs, same seeds, same order, same schedules and ψ vectors.
    #[test]
    fn run_matrix_parallel_matches_serial_runs() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = [
            "ref",
            "rand:perms=7",
            "roundrobin",
            "fairshare",
            "utfairshare",
            "currfairshare",
            "directcontr",
            "fifo",
            "random",
            "rand:perms=20",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let session = Simulation::new(&trace).horizon(60).validate(true).seed(11);
        let parallel = session.run_matrix(&specs).unwrap();
        assert_eq!(parallel.len(), specs.len());
        for (spec, par) in specs.iter().zip(&parallel) {
            let serial = Simulation::new(&trace)
                .scheduler_spec(spec.clone())
                .horizon(60)
                .validate(true)
                .seed(11)
                .run()
                .unwrap();
            assert_eq!(par.scheduler, serial.scheduler);
            assert_eq!(par.schedule, serial.schedule, "schedule diverged for {spec}");
            assert_eq!(par.psi, serial.psi, "ψ diverged for {spec}");
            assert_eq!(par.completed_jobs, serial.completed_jobs);
        }
    }

    /// Fan-out is deterministic run-to-run (worker interleaving must not
    /// leak into results).
    #[test]
    fn run_matrix_parallel_is_deterministic() {
        let trace = small_trace();
        let specs: Vec<SchedulerSpec> = ["rand:perms=9", "random", "directcontr", "ref"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let run = || {
            Simulation::new(&trace)
                .horizon(50)
                .seed(23)
                .run_matrix(&specs)
                .unwrap()
                .into_iter()
                .map(|r| (r.scheduler, r.psi, r.schedule.entries().to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_matrix_propagates_spec_errors() {
        let trace = small_trace();
        let specs = vec!["roundrobin".parse().unwrap(), "nonesuch".parse().unwrap()];
        assert!(matches!(
            Simulation::new(&trace).run_matrix(&specs),
            Err(SimError::Spec(SpecError::UnknownScheduler { .. }))
        ));
    }

    #[test]
    fn custom_registry_is_consulted() {
        let trace = small_trace();
        let registry = Registry::new(); // deliberately empty
        let err =
            Simulation::new(&trace).registry(&registry).scheduler("fifo").unwrap().run();
        assert!(matches!(err, Err(SimError::Spec(SpecError::UnknownScheduler { .. }))));
    }

    #[test]
    fn workload_source_builds_through_registry() {
        let result = Simulation::session()
            .workload("fpt:k=2")
            .unwrap()
            .scheduler("fifo")
            .unwrap()
            .horizon(500)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(result.scheduler, "Fifo");
        assert!(result.completed_jobs > 0);
    }

    #[test]
    fn workload_source_matches_direct_registry_build() {
        use fairsched_workloads::spec::WorkloadRegistry;
        let trace = WorkloadRegistry::shared()
            .build_str("fpt:k=2", &WorkloadContext { seed: 9 })
            .unwrap();
        let direct = Simulation::new(&trace)
            .scheduler("roundrobin")
            .unwrap()
            .horizon(400)
            .seed(9)
            .run()
            .unwrap();
        let via_spec = Simulation::from_workload("fpt:k=2")
            .unwrap()
            .scheduler("roundrobin")
            .unwrap()
            .horizon(400)
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(direct.schedule, via_spec.schedule);
        assert_eq!(direct.psi, via_spec.psi);
    }

    #[test]
    fn session_without_source_is_typed_error() {
        let err = Simulation::session().scheduler("fifo").unwrap().run();
        assert!(matches!(err, Err(SimError::NoWorkload)));
    }

    #[test]
    fn malformed_workload_spec_fails_fast() {
        let err = Simulation::session().workload("fpt:k");
        assert!(matches!(err, Err(SimError::Workload(WorkloadError::BadSyntax { .. }))));
    }

    #[test]
    fn unknown_workload_surfaces_at_run() {
        let err = Simulation::session()
            // lint:allow(spec-literal) deliberately unregistered family.
            .workload("marsbase:crew=3")
            .unwrap()
            .scheduler("fifo")
            .unwrap()
            .run();
        assert!(matches!(
            err,
            Err(SimError::Workload(WorkloadError::UnknownWorkload { .. }))
        ));
    }

    #[test]
    fn run_matrix_over_workload_source_resolves_once_and_fans_out() {
        let specs: Vec<SchedulerSpec> = ["fifo", "roundrobin", "rand:perms=5"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let session =
            Simulation::session().workload("fpt:k=3").unwrap().horizon(600).seed(7);
        let results = session.run_matrix(&specs).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].scheduler, "Fifo");
        assert_eq!(results[2].scheduler, "Rand(N=5)");
    }

    /// The grid must equal the serial double loop cell for cell: same
    /// row-major order, same schedules, same ψ vectors.
    #[test]
    fn run_grid_matches_serial_double_loop() {
        use fairsched_workloads::spec::WorkloadRegistry;
        let workloads: Vec<WorkloadSpec> = ["fpt:k=2", "fpt:horizon=500,k=3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let schedulers: Vec<SchedulerSpec> = ["fifo", "fairshare", "rand:perms=4"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let grid = Simulation::session()
            .horizon(400)
            .validate(true)
            .seed(11)
            .run_grid(&workloads, &schedulers);
        assert_eq!(grid.len(), 6);
        let mut i = 0;
        for wspec in &workloads {
            let trace = WorkloadRegistry::shared()
                .build(wspec, &WorkloadContext { seed: 11 })
                .unwrap();
            for sspec in &schedulers {
                let cell = &grid[i];
                assert_eq!(&cell.workload, wspec, "row-major order broken at {i}");
                assert_eq!(&cell.scheduler, sspec, "row-major order broken at {i}");
                let serial = Simulation::new(&trace)
                    .scheduler_spec(sspec.clone())
                    .horizon(400)
                    .validate(true)
                    .seed(11)
                    .run()
                    .unwrap();
                let cell_result = cell.result.as_ref().unwrap();
                assert_eq!(cell_result.schedule, serial.schedule, "cell {i} diverged");
                assert_eq!(cell_result.psi, serial.psi, "ψ diverged at cell {i}");
                i += 1;
            }
        }
    }

    /// One invalid workload spec fails its own row's cells with a typed
    /// error; the rest of the grid still runs.
    #[test]
    fn run_grid_collects_typed_errors_and_continues() {
        let workloads: Vec<WorkloadSpec> = ["fpt:k=2", "fpt:k=0", "fpt:k=3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let schedulers: Vec<SchedulerSpec> =
            ["fifo", "roundrobin"].iter().map(|s| s.parse().unwrap()).collect();
        let grid =
            Simulation::session().horizon(300).seed(5).run_grid(&workloads, &schedulers);
        assert_eq!(grid.len(), 6);
        for cell in &grid {
            if cell.workload.to_string() == "fpt:k=0" {
                assert!(
                    matches!(
                        cell.result,
                        Err(SimError::Workload(WorkloadError::BadParam { .. }))
                    ),
                    "bad workload row must carry the typed build error"
                );
            } else {
                assert!(
                    cell.result.is_ok(),
                    "healthy rows must survive a bad workload in the grid"
                );
            }
        }
        // Bad *scheduler* specs likewise fail per cell, not the grid.
        let grid = Simulation::session().horizon(300).seed(5).run_grid(
            &["fpt:k=2".parse().unwrap()],
            &["fifo".parse().unwrap(), "warpdrive".parse().unwrap()],
        );
        assert!(grid[0].result.is_ok());
        assert!(matches!(
            grid[1].result,
            Err(SimError::Spec(SpecError::UnknownScheduler { .. }))
        ));
    }

    #[test]
    fn grid_seed_flows_into_workload_builds() {
        let workloads: Vec<WorkloadSpec> = vec!["fpt:k=2".parse().unwrap()];
        let schedulers: Vec<SchedulerSpec> = vec!["fifo".parse().unwrap()];
        let run = |seed| {
            let mut grid = Simulation::session()
                .horizon(300)
                .seed(seed)
                .run_grid(&workloads, &schedulers);
            grid.remove(0).result.unwrap().schedule.entries().to_vec()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5), "different seeds must yield different workloads");
    }

    #[test]
    fn run_report_defaults_to_the_classic_summary() {
        let trace = small_trace();
        let report = Simulation::new(&trace)
            .scheduler("fifo")
            .unwrap()
            .horizon(50)
            .run_report()
            .unwrap();
        assert_eq!(report.metric_specs(), DEFAULT_REPORT_METRICS);
        assert_eq!(report.scheduler, "Fifo");
        assert_eq!(report.scheduler_spec.as_ref().unwrap().to_string(), "fifo");
        assert_eq!(report.orgs, ["a", "b"]);
        // machines column reflects the trace.
        let machines = report.column("machines").unwrap();
        assert_eq!(machines.per_org.len(), 2);
    }

    #[test]
    fn run_report_runs_the_reference_for_delay_metrics() {
        use crate::report::MetricValue;
        let trace = small_trace();
        let report = Simulation::new(&trace)
            .scheduler("roundrobin")
            .unwrap()
            .horizon(50)
            .metrics(&["delay", "psi", "ranking"])
            .unwrap()
            .run_report()
            .unwrap();
        assert_eq!(report.metric_specs(), ["delay", "psi", "ranking"]);
        assert!(matches!(
            report.column("delay").unwrap().aggregate,
            MetricValue::Float(v) if v >= 0.0
        ));
        // REF against itself is perfectly fair: delay 0 everywhere.
        let self_fair = Simulation::new(&trace)
            .scheduler("ref")
            .unwrap()
            .horizon(50)
            .metrics(&["delay"])
            .unwrap()
            .run_report()
            .unwrap();
        assert_eq!(self_fair.column("delay").unwrap().aggregate, MetricValue::Float(0.0));
    }

    #[test]
    fn malformed_metric_spec_fails_fast_and_unknown_surfaces_at_run() {
        let trace = small_trace();
        let err = Simulation::new(&trace).metrics(&["delay:norm"]);
        assert!(matches!(err, Err(SimError::Metric(MetricError::BadSyntax { .. }))));
        let err = Simulation::new(&trace)
            .scheduler("fifo")
            .unwrap()
            .metrics(&["vibes"])
            .unwrap()
            .run_report();
        assert!(matches!(err, Err(SimError::Metric(MetricError::UnknownMetric { .. }))));
    }

    #[test]
    fn run_matrix_reports_match_individual_runs_and_carry_provenance() {
        let specs: Vec<SchedulerSpec> =
            ["fifo", "fairshare"].iter().map(|s| s.parse().unwrap()).collect();
        let session = Simulation::session()
            .workload("fpt:k=2")
            .unwrap()
            .horizon(400)
            .seed(9)
            .metrics(&["delay", "psi"])
            .unwrap();
        let reports = session.run_matrix_reports(&specs).unwrap();
        assert_eq!(reports.len(), 2);
        for (spec, report) in specs.iter().zip(&reports) {
            assert_eq!(report.scheduler_spec.as_ref().unwrap(), spec);
            assert_eq!(report.workload_spec.as_ref().unwrap().to_string(), "fpt:k=2");
            assert_eq!(report.seed, 9);
            let solo = Simulation::session()
                .workload("fpt:k=2")
                .unwrap()
                .scheduler_spec(spec.clone())
                .horizon(400)
                .seed(9)
                .metrics(&["delay", "psi"])
                .unwrap()
                .run_report()
                .unwrap();
            assert_eq!(
                report.column("psi").unwrap().per_org,
                solo.column("psi").unwrap().per_org,
                "matrix report diverged from solo run for {spec}"
            );
            assert_eq!(
                report.column("delay").unwrap().aggregate,
                solo.column("delay").unwrap().aggregate
            );
        }
    }

    #[test]
    fn run_grid_reports_collect_typed_errors_and_continue() {
        let workloads: Vec<WorkloadSpec> =
            ["fpt:k=2", "fpt:k=0"].iter().map(|s| s.parse().unwrap()).collect();
        let schedulers: Vec<SchedulerSpec> =
            ["fifo", "roundrobin"].iter().map(|s| s.parse().unwrap()).collect();
        let cells = Simulation::session()
            .horizon(300)
            .seed(5)
            .metrics(&["completed", "psi"])
            .unwrap()
            .run_grid_reports(&workloads, &schedulers);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            if cell.workload.to_string() == "fpt:k=0" {
                assert!(matches!(
                    cell.report,
                    Err(SimError::Workload(WorkloadError::BadParam { .. }))
                ));
            } else {
                let report = cell.report.as_ref().unwrap();
                assert_eq!(report.workload_spec.as_ref().unwrap(), &cell.workload);
                assert_eq!(report.scheduler_spec.as_ref().unwrap(), &cell.scheduler);
                assert_eq!(report.metric_specs(), ["completed", "psi"]);
            }
        }
    }

    /// The time axis flows through the session pipeline transparently:
    /// a `timeline` spec triggers the automatic REF run, the report
    /// carries the series, and its endpoint equals the scalar `delay`.
    #[test]
    fn run_report_carries_timeline_series() {
        let trace = small_trace();
        let report = Simulation::new(&trace)
            .scheduler("fifo")
            .unwrap()
            .horizon(50)
            .metrics(&["delay", "timeline:samples=8"])
            .unwrap()
            .run_report()
            .unwrap();
        assert_eq!(report.metric_specs(), ["delay", "timeline:samples=8"]);
        let series = report.time_series("timeline:samples=8").unwrap();
        assert_eq!(*series.times.last().unwrap(), 50);
        assert_eq!(
            series.final_aggregate().unwrap(),
            report.column("delay").unwrap().aggregate,
            "trajectory endpoint must equal the scalar delay"
        );
        // The timeline alone also triggers the automatic reference run.
        let solo = Simulation::new(&trace)
            .scheduler("fifo")
            .unwrap()
            .horizon(50)
            .metrics(&["timeline:samples=8"])
            .unwrap()
            .run_report()
            .unwrap();
        assert_eq!(solo.time_series("timeline:samples=8").unwrap(), series);
        // A zero sample count is a typed error, not the core panic.
        let err = Simulation::new(&trace)
            .scheduler("fifo")
            .unwrap()
            .horizon(50)
            .metrics(&["timeline:samples=0"])
            .unwrap()
            .run_report();
        assert!(matches!(err, Err(SimError::Metric(MetricError::BadParam { .. }))));
    }

    #[test]
    fn grid_reports_carry_timeline_series() {
        let cells = Simulation::session()
            .horizon(300)
            .seed(5)
            .metrics(&["timeline:samples=6"])
            .unwrap()
            .run_grid_reports(
                &["fpt:k=2".parse().unwrap()],
                &["fifo".parse().unwrap(), "fairshare".parse().unwrap()],
            );
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            let report = cell.report.as_ref().unwrap();
            let s = report.time_series("timeline:samples=6").unwrap();
            assert_eq!(*s.times.last().unwrap(), 300);
            assert_eq!(s.aggregate.len(), s.times.len());
            assert!(s.times.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn seed_reaches_randomized_schedulers() {
        let trace = small_trace();
        let run = |seed| {
            Simulation::new(&trace)
                .scheduler("random")
                .unwrap()
                .horizon(40)
                .seed(seed)
                .run()
                .unwrap()
                .schedule
                .entries()
                .to_vec()
        };
        assert_eq!(run(5), run(5));
    }
}
