//! The resumable simulation session: step, admit, snapshot, restore.
//!
//! [`Simulation`](crate::Simulation) runs a trace to its horizon in one
//! call; [`SimSession`] is the *online* counterpart behind `fairsched
//! serve`. A session owns a trace, a scheduler instance, and the engine's
//! event-loop position ([`EngineState`]), and exposes:
//!
//! * [`step(until)`](SimSession::step) — advance the event loop to a time
//!   high-water mark, incrementally; stepping in increments is
//!   bit-identical to one batch run because both drive the *same* loop;
//! * [`admit`](SimSession::admit) — splice a new job into the running
//!   trace (release strictly after the stepped-to mark), **reusing** the
//!   scheduler's incremental state — the REF family's coalition lattice
//!   and φ caches are not rebuilt, the new job's duration is spliced into
//!   the oracle and the lattice learns of it at `on_release`, exactly as
//!   in a batch run over the grown trace;
//! * [`snapshot`](SimSession::snapshot) / [`restore`](SimSession::restore)
//!   — a crash-safe serialized form. Snapshots are *replay-based*: they
//!   record the base trace, the scheduler spec + seed, the admission log,
//!   and the stepped-to mark. Restore rebuilds the scheduler from the
//!   base trace, replays admissions, and steps forward; engine
//!   determinism makes the restored session bit-identical to the
//!   original (pinned by a property test over random traces, schedulers,
//!   and split points).
//!
//! ```
//! use fairsched_core::model::OrgId;
//! use fairsched_core::Trace;
//! use fairsched_sim::{SimSession, Simulation};
//!
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 1);
//! b.job(alpha, 0, 3).job(beta, 0, 3).job(alpha, 1, 2);
//! let trace = b.build().unwrap();
//!
//! let mut session = SimSession::new(trace, "ref", 0)?;
//! session.step(2)?;
//! session.admit(OrgId(1), 5, 4, None)?; // arrives online, after t=2
//! let snap = session.snapshot();
//! let restored = SimSession::restore(&snap)?;
//! assert_eq!(
//!     session.finish(100, true)?.schedule,
//!     restored.finish(100, true)?.schedule,
//! );
//! # Ok::<(), fairsched_sim::SimError>(())
//! ```

use crate::engine::{EngineState, SimOptions, SimResult};
use crate::session::SimError;
use fairsched_core::model::{JobId, OrgId, Time, Trace};
use fairsched_core::schedule::Schedule;
use fairsched_core::scheduler::registry::{BuildContext, Registry, SchedulerSpec};
use fairsched_core::scheduler::Scheduler;
use fairsched_workloads::spec::{WorkloadContext, WorkloadRegistry};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// The schema tag snapshots carry (bump on layout changes).
pub const SNAPSHOT_SCHEMA: &str = "fairsched-session-snapshot/v1";

/// One mid-run admission, as recorded in the snapshot's replay log.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Admission {
    /// The submitting organization.
    pub org: OrgId,
    /// Release time (strictly after the stepped-to mark at admission).
    pub release: Time,
    /// Processing time.
    pub proc_time: Time,
    /// Optional deadline (for the tardiness utility).
    pub deadline: Option<Time>,
}

/// A resumable simulation run: trace + scheduler + engine position.
pub struct SimSession {
    spec: SchedulerSpec,
    seed: u64,
    base_trace: Trace,
    trace: Trace,
    scheduler: Box<dyn Scheduler>,
    engine: EngineState,
    admissions: Vec<Admission>,
}

impl SimSession {
    /// Starts a session over `trace` with the scheduler named by spec
    /// string (resolved through [`Registry::shared`]) and `seed`.
    pub fn new(trace: Trace, scheduler_spec: &str, seed: u64) -> Result<Self, SimError> {
        let spec: SchedulerSpec = scheduler_spec.parse()?;
        Self::from_parts(trace, spec, seed)
    }

    /// Starts a session over a registered workload, by spec string: the
    /// trace is built through [`WorkloadRegistry::shared`] with `seed`.
    pub fn from_workload(
        workload_spec: &str,
        scheduler_spec: &str,
        seed: u64,
    ) -> Result<Self, SimError> {
        let wspec = workload_spec.parse::<fairsched_workloads::spec::WorkloadSpec>()?;
        let trace =
            WorkloadRegistry::shared().build(&wspec, &WorkloadContext { seed })?;
        Self::new(trace, scheduler_spec, seed)
    }

    fn from_parts(
        trace: Trace,
        spec: SchedulerSpec,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut scheduler =
            Registry::shared().build(&spec, &BuildContext { trace: &trace, seed })?;
        let engine = EngineState::new(&trace, scheduler.as_mut())?;
        Ok(SimSession {
            spec,
            seed,
            base_trace: trace.clone(),
            trace,
            scheduler,
            engine,
            admissions: Vec::new(),
        })
    }

    /// The trace as grown by admissions so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The schedule built so far.
    pub fn schedule(&self) -> &Schedule {
        self.engine.schedule()
    }

    /// How far the session has stepped (`None` before the first step).
    pub fn stepped_to(&self) -> Option<Time> {
        self.engine.stepped_to()
    }

    /// Jobs completed so far.
    pub fn completed_jobs(&self) -> usize {
        self.engine.completed_jobs()
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> String {
        self.scheduler.name()
    }

    /// The scheduler spec the session was built from.
    pub fn scheduler_spec(&self) -> &SchedulerSpec {
        &self.spec
    }

    /// The session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The mid-run admissions recorded so far, in admission order.
    pub fn admissions(&self) -> &[Admission] {
        &self.admissions
    }

    /// Advances the event loop until the next event would fall after
    /// `until` and records `until` as the stepped-to high-water mark.
    /// Stepping to an earlier time than a previous step is a no-op.
    ///
    /// # Errors
    /// [`SimError::BadSelection`] / [`SimError::BadMachinePick`] exactly
    /// as [`run_scheduler`](crate::run_scheduler).
    pub fn step(&mut self, until: Time) -> Result<(), SimError> {
        self.engine.step(&self.trace, self.scheduler.as_mut(), until)
    }

    /// Admits a new job into the running trace.
    ///
    /// The release must be strictly after the stepped-to mark (the
    /// engine has already processed that moment); equal-release ties
    /// land behind existing jobs in admission order, matching the
    /// builder's stable sort — which is why a grown session stays
    /// bit-identical to a batch run over the grown trace.
    ///
    /// # Errors
    /// * [`SimError::AdmitUnsupported`] — the scheduler cannot splice
    ///   (the general REF holds a trace snapshot);
    /// * [`SimError::AdmitTooLate`] — `release <= stepped_to`;
    /// * [`SimError::InvalidTrace`] — unknown org, zero processing time,
    ///   or time overflow (checked before anything mutates).
    pub fn admit(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        deadline: Option<Time>,
    ) -> Result<JobId, SimError> {
        if !self.scheduler.admits_jobs() {
            return Err(SimError::AdmitUnsupported { scheduler: self.scheduler.name() });
        }
        if let Some(stepped_to) = self.engine.stepped_to() {
            if release <= stepped_to {
                return Err(SimError::AdmitTooLate { release, stepped_to });
            }
        }
        let id = self
            .trace
            .admit_job(org, release, proc_time, deadline)
            .map_err(SimError::InvalidTrace)?;
        self.scheduler.on_admit(&self.trace.job(id));
        self.admissions.push(Admission { org, release, proc_time, deadline });
        Ok(id)
    }

    /// Steps to `horizon` and evaluates the run there without consuming
    /// the session (the engine position is copied for evaluation).
    pub fn result_at(
        &mut self,
        horizon: Time,
        validate: bool,
    ) -> Result<SimResult, SimError> {
        self.step(horizon)?;
        self.engine.clone().into_result(
            &self.trace,
            self.scheduler.as_mut(),
            SimOptions { horizon, validate },
        )
    }

    /// Steps to `horizon` and evaluates the run there, consuming the
    /// session. Equivalent to a batch [`run_scheduler`](crate::run_scheduler)
    /// over the grown trace.
    pub fn finish(
        mut self,
        horizon: Time,
        validate: bool,
    ) -> Result<SimResult, SimError> {
        self.step(horizon)?;
        self.engine.into_result(
            &self.trace,
            self.scheduler.as_mut(),
            SimOptions { horizon, validate },
        )
    }

    /// Serializes the session as a replay snapshot (compact JSON):
    /// scheduler spec + seed, the base trace, the admission log, and the
    /// stepped-to mark. [`restore`](SimSession::restore) inverts it.
    pub fn snapshot(&self) -> String {
        let stepped = match self.engine.stepped_to() {
            Some(t) => Value::Number(t.to_string()),
            None => Value::Null,
        };
        Value::Object(vec![
            ("schema".to_string(), Value::String(SNAPSHOT_SCHEMA.to_string())),
            ("scheduler".to_string(), Value::String(self.spec.to_string())),
            ("seed".to_string(), self.seed.to_value()),
            ("stepped_to".to_string(), stepped),
            ("base_trace".to_string(), self.base_trace.to_value()),
            ("admissions".to_string(), self.admissions.to_value()),
        ])
        .to_json()
    }

    /// Rebuilds a session from a [`snapshot`](SimSession::snapshot):
    /// the scheduler is reconstructed from the base trace (same spec,
    /// same seed), the admission log is replayed, and the engine steps
    /// to the recorded mark. Determinism of the engine and of every
    /// registered scheduler makes the result bit-identical to the
    /// session that was snapshotted.
    pub fn restore(snapshot: &str) -> Result<Self, SimError> {
        let v = serde_json::parse_value(snapshot)
            .map_err(|e| SimError::Snapshot { message: e.to_string() })?;
        let schema: String = field(&v, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(SimError::Snapshot {
                message: format!(
                    "unsupported schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
                ),
            });
        }
        let spec_str: String = field(&v, "scheduler")?;
        let seed: u64 = field(&v, "seed")?;
        let stepped_to: Option<Time> = field(&v, "stepped_to")?;
        let base_trace: Trace = field(&v, "base_trace")?;
        let admissions: Vec<Admission> = field(&v, "admissions")?;
        let spec: SchedulerSpec = spec_str.parse()?;
        let mut session = Self::from_parts(base_trace, spec, seed)?;
        // Replay in admission order *before* stepping: equal-release ties
        // land behind earlier admissions exactly as they did live, and
        // with nothing stepped yet every recorded release is admissible.
        for a in &admissions {
            session.admit(a.org, a.release, a.proc_time, a.deadline)?;
        }
        if let Some(t) = stepped_to {
            session.step(t)?;
        }
        Ok(session)
    }
}

/// Snapshot field access with [`SimError::Snapshot`] errors.
fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, SimError> {
    serde::field(v, name, "SessionSnapshot")
        .map_err(|e| SimError::Snapshot { message: e.to_string() })
}

impl fmt::Debug for SimSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSession")
            .field("scheduler", &self.spec.to_string())
            .field("seed", &self.seed)
            .field("stepped_to", &self.engine.stepped_to())
            .field("jobs", &self.trace.n_jobs())
            .field("admissions", &self.admissions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_scheduler;
    use fairsched_core::Trace;

    fn small_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
        b.build().unwrap()
    }

    fn batch(trace: &Trace, spec: &str, seed: u64, horizon: Time) -> SimResult {
        let mut scheduler = Registry::shared()
            .build(&spec.parse().unwrap(), &BuildContext { trace, seed })
            .unwrap();
        run_scheduler(trace, scheduler.as_mut(), SimOptions { horizon, validate: true })
            .unwrap()
    }

    #[test]
    fn stepping_in_increments_matches_batch() {
        for spec in ["ref", "rand:perms=7", "fairshare", "fifo", "directcontr"] {
            let trace = small_trace();
            let expected = batch(&trace, spec, 3, 50);
            let mut session = SimSession::new(trace, spec, 3).unwrap();
            for until in [0, 1, 2, 3, 7, 20, 50] {
                session.step(until).unwrap();
            }
            let got = session.finish(50, true).unwrap();
            assert_eq!(got.schedule, expected.schedule, "schedule diverged for {spec}");
            assert_eq!(got.psi, expected.psi, "psi diverged for {spec}");
            assert_eq!(got.completed_jobs, expected.completed_jobs);
        }
    }

    #[test]
    fn step_to_earlier_time_is_a_noop() {
        let mut session = SimSession::new(small_trace(), "fifo", 0).unwrap();
        session.step(10).unwrap();
        let before = session.schedule().entries().to_vec();
        session.step(2).unwrap();
        assert_eq!(session.schedule().entries(), &before[..]);
        assert_eq!(session.stepped_to(), Some(10));
    }

    #[test]
    fn admitted_session_matches_batch_over_grown_trace() {
        for spec in ["ref", "rand:perms=5", "fairshare"] {
            // Batch reference: the same jobs known up front.
            let mut b = Trace::builder();
            let a = b.org("a", 1);
            let c = b.org("b", 1);
            b.job(a, 0, 3).job(c, 0, 2).job(a, 2, 1).job(c, 4, 4);
            b.job(c, 5, 2).job(a, 7, 3); // the "online" arrivals
            let grown = b.build().unwrap();
            let expected = batch(&grown, spec, 9, 60);

            let mut session = SimSession::new(small_trace(), spec, 9).unwrap();
            session.step(4).unwrap();
            session.admit(OrgId(1), 5, 2, None).unwrap();
            session.step(6).unwrap();
            session.admit(OrgId(0), 7, 3, None).unwrap();
            let got = session.finish(60, true).unwrap();
            assert_eq!(got.schedule, expected.schedule, "schedule diverged for {spec}");
            assert_eq!(got.psi, expected.psi, "psi diverged for {spec}");
        }
    }

    #[test]
    fn admit_at_or_before_stepped_to_is_rejected() {
        let mut session = SimSession::new(small_trace(), "fifo", 0).unwrap();
        session.step(5).unwrap();
        let err = session.admit(OrgId(0), 5, 1, None);
        assert!(
            matches!(err, Err(SimError::AdmitTooLate { release: 5, stepped_to: 5 })),
            "got {err:?}"
        );
        // Strictly later is fine.
        session.admit(OrgId(0), 6, 1, None).unwrap();
    }

    #[test]
    fn general_ref_declines_admission() {
        let mut session =
            SimSession::new(small_trace(), "general-ref:util=sp", 0).unwrap();
        let err = session.admit(OrgId(0), 10, 1, None);
        assert!(matches!(err, Err(SimError::AdmitUnsupported { .. })), "got {err:?}");
    }

    #[test]
    fn admit_invalid_job_is_typed_and_does_not_desync() {
        let mut session = SimSession::new(small_trace(), "ref", 0).unwrap();
        session.step(1).unwrap();
        assert!(session.admit(OrgId(9), 5, 1, None).is_err(), "unknown org");
        assert!(session.admit(OrgId(0), 5, 0, None).is_err(), "zero proc time");
        // The failed admissions left no residue: the session still matches
        // the plain batch run.
        let expected = batch(&small_trace(), "ref", 0, 50);
        assert_eq!(session.finish(50, true).unwrap().schedule, expected.schedule);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_run() {
        let mut session = SimSession::new(small_trace(), "ref", 4).unwrap();
        session.step(2).unwrap();
        session.admit(OrgId(1), 5, 2, None).unwrap();
        session.step(4).unwrap();
        let snap = session.snapshot();
        let restored = SimSession::restore(&snap).unwrap();
        assert_eq!(restored.stepped_to(), session.stepped_to());
        assert_eq!(restored.admissions(), session.admissions());
        assert_eq!(restored.schedule(), session.schedule());
        let a = session.finish(50, true).unwrap();
        let b = restored.finish(50, true).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.psi, b.psi);
    }

    #[test]
    fn snapshot_of_fresh_session_restores() {
        let session = SimSession::new(small_trace(), "rand:perms=5", 7).unwrap();
        let restored = SimSession::restore(&session.snapshot()).unwrap();
        assert_eq!(restored.stepped_to(), None);
        let a = session.finish(50, true).unwrap();
        let b = restored.finish(50, true).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn restore_rejects_garbage_and_wrong_schema() {
        assert!(matches!(SimSession::restore("{nope"), Err(SimError::Snapshot { .. })));
        assert!(matches!(
            SimSession::restore(r#"{"schema":"other/v9"}"#),
            Err(SimError::Snapshot { .. })
        ));
        assert!(matches!(
            SimSession::restore(r#"{"schema":"fairsched-session-snapshot/v1"}"#),
            Err(SimError::Snapshot { .. })
        ));
    }

    proptest::proptest! {
        /// Replay-based recovery is exact: restoring a snapshot taken at
        /// any split point — with any mix of mid-run admissions — then
        /// finishing yields the *bit-identical* schedule and ψ vector of
        /// the session that kept running, across random traces and the
        /// scheduler families (exact REF, sampled RAND, fair-share, RR).
        #[test]
        fn prop_restore_then_step_is_bit_identical(
            jobs in proptest::collection::vec((0u32..3, 0u64..40, 1u64..10), 1..25),
            admits in proptest::collection::vec((0u32..3, 1u64..60, 1u64..10), 0..6),
            scheduler_idx in 0usize..4,
            split in 0u64..50,
        ) {
            let spec = ["ref", "rand:perms=5", "fairshare", "roundrobin"]
                [scheduler_idx];
            let mut b = Trace::builder();
            let orgs = [b.org("o0", 1), b.org("o1", 2), b.org("o2", 1)];
            for (o, r, p) in &jobs {
                b.job(orgs[*o as usize], *r, *p);
            }
            let trace = b.build().unwrap();
            let mut live = SimSession::new(trace, spec, 11).unwrap();
            live.step(split).unwrap();
            for (o, r, p) in &admits {
                // Only strictly-later releases are admissible online.
                if *r > split {
                    live.admit(OrgId(*o), *r, *p, None).unwrap();
                }
            }
            let restored = SimSession::restore(&live.snapshot()).unwrap();
            proptest::prop_assert_eq!(restored.stepped_to(), live.stepped_to());
            proptest::prop_assert_eq!(restored.schedule(), live.schedule());
            let a = live.finish(120, true).unwrap();
            let b = restored.finish(120, true).unwrap();
            proptest::prop_assert_eq!(a.schedule, b.schedule);
            proptest::prop_assert_eq!(a.psi, b.psi);
        }
    }

    #[test]
    fn from_workload_builds_through_the_registry() {
        let mut session = SimSession::from_workload("fpt:k=2", "fairshare", 3).unwrap();
        session.step(100).unwrap();
        assert!(!session.schedule().is_empty());
        let direct = {
            let wspec = "fpt:k=2".parse().unwrap();
            let trace = WorkloadRegistry::shared()
                .build(&wspec, &WorkloadContext { seed: 3 })
                .unwrap();
            batch(&trace, "fairshare", 3, 500)
        };
        assert_eq!(session.finish(500, true).unwrap().schedule, direct.schedule);
    }
}
