//! Machine pool state: which job runs where, and since when.

use fairsched_core::model::{ClusterInfo, JobId, MachineId, Time};

/// The runtime state of the machine pool: free machines and, for busy ones,
/// the running job and its start time.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// `running[m] = Some((job, start))` when machine `m` is busy.
    running: Vec<Option<(JobId, Time)>>,
    /// Free machine ids, kept sorted ascending so "first free machine" is
    /// deterministic.
    free: Vec<MachineId>,
}

impl Cluster {
    /// An all-idle cluster matching `info`.
    pub fn new(info: &ClusterInfo) -> Self {
        Cluster {
            running: vec![None; info.n_machines()],
            free: (0..info.n_machines()).map(|m| MachineId(m as u32)).collect(),
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.running.len()
    }

    /// Currently free machines, ascending.
    pub fn free_machines(&self) -> &[MachineId] {
        &self.free
    }

    /// Whether any machine is free.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Number of busy machines.
    pub fn busy_count(&self) -> usize {
        self.running.len() - self.free.len()
    }

    /// Marks the `idx`-th free machine as running `job` from `t`; returns
    /// the machine id.
    ///
    /// # Panics
    /// Panics if `idx` is out of range of the free list.
    pub fn start(&mut self, idx: usize, job: JobId, t: Time) -> MachineId {
        let machine = self.free.remove(idx);
        debug_assert!(self.running[machine.index()].is_none());
        self.running[machine.index()] = Some((job, t));
        machine
    }

    /// Frees `machine`, returning the job that ran there and its start time.
    ///
    /// # Panics
    /// Panics if the machine was not busy.
    pub fn complete(&mut self, machine: MachineId) -> (JobId, Time) {
        let slot =
            self.running[machine.index()].take().expect("completing an idle machine");
        // Keep the free list sorted.
        let pos = self.free.partition_point(|&m| m < machine);
        self.free.insert(pos, machine);
        slot
    }

    /// The job running on `machine`, if busy.
    pub fn running_on(&self, machine: MachineId) -> Option<(JobId, Time)> {
        self.running[machine.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(&ClusterInfo::new(vec![n]))
    }

    #[test]
    fn start_and_complete_roundtrip() {
        let mut c = cluster(3);
        assert_eq!(c.free_machines().len(), 3);
        let m = c.start(1, JobId(7), 5);
        assert_eq!(m, MachineId(1));
        assert_eq!(c.busy_count(), 1);
        assert_eq!(c.running_on(m), Some((JobId(7), 5)));
        let (job, start) = c.complete(m);
        assert_eq!((job, start), (JobId(7), 5));
        assert_eq!(c.busy_count(), 0);
    }

    #[test]
    fn free_list_stays_sorted() {
        let mut c = cluster(3);
        let m0 = c.start(0, JobId(0), 0);
        let m1 = c.start(0, JobId(1), 0);
        let _m2 = c.start(0, JobId(2), 0);
        assert!(!c.has_free());
        c.complete(m1);
        c.complete(m0);
        assert_eq!(c.free_machines(), &[MachineId(0), MachineId(1)]);
    }

    #[test]
    #[should_panic]
    fn completing_idle_machine_panics() {
        let mut c = cluster(1);
        c.complete(MachineId(0));
    }
}
