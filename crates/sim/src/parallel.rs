//! Order-preserving parallel map on `std::thread::scope` scoped threads.
//!
//! Simulation sessions are embarrassingly parallel — every
//! [`Simulation::run_matrix`](crate::Simulation::run_matrix) cell and every
//! experiment instance (one seeded workload × all schedulers) is
//! independent — and a chunked scoped-thread map keeps the dependency
//! footprint minimal (DESIGN.md §6 explains why not rayon). This module
//! used to live in `fairsched-bench`; it moved here so the session API can
//! fan out without a dependency cycle (`fairsched_bench::parallel`
//! re-exports it for compatibility).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set inside `parallel_map` worker threads so nested calls (e.g. a
    /// parallel experiment runner whose instances each call the parallel
    /// `run_matrix`) degrade to a serial loop instead of oversubscribing
    /// the machine with `workers²` threads.
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Applies `f` to every item on up to `available_parallelism` worker
/// threads, preserving input order in the output.
///
/// Nesting-safe: when called from inside another `parallel_map` worker,
/// the inner call runs serially on that worker (the outer map already
/// saturates the cores), so composed fan-outs never oversubscribe.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers == 1 || IN_PARALLEL_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Work-stealing by index over a shared immutable Vec of inputs.
    let inputs: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item =
                        inputs[i].lock().unwrap().take().expect("item taken twice");
                    let result = f(item);
                    *slots[i].lock().unwrap() = Some(result);
                }
            });
        }
    });

    slots.into_iter().map(|m| m.into_inner().unwrap().expect("missing result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let out = parallel_map((0..50).collect(), |i: usize| table[i * 10]);
        assert_eq!(out[5], 50);
        assert_eq!(out[49], 490);
    }

    #[test]
    fn nested_maps_run_serially_on_the_worker() {
        // The inner map must not spawn another worker pool: inside a
        // worker the nesting flag is set, so the inner call maps inline
        // (observable via the flag itself) while results stay correct.
        let out = parallel_map((0..8).collect(), |x: i32| {
            let inner_was_nested = IN_PARALLEL_WORKER.with(Cell::get);
            let inner = parallel_map((0..4).collect(), |y: i32| x * 10 + y);
            (inner_was_nested, inner)
        });
        let multi_core =
            std::thread::available_parallelism().map(|p| p.get() > 1).unwrap_or(false);
        for (i, (nested, inner)) in out.iter().enumerate() {
            if multi_core {
                assert!(*nested, "worker thread must be flagged");
            }
            let expect: Vec<i32> = (0..4).map(|y| i as i32 * 10 + y).collect();
            assert_eq!(inner, &expect);
        }
    }
}
