//! Exhaustive search over greedy schedules for tiny instances.
//!
//! Theorem 6.2 states every greedy algorithm is 3/4-competitive for
//! resource utilization. To validate the bound experimentally we need the
//! best achievable utilization; this module enumerates **all** greedy
//! schedules of a small instance (branching over which organization's
//! FIFO-head job each freed machine takes) and reports the maximum and
//! minimum completed units by a horizon. Any greedy schedule is feasible,
//! so `max` lower-bounds the true optimum, while Theorem 6.2 promises every
//! individual greedy schedule — including the minimum — stays within the
//! 3/4 factor of the optimum. The Figure 7 family, where the optimum is
//! known analytically, shows the bound is tight.

use fairsched_core::model::{Time, Trace};
use fairsched_core::OrgId;

/// Result of exhaustive greedy enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyEnvelope {
    /// Maximum completed units by the horizon over all greedy schedules.
    pub max_units: Time,
    /// Minimum completed units by the horizon over all greedy schedules.
    pub min_units: Time,
    /// Number of terminal decision paths explored.
    pub paths: u64,
}

struct Dfs {
    /// Per-org FIFO job lists: (release, proc).
    queues: Vec<Vec<(Time, Time)>>,
    horizon: Time,
    m: usize,
    max_units: Time,
    min_units: Time,
    paths: u64,
}

impl Dfs {
    fn go(&mut self, next: &mut [usize], busy: &[Time], t: Time, units: Time) {
        assert!(
            self.paths < 20_000_000,
            "instance too large for exhaustive greedy search"
        );
        if t > self.horizon {
            self.finish(units);
            return;
        }
        // Organizations whose FIFO-head job is released by t.
        let eligible: Vec<usize> = (0..self.queues.len())
            .filter(|&u| next[u] < self.queues[u].len() && self.queues[u][next[u]].0 <= t)
            .collect();
        if busy.len() < self.m && !eligible.is_empty() {
            // Greedy: something must start *now*; branch over organizations
            // (machines are identical, so which machine is irrelevant).
            for &u in &eligible {
                let (_, p) = self.queues[u][next[u]];
                next[u] += 1;
                let mut busy2 = busy.to_vec();
                busy2.push(t + p);
                let gained = p.min(self.horizon - t);
                self.go(next, &busy2, t, units + gained);
                next[u] -= 1;
            }
            return;
        }
        // Advance to the next event: earliest completion or future release.
        let next_completion = busy.iter().copied().min();
        let next_release = (0..self.queues.len())
            .filter_map(|u| self.queues[u].get(next[u]).map(|&(r, _)| r))
            .filter(|&r| r > t)
            .min();
        let t2 = match (next_completion, next_release) {
            (None, None) => {
                self.finish(units);
                return;
            }
            (Some(c), None) => c,
            (None, Some(r)) => r,
            (Some(c), Some(r)) => c.min(r),
        };
        if t2 > self.horizon {
            self.finish(units);
            return;
        }
        let busy2: Vec<Time> = busy.iter().copied().filter(|&c| c > t2).collect();
        self.go(next, &busy2, t2, units);
    }

    fn finish(&mut self, units: Time) {
        self.paths += 1;
        self.max_units = self.max_units.max(units);
        self.min_units = self.min_units.min(units);
    }
}

/// Enumerates every greedy schedule of `trace` and returns the
/// completed-units envelope at `horizon`.
///
/// Exponential in the number of scheduling decisions — intended for
/// instances with at most ~12 jobs.
///
/// # Panics
/// Panics if the exploration exceeds 20 million paths (guard against
/// accidentally huge inputs).
pub fn greedy_envelope(trace: &Trace, horizon: Time) -> GreedyEnvelope {
    let info = trace.cluster_info();
    let queues: Vec<Vec<(Time, Time)>> = (0..trace.n_orgs())
        .map(|u| {
            trace.jobs_of(OrgId(u as u32)).map(|j| (j.release, j.proc_time)).collect()
        })
        .collect();
    let mut dfs = Dfs {
        queues,
        horizon,
        m: info.n_machines(),
        max_units: 0,
        min_units: Time::MAX,
        paths: 0,
    };
    let mut next = vec![0usize; trace.n_orgs()];
    dfs.go(&mut next, &[], 0, 0);
    GreedyEnvelope {
        max_units: dfs.max_units,
        min_units: if dfs.min_units == Time::MAX { 0 } else { dfs.min_units },
        paths: dfs.paths,
    }
}

/// The Figure 7 adversarial family, scaled by `p`: `2·m_half` short jobs of
/// size `p` and `m_half` long jobs of size `2p` on `2·m_half` machines,
/// all released at 0, evaluated at horizon `T = 2p`.
///
/// Starting the long jobs first keeps every machine busy through `[0, 2p)`
/// (100% utilization); starting all the short jobs first leaves `m_half`
/// machines idle during `[p, 2p)` after the longs take the other half —
/// exactly 75%, the tight bound of Theorem 6.2.
pub fn figure7_family(m_half: usize, p: Time) -> (Trace, Time) {
    let mut b = Trace::builder();
    let o1 = b.org("short-org", m_half);
    let o2 = b.org("long-org", m_half);
    b.jobs(o1, 0, p, 2 * m_half);
    b.jobs(o2, 0, 2 * p, m_half);
    (b.build().expect("valid figure-7 instance"), 2 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_envelope_is_exactly_100_vs_75() {
        let (trace, t) = figure7_family(2, 3); // 4 machines, p=3, T=6
        let env = greedy_envelope(&trace, t);
        let capacity = 4 * t; // 24
        assert_eq!(env.max_units, capacity, "best greedy achieves 100%");
        assert_eq!(env.min_units * 4, capacity * 3, "worst greedy achieves exactly 75%");
        assert!(env.paths > 1);
    }

    #[test]
    fn figure7_scales_with_p() {
        for p in [1, 2, 5] {
            let (trace, t) = figure7_family(1, p); // 2 machines
            let env = greedy_envelope(&trace, t);
            assert_eq!(env.max_units, 2 * t);
            assert_eq!(env.min_units * 4, 2 * t * 3);
        }
    }

    #[test]
    fn single_org_has_single_path_outcome() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 2).job(a, 0, 2);
        let trace = b.build().unwrap();
        let env = greedy_envelope(&trace, 10);
        assert_eq!(env.max_units, 4);
        assert_eq!(env.min_units, 4);
    }

    #[test]
    fn envelope_on_empty_trace() {
        let mut b = Trace::builder();
        b.org("a", 1);
        let trace = b.build().unwrap();
        let env = greedy_envelope(&trace, 10);
        assert_eq!(env.max_units, 0);
        assert_eq!(env.min_units, 0);
    }

    #[test]
    fn respects_release_times() {
        // One machine; job released at 5, nothing before: units = horizon-5.
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 5, 100);
        let trace = b.build().unwrap();
        let env = greedy_envelope(&trace, 8);
        assert_eq!(env.max_units, 3);
        assert_eq!(env.min_units, 3);
    }

    #[test]
    fn theorem_6_2_on_random_small_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..40 {
            let mut b = Trace::builder();
            let o1 = b.org("a", rng.random_range(1..3));
            let o2 = b.org("b", 1);
            for _ in 0..rng.random_range(2..6) {
                b.job(o1, rng.random_range(0..4), rng.random_range(1..5));
            }
            for _ in 0..rng.random_range(1..4) {
                b.job(o2, rng.random_range(0..4), rng.random_range(1..7));
            }
            let trace = b.build().unwrap();
            let horizon = rng.random_range(4..15);
            let env = greedy_envelope(&trace, horizon);
            assert!(
                env.min_units * 4 >= env.max_units * 3,
                "Theorem 6.2 violated in round {round}: min {} < 3/4·max {}",
                env.min_units,
                env.max_units
            );
        }
    }
}
