//! ASCII Gantt rendering of schedules — a debugging/demo aid.

use fairsched_core::model::{Time, Trace};
use fairsched_core::schedule::Schedule;

/// Renders the schedule as one text row per machine over `[0, horizon)`,
/// compressed to at most `width` columns. Each cell shows the organization
/// index (`0`–`9`, then `a`–`z`) of the job occupying the machine for the
/// majority of that cell's time span, or `.` when idle.
pub fn render_gantt(
    trace: &Trace,
    schedule: &Schedule,
    horizon: Time,
    width: usize,
) -> String {
    let info = trace.cluster_info();
    let m = info.n_machines();
    let width = width.clamp(1, horizon.max(1) as usize);
    let mut out = String::new();
    let cell_span = (horizon as f64 / width as f64).max(1.0);

    out.push_str(&format!(
        "t=0 {:·^width$} t={horizon}\n",
        "",
        width = width.saturating_sub(8).max(1)
    ));
    for machine in 0..m {
        let mut row = vec!['.'; width];
        for e in schedule.entries() {
            if e.machine.index() != machine {
                continue;
            }
            let start = e.start.min(horizon);
            let end = e.completion().min(horizon);
            if start >= end {
                continue;
            }
            let c0 = (start as f64 / cell_span) as usize;
            let c1 = (((end as f64) / cell_span).ceil() as usize).min(width);
            let symbol = org_symbol(e.org.index());
            for cell in row.iter_mut().take(c1).skip(c0) {
                *cell = symbol;
            }
        }
        let owner = info.owner(fairsched_core::MachineId(machine as u32));
        out.push_str(&format!(
            "M{machine:<3} (owner {:<4}) |{}|\n",
            format!("{owner}"),
            row.iter().collect::<String>()
        ));
    }
    out
}

fn org_symbol(index: usize) -> char {
    match index {
        0..=9 => (b'0' + index as u8) as char,
        10..=35 => (b'a' + (index - 10) as u8) as char,
        _ => '#',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_core::scheduler::FifoScheduler;
    use fairsched_core::Trace;

    #[test]
    fn renders_rows_per_machine() {
        let mut b = Trace::builder();
        let a = b.org("a", 2);
        let c = b.org("b", 1);
        b.job(a, 0, 4).job(c, 0, 8).job(a, 4, 4);
        let trace = b.build().unwrap();
        let r = crate::simulate(&trace, &mut FifoScheduler::new(), 8).expect("valid run");
        let g = render_gantt(&trace, &r.schedule, 8, 8);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 machines
                                    // Machine rows contain org symbols and pipes.
        assert!(lines[1].contains('|'));
        assert!(g.contains('0'));
        assert!(g.contains('1'));
    }

    #[test]
    fn idle_machines_are_dots() {
        let mut b = Trace::builder();
        let a = b.org("a", 2);
        b.job(a, 0, 2);
        let trace = b.build().unwrap();
        let r =
            crate::simulate(&trace, &mut FifoScheduler::new(), 10).expect("valid run");
        let g = render_gantt(&trace, &r.schedule, 10, 10);
        // The second machine never works: its row is all dots.
        let row2 = g.lines().nth(2).unwrap();
        assert!(row2.contains(".........."));
    }

    #[test]
    fn symbols_cover_many_orgs() {
        assert_eq!(org_symbol(0), '0');
        assert_eq!(org_symbol(9), '9');
        assert_eq!(org_symbol(10), 'a');
        assert_eq!(org_symbol(35), 'z');
        assert_eq!(org_symbol(99), '#');
    }
}
