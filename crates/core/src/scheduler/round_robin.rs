//! The ROUNDROBIN baseline: cycle through organizations.

use super::{Scheduler, SelectContext};
use crate::model::{ClusterInfo, OrgId};

/// Cycles through the organization list to determine whose job starts next
/// (Section 7.1). Not fairness-aware: it ignores both machine contributions
/// and accumulated utilities, which is why the paper uses it as the
/// "arbitrary algorithm" lower bar.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    next: usize,
    n_orgs: usize,
}

impl RoundRobinScheduler {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> String {
        "RoundRobin".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        self.n_orgs = info.n_orgs();
        self.next = 0;
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        debug_assert_eq!(ctx.waiting.len(), self.n_orgs);
        for off in 0..self.n_orgs {
            let u = (self.next + off) % self.n_orgs;
            if ctx.waiting[u] > 0 {
                self.next = (u + 1) % self.n_orgs;
                return OrgId(u as u32);
            }
        }
        panic!("select called with no waiting jobs");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(waiting: &[usize]) -> SelectContext<'_> {
        SelectContext { t: 0, waiting, free_machines: &[] }
    }

    #[test]
    fn cycles_through_orgs() {
        let mut s = RoundRobinScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1, 1]));
        let w = [1usize, 1, 1];
        assert_eq!(s.select(&ctx(&w)), OrgId(0));
        assert_eq!(s.select(&ctx(&w)), OrgId(1));
        assert_eq!(s.select(&ctx(&w)), OrgId(2));
        assert_eq!(s.select(&ctx(&w)), OrgId(0));
    }

    #[test]
    fn skips_empty_orgs() {
        let mut s = RoundRobinScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1, 1]));
        let w = [0usize, 0, 3];
        assert_eq!(s.select(&ctx(&w)), OrgId(2));
        assert_eq!(s.select(&ctx(&w)), OrgId(2));
        // Pointer advanced past org 2, wraps around.
        let w2 = [1usize, 0, 1];
        assert_eq!(s.select(&ctx(&w2)), OrgId(0));
    }

    #[test]
    #[should_panic]
    fn panics_with_nothing_waiting() {
        let mut s = RoundRobinScheduler::new();
        s.init(&ClusterInfo::new(vec![1]));
        let w = [0usize];
        let _ = s.select(&ctx(&w));
    }
}
