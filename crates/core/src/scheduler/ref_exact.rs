//! REF (Figures 1 & 3): the exact exponential fair algorithm.
//!
//! REF maintains a hypothetical fair schedule for **every** subcoalition
//! (the [`CoalitionLattice`]), computes each organization's exact Shapley
//! contribution `φ(u)` from the subcoalition values, and always starts a
//! job of the organization with the largest contribution surplus
//! `φ(u) − ψ(u)` — the `ψ_sp` specialization of Definition 3.1's
//! distance-minimizing rule (Figure 3).
//!
//! Complexity per decision is `O(k·2^k)` plus the lattice bookkeeping —
//! exponential in the number of organizations but independent of job and
//! machine counts beyond the lattice's own simulation work, matching
//! Proposition 3.4 and making REF the fixed-parameter-tractable fairness
//! *benchmark* of the paper (Corollary 3.5).
//!
//! REF needs job durations to run its hypothetical sub-schedules — the
//! execution-oracle boundary documented in DESIGN.md. Construct it with
//! [`RefScheduler::new`] from the trace the engine will replay.

use super::lattice::CoalitionLattice;
use super::{OrgPicker, Scheduler, SelectContext, StepBumps};
use crate::model::{ClusterInfo, JobMeta, MachineId, OrgId, Time, Trace};
use crate::utility::{SpTracker, Util};
use coopgame::{factorial, Coalition};

/// The exact Shapley-fair scheduler (the paper's fairness reference).
#[derive(Clone, Debug)]
pub struct RefScheduler {
    durations: Vec<Time>,
    lattice: CoalitionLattice,
    grand: Coalition,
    scale: i128,
    trackers: Vec<SpTracker>,
    bumps: StepBumps,
    picker: OrgPicker,
    bumps_enabled: bool,
}

impl RefScheduler {
    /// Builds REF for a trace (machine layout and the duration oracle are
    /// read from it).
    ///
    /// # Panics
    /// Panics if the trace has more than 16 organizations (the lattice
    /// holds `2^k` sub-schedules).
    pub fn new(trace: &Trace) -> Self {
        let machines: Vec<usize> = trace.orgs().iter().map(|o| o.n_machines).collect();
        let k = machines.len();
        RefScheduler {
            durations: trace.jobs().iter().map(|j| j.proc_time).collect(),
            lattice: CoalitionLattice::full_proper(&machines),
            grand: Coalition::grand(k),
            scale: factorial(k) as i128,
            trackers: vec![SpTracker::new(); k],
            bumps: StepBumps::new(k),
            picker: OrgPicker::new(k),
            bumps_enabled: true,
        }
    }

    /// Disables the within-time-step utility bumps (see
    /// [`StepBumps`]) — the ablation of DESIGN.md §2's one-step-ahead
    /// marginal: without bumps, an organization with the top surplus
    /// monopolizes every machine freed in the same time moment.
    pub fn without_step_bumps(mut self) -> Self {
        self.bumps_enabled = false;
        self
    }

    /// The realized `ψ_sp` vector of the real schedule at `t` (as tracked
    /// from engine events).
    pub fn psi(&self, t: Time) -> Vec<Util> {
        self.trackers.iter().map(|tr| tr.value_at(t)).collect()
    }

    /// Exact scaled contributions `φ(u)·k!` at `t`. The lattice is settled
    /// as a side effect.
    pub fn contributions_scaled(&mut self, t: Time) -> Vec<i128> {
        self.lattice.settle(t);
        let grand_value: Util = self.trackers.iter().map(|tr| tr.value_at(t)).sum();
        self.lattice.shapley_for(self.grand, t, Some(grand_value))
    }

    /// Exact contributions `φ(u)` at `t` as `f64` (scaled back by `k!`).
    pub fn contributions(&mut self, t: Time) -> Vec<f64> {
        let scale = self.scale as f64;
        self.contributions_scaled(t).into_iter().map(|phi| phi as f64 / scale).collect()
    }

    /// Read-only access to the subcoalition lattice (for analysis tools).
    pub fn lattice(&self) -> &CoalitionLattice {
        &self.lattice
    }
}

impl Scheduler for RefScheduler {
    fn name(&self) -> String {
        "Ref".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        assert_eq!(
            info.n_orgs(),
            self.trackers.len(),
            "REF was built for a different trace"
        );
    }

    fn on_admit(&mut self, job: &crate::model::Job) {
        // Splice the new duration into the oracle at the id the trace
        // assigned; later (unreleased) jobs shift by one in lockstep with
        // the trace's renumbering. The lattice and φ caches are untouched:
        // they only learn of the job at its `on_release`, exactly as they
        // would have in a batch run over the grown trace.
        self.durations.insert(job.id.index(), job.proc_time);
    }

    fn on_release(&mut self, t: Time, job: &JobMeta) {
        let proc = self.durations[job.id.index()];
        self.lattice.release(t, job.org, proc);
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, _machine: MachineId) {
        self.trackers[job.org.index()].on_start(t);
        if self.bumps_enabled {
            self.bumps.add(t, job.org, 1);
        }
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, _machine: MachineId, start: Time) {
        self.trackers[job.org.index()].on_complete(start, t);
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let t = ctx.t;
        let phi = self.contributions_scaled(t);
        let trackers = &self.trackers;
        let bumps = &self.bumps;
        let scale = self.scale;
        self.picker.pick_max(ctx, |u| {
            phi[u.index()] - scale * (trackers[u.index()].value_at(t) + bumps.get(t, u))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobId;

    fn meta(id: u32, org: u32, release: Time) -> JobMeta {
        JobMeta { id: JobId(id), org: OrgId(org), release }
    }

    /// Two orgs, one machine each, one unit job each at t=0: perfectly
    /// symmetric, so REF must serve both in the same time moment (two free
    /// machines) — and its selections must alternate.
    #[test]
    fn symmetric_orgs_alternate() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 1).job(c, 0, 1);
        let trace = b.build().unwrap();
        let mut s = RefScheduler::new(&trace);
        s.init(&trace.cluster_info());
        s.on_release(0, &meta(0, 0, 0));
        s.on_release(0, &meta(1, 1, 0));
        let w = [1usize, 1];
        let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
        let first = s.select(&ctx);
        s.on_start(0, &meta(first.0, first.0, 0), MachineId(first.0));
        let w2: [usize; 2] = if first.0 == 0 { [0, 1] } else { [1, 0] };
        let ctx2 = SelectContext { t: 0, waiting: &w2, free_machines: &[] };
        let second = s.select(&ctx2);
        assert_ne!(first, second);
    }

    /// An org with a machine but no jobs accumulates contribution; when it
    /// finally releases a job, REF prioritizes it over the org that has
    /// been consuming the pool.
    #[test]
    fn contributor_is_prioritized() {
        let mut b = Trace::builder();
        let a = b.org("busy", 1);
        let c = b.org("donor", 1);
        // Org a: four 2-unit jobs at t=0 (keeps both machines busy).
        b.jobs(a, 0, 2, 4);
        // Org c: one job at t=4.
        b.job(c, 4, 2);
        let trace = b.build().unwrap();
        let mut s = RefScheduler::new(&trace);
        s.init(&trace.cluster_info());
        // Replay: t=0 release a's jobs; both machines take a's jobs.
        for i in 0..4 {
            s.on_release(0, &meta(i, 0, 0));
        }
        s.on_start(0, &meta(0, 0, 0), MachineId(0));
        s.on_start(0, &meta(1, 0, 0), MachineId(1));
        s.on_complete(2, &meta(0, 0, 0), MachineId(0), 0);
        s.on_complete(2, &meta(1, 0, 0), MachineId(1), 0);
        s.on_start(2, &meta(2, 0, 0), MachineId(0));
        s.on_start(2, &meta(3, 0, 0), MachineId(1));
        s.on_complete(4, &meta(2, 0, 0), MachineId(0), 2);
        s.on_complete(4, &meta(3, 0, 0), MachineId(1), 2);
        // t=4: c's job arrives; both orgs have waiting? a exhausted (4 jobs
        // started). Only c waits: trivially selected. Instead check the
        // contribution numbers directly: c's phi must exceed its psi.
        s.on_release(4, &meta(4, 1, 4));
        let phi = s.contributions(4);
        let psi = s.psi(4);
        assert!(psi[1] == 0);
        assert!(
            phi[1] > 0.0,
            "the donor's machine worked for org a; its contribution must be positive, got {phi:?}"
        );
        assert!(
            (phi[0] + phi[1] - (psi[0] + psi[1]) as f64).abs() < 1e-9,
            "efficiency: contributions must sum to the grand value"
        );
        // And the surplus ranking favors the donor.
        assert!(phi[1] - psi[1] as f64 > phi[0] - psi[0] as f64);
    }

    #[test]
    fn single_org_contribution_equals_value() {
        let mut b = Trace::builder();
        let a = b.org("solo", 2);
        b.job(a, 0, 3).job(a, 1, 2);
        let trace = b.build().unwrap();
        let mut s = RefScheduler::new(&trace);
        s.init(&trace.cluster_info());
        s.on_release(0, &meta(0, 0, 0));
        s.on_start(0, &meta(0, 0, 0), MachineId(0));
        s.on_release(1, &meta(1, 0, 1));
        s.on_start(1, &meta(1, 0, 1), MachineId(1));
        s.on_complete(3, &meta(0, 0, 0), MachineId(0), 0);
        s.on_complete(3, &meta(1, 0, 1), MachineId(1), 1);
        let phi = s.contributions(10);
        let psi = s.psi(10);
        assert!((phi[0] - psi[0] as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different trace")]
    fn init_rejects_mismatched_cluster() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 1);
        let trace = b.build().unwrap();
        let mut s = RefScheduler::new(&trace);
        s.init(&ClusterInfo::new(vec![1, 1]));
    }
}
