//! RAND (Figure 6): randomized Shapley estimation by permutation sampling.
//!
//! Instead of all `2^k` subcoalitions, RAND keeps simplified greedy
//! schedules only for the coalitions appearing as prefixes of `N` sampled
//! join orders, and estimates each organization's contribution as the
//! average sampled marginal `v(pred ∪ {u}) − v(pred)`. For unit-size jobs
//! the value of a coalition is independent of the greedy policy used
//! (Proposition 5.4), so the sampled values are exact per coalition and
//! the estimator is the FPRAS of Theorems 5.6–5.7: with
//! `N = ⌈k²/ε² ln(k/(1−λ))⌉` permutations, the realized utility vector is
//! within `ε·‖ψ*‖` of the fair one with probability `λ`.
//!
//! For general job sizes RAND is a heuristic (the paper evaluates it with
//! `N = 15` and `N = 75`): sampled coalitions are scheduled greedy-FIFO,
//! a fixed documented choice (DESIGN.md).

use super::lattice::{CoalitionLattice, Policy};
use super::{OrgPicker, Scheduler, SelectContext, StepBumps};
use crate::model::{ClusterInfo, JobMeta, MachineId, OrgId, Time, Trace};
use crate::utility::{SpTracker, Util};
use coopgame::sampling::{hoeffding_permutations, SampledPrefixes};
use coopgame::Player;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The randomized approximate fair scheduler.
#[derive(Clone, Debug)]
pub struct RandScheduler {
    durations: Vec<Time>,
    lattice: CoalitionLattice,
    prefixes: SampledPrefixes,
    trackers: Vec<SpTracker>,
    bumps: StepBumps,
    picker: OrgPicker,
    label: String,
}

impl RandScheduler {
    /// RAND with an explicit number of sampled permutations (the paper's
    /// experiments use 15 and 75).
    pub fn new(trace: &Trace, n_permutations: usize, seed: u64) -> Self {
        assert!(n_permutations > 0, "need at least one sampled permutation");
        let machines: Vec<usize> = trace.orgs().iter().map(|o| o.n_machines).collect();
        let k = machines.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let prefixes = SampledPrefixes::draw(k, n_permutations, &mut rng);
        let coalitions = prefixes.required_coalitions();
        let lattice =
            CoalitionLattice::with_coalitions(&machines, &coalitions, Policy::Fifo);
        RandScheduler {
            durations: trace.jobs().iter().map(|j| j.proc_time).collect(),
            lattice,
            prefixes,
            trackers: vec![SpTracker::new(); k],
            bumps: StepBumps::new(k),
            picker: OrgPicker::new(k),
            label: format!("Rand(N={n_permutations})"),
        }
    }

    /// RAND sized by the FPRAS guarantee of Theorem 5.6: `ε`-approximation
    /// with probability `λ` (for unit-size jobs).
    pub fn with_guarantee(trace: &Trace, epsilon: f64, lambda: f64, seed: u64) -> Self {
        let n = hoeffding_permutations(trace.n_orgs(), epsilon, lambda);
        Self::new(trace, n, seed)
    }

    /// Number of sampled permutations.
    pub fn n_permutations(&self) -> usize {
        self.prefixes.n_permutations()
    }

    /// Number of distinct sampled coalitions being simulated.
    pub fn n_coalitions(&self) -> usize {
        self.lattice.n_coalitions()
    }

    /// Read-only access to the sampled-coalition lattice (for analysis
    /// tools and the bench baseline's work counters).
    pub fn lattice(&self) -> &CoalitionLattice {
        &self.lattice
    }

    /// The estimated contributions `φ̂(u)` at `t` (settles the sampled
    /// schedules as a side effect).
    pub fn contributions(&mut self, t: Time) -> Vec<f64> {
        self.lattice.settle(t);
        let n = self.prefixes.n_permutations() as f64;
        (0..self.trackers.len())
            .map(|u| self.marginal_sum(OrgId(u as u32), t) as f64 / n)
            .collect()
    }

    /// Realized `ψ_sp` vector at `t`.
    pub fn psi(&self, t: Time) -> Vec<Util> {
        self.trackers.iter().map(|tr| tr.value_at(t)).collect()
    }

    /// `Σ_samples v(pred∪u) − v(pred)` — `N · φ̂(u)`, exact integer.
    fn marginal_sum(&self, u: OrgId, t: Time) -> Util {
        let player = Player(u.index());
        self.prefixes
            .prefixes_of(player)
            .iter()
            .map(|&pred| {
                self.lattice.value_of(pred.insert(player), t)
                    - self.lattice.value_of(pred, t)
            })
            .sum()
    }
}

impl Scheduler for RandScheduler {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn init(&mut self, info: &ClusterInfo) {
        assert_eq!(
            info.n_orgs(),
            self.trackers.len(),
            "RAND was built for a different trace"
        );
    }

    fn on_admit(&mut self, job: &crate::model::Job) {
        // Same duration-oracle splice as REF: insert at the assigned id,
        // shifting only unreleased jobs; the sampled lattice's φ caches
        // stay live and learn of the job at its `on_release`.
        self.durations.insert(job.id.index(), job.proc_time);
    }

    fn on_release(&mut self, t: Time, job: &JobMeta) {
        let proc = self.durations[job.id.index()];
        self.lattice.release(t, job.org, proc);
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, _machine: MachineId) {
        self.trackers[job.org.index()].on_start(t);
        self.bumps.add(t, job.org, 1);
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, _machine: MachineId, start: Time) {
        self.trackers[job.org.index()].on_complete(start, t);
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let t = ctx.t;
        self.lattice.settle(t);
        let n = self.prefixes.n_permutations() as Util;
        // key(u) = N·φ̂(u) − N·(ψ(u)+bump) — both sides scaled by N so the
        // comparison stays in exact integers.
        let marginals: Vec<Util> = (0..self.trackers.len())
            .map(|u| self.marginal_sum(OrgId(u as u32), t))
            .collect();
        let trackers = &self.trackers;
        let bumps = &self.bumps;
        self.picker.pick_max(ctx, |u| {
            marginals[u.index()] - n * (trackers[u.index()].value_at(t) + bumps.get(t, u))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobId;

    fn unit_trace(k: usize, jobs_per_org: usize) -> Trace {
        let mut b = Trace::builder();
        let orgs: Vec<OrgId> = (0..k).map(|i| b.org(format!("o{i}"), 1)).collect();
        for &o in &orgs {
            b.jobs(o, 0, 1, jobs_per_org);
        }
        b.build().unwrap()
    }

    fn meta(id: u32, org: u32, release: Time) -> JobMeta {
        JobMeta { id: JobId(id), org: OrgId(org), release }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = unit_trace(3, 2);
        let a = RandScheduler::new(&t, 10, 42);
        let b = RandScheduler::new(&t, 10, 42);
        assert_eq!(a.n_coalitions(), b.n_coalitions());
    }

    #[test]
    fn coalition_count_bounded() {
        let t = unit_trace(4, 1);
        let s = RandScheduler::new(&t, 5, 1);
        // At most N·k distinct prefixes plus their extensions; with k=4,
        // N=5 this is well under 2^4 · something small.
        assert!(s.n_coalitions() <= 2 * 5 * 4);
        assert_eq!(s.n_permutations(), 5);
    }

    #[test]
    fn with_guarantee_uses_hoeffding() {
        let t = unit_trace(3, 1);
        let s = RandScheduler::with_guarantee(&t, 1.0, 0.5, 7);
        assert_eq!(
            s.n_permutations(),
            coopgame::sampling::hoeffding_permutations(3, 1.0, 0.5)
        );
    }

    #[test]
    fn estimated_contributions_sum_close_to_value() {
        // Per-permutation marginals telescope to v(grand), so the estimate
        // sums to the grand value exactly when grand is sampled... in
        // general Σφ̂ = average over permutations of v(grand) = v(grand).
        let trace = unit_trace(3, 2);
        let mut s = RandScheduler::new(&trace, 20, 3);
        for (i, j) in trace.jobs().iter().enumerate() {
            s.on_release(j.release, &meta(i as u32, j.org.0, j.release));
        }
        let t = 10;
        let phi = s.contributions(t);
        let total: f64 = phi.iter().sum();
        // v(grand) under FIFO at t=10: 6 unit jobs, 3 machines: starts
        // 0,0,0,1,1,1 -> psi = 3*10 + 3*9 = 57.
        assert!((total - 57.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn symmetric_unit_orgs_get_equal_estimates() {
        let trace = unit_trace(3, 2);
        let mut s = RandScheduler::new(&trace, 50, 9);
        for (i, j) in trace.jobs().iter().enumerate() {
            s.on_release(j.release, &meta(i as u32, j.org.0, j.release));
        }
        let phi = s.contributions(5);
        // Exact symmetry: every sampled permutation treats the identical
        // orgs identically in aggregate only in expectation — but unit
        // traces make all marginals depend only on the prefix SIZE, so the
        // estimates must be exactly equal here.
        assert!((phi[0] - phi[1]).abs() < 1e-9, "{phi:?}");
        assert!((phi[1] - phi[2]).abs() < 1e-9, "{phi:?}");
    }

    #[test]
    fn select_returns_waiting_org() {
        let trace = unit_trace(2, 1);
        let mut s = RandScheduler::new(&trace, 5, 11);
        s.init(&trace.cluster_info());
        s.on_release(0, &meta(0, 0, 0));
        s.on_release(0, &meta(1, 1, 0));
        let w = [0usize, 1];
        let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
        assert_eq!(s.select(&ctx), OrgId(1));
    }
}
