//! The fair-share family (Section 7.1): distributive-fairness baselines
//! that balance a per-organization usage quantity against a static target
//! share — here, as in the paper's experiments, the fraction of machines
//! the organization contributes.

use super::{Frac, OrgPicker, Scheduler, SelectContext, StepBumps};
use crate::model::{ClusterInfo, JobMeta, MachineId, OrgId, Time};
use crate::utility::{SpTracker, Util};

/// FAIRSHARE (Kay & Lauder): whenever a processor frees, start a job of the
/// organization with the smallest ratio of *CPU time already allocated to
/// its jobs* over its target share.
///
/// The usage counter is non-clairvoyant: completed work plus the elapsed
/// time of running jobs, plus one unit for a job started in the current
/// time moment (the step bump; see [`StepBumps`]).
#[derive(Clone, Debug, Default)]
pub struct FairShareScheduler {
    trackers: Vec<SpTracker>,
    bumps: StepBumps,
    picker: OrgPicker,
    machines: Vec<usize>,
}

impl FairShareScheduler {
    /// A fresh FAIRSHARE scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FairShareScheduler {
    fn name(&self) -> String {
        "FairShare".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        let n = info.n_orgs();
        self.trackers = vec![SpTracker::new(); n];
        self.bumps = StepBumps::new(n);
        self.picker = OrgPicker::new(n);
        self.machines = info.org_machines().to_vec();
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, _machine: MachineId) {
        self.trackers[job.org.index()].on_start(t);
        self.bumps.add(t, job.org, 1);
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, _machine: MachineId, start: Time) {
        self.trackers[job.org.index()].on_complete(start, t);
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let t = ctx.t;
        let trackers = &self.trackers;
        let bumps = &self.bumps;
        let machines = &self.machines;
        self.picker.pick_min_key(ctx, |u| {
            let usage = trackers[u.index()].cpu_time_at(t) + bumps.get(t, u);
            Frac::new(usage, machines[u.index()] as Util)
        })
    }
}

/// UTFAIRSHARE: the fair-share allocation rule applied to the
/// strategy-proof utility `ψ_sp` instead of raw CPU time — the organization
/// with the smallest `ψ_sp / share` goes next. Included because it shares
/// FAIRSHARE's mechanism but REF's metric (Section 7.1).
#[derive(Clone, Debug, Default)]
pub struct UtFairShareScheduler {
    trackers: Vec<SpTracker>,
    bumps: StepBumps,
    picker: OrgPicker,
    machines: Vec<usize>,
}

impl UtFairShareScheduler {
    /// A fresh UTFAIRSHARE scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for UtFairShareScheduler {
    fn name(&self) -> String {
        "UtFairShare".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        let n = info.n_orgs();
        self.trackers = vec![SpTracker::new(); n];
        self.bumps = StepBumps::new(n);
        self.picker = OrgPicker::new(n);
        self.machines = info.org_machines().to_vec();
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, _machine: MachineId) {
        self.trackers[job.org.index()].on_start(t);
        self.bumps.add(t, job.org, 1);
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, _machine: MachineId, start: Time) {
        self.trackers[job.org.index()].on_complete(start, t);
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let t = ctx.t;
        let trackers = &self.trackers;
        let bumps = &self.bumps;
        let machines = &self.machines;
        self.picker.pick_min_key(ctx, |u| {
            let utility = trackers[u.index()].value_at(t) + bumps.get(t, u);
            Frac::new(utility, machines[u.index()] as Util)
        })
    }
}

/// CURRFAIRSHARE: the history-free variant — only the number of *currently
/// running* jobs is balanced against the share. Light and stateless across
/// time, which is exactly why the paper includes it: it shows what ignoring
/// history costs in fairness.
#[derive(Clone, Debug, Default)]
pub struct CurrFairShareScheduler {
    running: Vec<Util>,
    picker: OrgPicker,
    machines: Vec<usize>,
}

impl CurrFairShareScheduler {
    /// A fresh CURRFAIRSHARE scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for CurrFairShareScheduler {
    fn name(&self) -> String {
        "CurrFairShare".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        let n = info.n_orgs();
        self.running = vec![0; n];
        self.picker = OrgPicker::new(n);
        self.machines = info.org_machines().to_vec();
    }

    fn on_start(&mut self, _t: Time, job: &JobMeta, _machine: MachineId) {
        self.running[job.org.index()] += 1;
    }

    fn on_complete(
        &mut self,
        _t: Time,
        job: &JobMeta,
        _machine: MachineId,
        _start: Time,
    ) {
        self.running[job.org.index()] -= 1;
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let running = &self.running;
        let machines = &self.machines;
        self.picker.pick_min_key(ctx, |u| {
            Frac::new(running[u.index()], machines[u.index()] as Util)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobId;

    fn meta(id: u32, org: u32) -> JobMeta {
        JobMeta { id: JobId(id), org: OrgId(org), release: 0 }
    }

    fn ctx<'a>(t: Time, waiting: &'a [usize]) -> SelectContext<'a> {
        SelectContext { t, waiting, free_machines: &[] }
    }

    #[test]
    fn fairshare_balances_usage_to_share() {
        // Org 0 contributes 3 machines, org 1 contributes 1.
        let mut s = FairShareScheduler::new();
        s.init(&ClusterInfo::new(vec![3, 1]));
        let w = [5usize, 5];

        // Both at zero usage: first pick rotates; run 4 picks at t=0 and
        // count. With usage bumps, org0 (share 3) should receive ~3 of 4.
        let mut counts = [0, 0];
        for i in 0..4 {
            let u = s.select(&ctx(0, &w));
            counts[u.index()] += 1;
            s.on_start(0, &meta(i, u.0), MachineId(0));
        }
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 1);
    }

    #[test]
    fn fairshare_catches_up_after_history() {
        let mut s = FairShareScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        // Org 0 consumed 10 units of CPU historically.
        s.on_start(0, &meta(0, 0), MachineId(0));
        s.on_complete(10, &meta(0, 0), MachineId(0), 0);
        let w = [1usize, 1];
        // Org 1 must be preferred until it catches up.
        assert_eq!(s.select(&ctx(10, &w)), OrgId(1));
    }

    #[test]
    fn ut_fairshare_uses_utility_not_cpu() {
        let mut s = UtFairShareScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        // Org 0: one unit completed long ago (high psi at large t).
        s.on_start(0, &meta(0, 0), MachineId(0));
        s.on_complete(1, &meta(0, 0), MachineId(0), 0);
        // Org 1: one unit completed just now (same CPU, lower psi).
        s.on_start(99, &meta(1, 1), MachineId(0));
        s.on_complete(100, &meta(1, 1), MachineId(0), 99);
        let w = [1usize, 1];
        // psi_0(100) = 100, psi_1(100) = 1: org 1 preferred.
        assert_eq!(s.select(&ctx(100, &w)), OrgId(1));

        // FairShare would see equal CPU usage (1 vs 1) and tie instead.
        let mut fs = FairShareScheduler::new();
        fs.init(&ClusterInfo::new(vec![1, 1]));
        fs.on_start(0, &meta(0, 0), MachineId(0));
        fs.on_complete(1, &meta(0, 0), MachineId(0), 0);
        fs.on_start(99, &meta(1, 1), MachineId(0));
        fs.on_complete(100, &meta(1, 1), MachineId(0), 99);
        // Tie broken by rotation, not by utility: either org possible, but
        // the ratio keys must be equal — verified by selecting twice and
        // seeing both orgs chosen.
        let a = fs.select(&ctx(100, &w));
        let b = fs.select(&ctx(100, &w));
        assert_ne!(a, b);
    }

    #[test]
    fn curr_fairshare_ignores_history() {
        let mut s = CurrFairShareScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        // Heavy historical usage by org 0, all completed.
        for i in 0..5 {
            s.on_start(0, &meta(i, 0), MachineId(0));
            s.on_complete(50, &meta(i, 0), MachineId(0), 0);
        }
        let w = [1usize, 1];
        // No running jobs on either side: history-free tie, rotation picks both.
        let a = s.select(&ctx(50, &w));
        s.on_start(50, &meta(10, a.0), MachineId(0));
        // Now `a` has a running job; the other org must be preferred.
        let b = s.select(&ctx(50, &w));
        assert_ne!(a, b);
    }

    #[test]
    fn zero_machine_org_is_served_last() {
        let mut s = FairShareScheduler::new();
        s.init(&ClusterInfo::new(vec![0, 1]));
        let w = [1usize, 1];
        assert_eq!(s.select(&ctx(0, &w)), OrgId(1));
        // But it is still served when alone (greediness).
        let w2 = [1usize, 0];
        assert_eq!(s.select(&ctx(0, &w2)), OrgId(0));
    }
}
